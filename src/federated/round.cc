#include "federated/round.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/bit_probabilities.h"
#include "core/bit_pushing.h"
#include "core/bit_squashing.h"
#include "federated/obs_hooks.h"
#include "federated/persist_hooks.h"
#include "kernels/kernels.h"
#include "obs/trace.h"
#include "util/check.h"

namespace bitpush {

FederatedQueryResult RunFederatedMeanQuery(const std::vector<Client>& clients,
                                           const FixedPointCodec& codec,
                                           const FederatedQueryConfig& config,
                                           PrivacyMeter* meter, Rng& rng) {
  BITPUSH_CHECK_EQ(config.adaptive.bits, codec.bits());
  BITPUSH_CHECK_GT(config.adaptive.delta, 0.0);
  BITPUSH_CHECK_LT(config.adaptive.delta, 1.0);

  // Each stage draws from its own forked stream, derived unconditionally in
  // a fixed order. This makes the query crash-resumable: when recovery
  // restores a completed round instead of re-running it (skipping that
  // round's draws), the later stages still see exactly the streams an
  // uninterrupted run would have used.
  Rng cohort_rng = rng.Fork();
  Rng round1_rng = rng.Fork();
  Rng round2_rng = rng.Fork();

  FederatedQueryResult result;
  bool below_minimum = false;
  std::vector<int64_t> leftover;
  const std::vector<int64_t> cohort = SelectCohort(
      clients, nullptr, config.cohort, cohort_rng, &below_minimum, &leftover);
  if (below_minimum || cohort.size() < 2) {
    result.aborted = true;
    return result;
  }

  const int64_t n = static_cast<int64_t>(cohort.size());
  int64_t n1 = static_cast<int64_t>(
      std::llround(config.adaptive.delta * static_cast<double>(n)));
  n1 = std::clamp<int64_t>(n1, 1, n - 1);
  const std::vector<int64_t> cohort1(cohort.begin(), cohort.begin() + n1);
  const std::vector<int64_t> cohort2(cohort.begin() + n1, cohort.end());

  // Backfill pools are split disjointly by delta so a replacement client
  // can never serve both rounds (the same one-assignment-per-query
  // discipline the recheckin dedup enforces for the cohort itself).
  const int64_t pool1_size = std::clamp<int64_t>(
      static_cast<int64_t>(std::llround(
          config.adaptive.delta * static_cast<double>(leftover.size()))),
      0, static_cast<int64_t>(leftover.size()));
  std::vector<int64_t> pool1(leftover.begin(), leftover.begin() + pool1_size);
  std::vector<int64_t> pool2(leftover.begin() + pool1_size, leftover.end());

  const AggregationServer server(codec);
  const RandomizedResponse rr =
      RandomizedResponse::FromEpsilon(config.adaptive.epsilon);

  // The query's deadline budget is split across the two rounds by cohort
  // share — the same delta that splits the cohort splits the time.
  const double round1_share = static_cast<double>(n1) / static_cast<double>(n);

  // Runs (or restores) one round with the breaker bracketing it: cooldowns
  // advance before assignment, and the round's recorded outcome lists are
  // applied at the boundary. Restored rounds take the same path — the
  // lists live in the journaled outcome — so a recovered breaker is
  // byte-identical to a live one. Open/close transitions are folded into
  // the query-level RetryStats.
  const auto run_or_restore_round =
      [&](int64_t round_id, const RoundConfig& round_config,
          const std::vector<int64_t>& round_cohort, Rng& round_rng,
          RoundOutcome* outcome) {
        obs::Span span("round", "federated");
        span.set_ids(-1, -1, round_id);
        if (config.health != nullptr) config.health->BeginRound();
        bool restored = true;
        if (config.recorder == nullptr ||
            !config.recorder->RestoreRound(round_id, outcome)) {
          restored = false;
          obs::Span collect("collect", "federated");
          collect.set_ids(-1, -1, round_id);
          *outcome =
              server.RunRound(clients, round_cohort, round_config, meter,
                              round_rng);
          collect.set_sim_minutes(outcome->retry.elapsed_minutes);
          collect.AddNumeric("responded",
                             static_cast<double>(outcome->responded));
          collect.End();
          if (config.recorder != nullptr) {
            config.recorder->OnRoundClosed(round_id, *outcome);
          }
        }
        // Round-boundary metrics, applied from the (possibly journaled)
        // outcome so restored rounds count exactly like live ones. Rounds
        // of queries that finished before a crash never reach this lambda;
        // recovery re-applies those from the journal (persist/recovery.cc).
        ObserveRoundOutcome(*outcome);
        span.set_sim_minutes(outcome->retry.elapsed_minutes);
        span.AddNumeric("contacted", static_cast<double>(outcome->contacted));
        span.AddNumeric("responded", static_cast<double>(outcome->responded));
        span.AddString("source", restored ? "restored" : "live");
        if (config.health != nullptr) {
          const int64_t opens_before = config.health->opens();
          const int64_t closes_before = config.health->closes();
          config.health->ObserveRound(round_id, outcome->succeeded_client_ids,
                                      outcome->failed_client_ids,
                                      config.recorder);
          result.retry.breaker_opens += config.health->opens() - opens_before;
          result.retry.breaker_closes +=
              config.health->closes() - closes_before;
          ObserveBreakerState(*config.health);
        }
        result.comm.MergeFrom(outcome->comm);
        result.faults.MergeFrom(outcome->faults);
        result.retry.MergeFrom(outcome->retry);
      };

  // Round 1: input-independent geometric probe.
  RoundConfig round1_config;
  round1_config.probabilities =
      GeometricProbabilities(config.adaptive.bits, config.adaptive.gamma);
  round1_config.epsilon = config.adaptive.epsilon;
  round1_config.central_randomness = config.adaptive.central_randomness;
  round1_config.use_secure_aggregation = config.use_secure_aggregation;
  round1_config.value_id = config.value_id;
  round1_config.round_id = 1;
  round1_config.fault_plan = config.fault_plan;
  round1_config.fault_policy = config.fault_policy;
  round1_config.backfill_pool = std::move(pool1);
  round1_config.recorder = config.recorder;
  round1_config.resilience = config.resilience;
  round1_config.resilience.budget = config.resilience.budget.Fraction(
      round1_share);
  round1_config.health = config.health;
  run_or_restore_round(1, round1_config, cohort1, round1_rng, &result.round1);

  // Learn the round-2 allocation — unless round 1 lost more than the
  // policy threshold, in which case the probe's means are too thin to
  // trust: degrade gracefully to the static weighted policy (gamma = 1,
  // the pessimistic-optimal Eq. (7) allocation) instead of rebalancing.
  const double round1_loss =
      result.round1.contacted > 0
          ? 1.0 - static_cast<double>(result.round1.responded) /
                      static_cast<double>(result.round1.contacted)
          : 1.0;
  std::vector<double> round2_probabilities;
  if (round1_loss > config.fault_policy.max_round1_loss) {
    round2_probabilities =
        GeometricProbabilities(config.adaptive.bits, 1.0);
    result.used_static_fallback = true;
    ++result.faults.static_policy_fallbacks;
  } else {
    const std::vector<double> round1_means =
        result.round1.histogram.UnbiasedMeans(rr);
    const std::vector<bool> round1_keep =
        ComputeSquashMask(round1_means, result.round1.histogram.totals(), rr,
                          config.adaptive.squash);
    round2_probabilities = AdaptiveProbabilitiesMasked(
        round1_means, round1_keep, config.adaptive.alpha,
        round1_config.probabilities);
    if (config.auto_adjust_dropout &&
        !result.round1.intended_counts.empty()) {
      round2_probabilities = AdjustProbabilitiesForDropout(
          round2_probabilities, result.round1.intended_counts,
          result.round1.histogram.totals());
    }
  }
  result.round2_probabilities = round2_probabilities;

  // Round 2 over the remaining cohort. Clients that crashed after their
  // round-1 assignment re-check-in here; the server's dedup (keyed on
  // every id round 1 assigned, backfill included) rejects them, so no
  // client is ever assigned twice in one query.
  std::vector<int64_t> cohort2_full = cohort2;
  cohort2_full.insert(cohort2_full.end(),
                      result.round1.crashed_clients.begin(),
                      result.round1.crashed_clients.end());
  std::unordered_set<int64_t> assigned_round1;
  assigned_round1.reserve(result.round1.assigned_clients.size());
  for (const int64_t idx : result.round1.assigned_clients) {
    assigned_round1.insert(clients[static_cast<size_t>(idx)].id());
  }
  RoundConfig round2_config = round1_config;
  round2_config.probabilities = round2_probabilities;
  round2_config.round_id = 2;
  round2_config.backfill_pool = std::move(pool2);
  round2_config.already_assigned = &assigned_round1;
  round2_config.resilience.budget =
      config.resilience.budget.Fraction(1.0 - round1_share);
  run_or_restore_round(2, round2_config, cohort2_full, round2_rng,
                       &result.round2);

  // Final aggregation, with caching per the protocol config.
  obs::Span aggregate_span("aggregate", "federated");
  aggregate_span.AddNumeric("value_id",
                            static_cast<double>(config.value_id));
  // Which kernel tallied this query's rounds (trace-only: spans are
  // excluded from the deterministic snapshot, so the attribute may vary
  // across machines without breaking golden comparisons).
  aggregate_span.AddString("kernel", kernels::ActiveKernel().name);
  BitHistogram pooled = result.round1.histogram;
  pooled.Merge(result.round2.histogram);
  std::vector<int64_t> final_counts;
  if (config.adaptive.caching) {
    result.final_bit_means = pooled.UnbiasedMeans(rr);
    final_counts = pooled.totals();
  } else {
    std::vector<bool> observed;
    result.final_bit_means =
        result.round2.histogram.UnbiasedMeans(rr, &observed);
    final_counts = result.round2.histogram.totals();
    const std::vector<double> fallback_means =
        result.round1.histogram.UnbiasedMeans(rr);
    for (size_t j = 0; j < result.final_bit_means.size(); ++j) {
      if (!observed[j]) {
        result.final_bit_means[j] = fallback_means[j];
        final_counts[j] = result.round1.histogram.totals()[j];
      }
    }
  }
  result.kept = ComputeSquashMask(result.final_bit_means, final_counts, rr,
                                  config.adaptive.squash);
  result.estimate =
      codec.Decode(RecombineBitMeans(result.final_bit_means, result.kept));
  return result;
}

}  // namespace bitpush
