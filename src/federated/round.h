// End-to-end federated mean query: the adaptive two-round protocol of
// Algorithm 2 executed over the client/server machinery (cohort selection,
// dropout, privacy metering, optional secure aggregation, optional dropout
// auto-adjustment of sampling probabilities).
//
// This is the integration point a deployment would call; the functional
// core in src/core/ is the same math over flat vectors.

#ifndef BITPUSH_FEDERATED_ROUND_H_
#define BITPUSH_FEDERATED_ROUND_H_

#include <cstdint>
#include <vector>

#include "core/adaptive.h"
#include "core/fixed_point.h"
#include "core/privacy_meter.h"
#include "federated/client.h"
#include "federated/cohort.h"
#include "federated/server.h"
#include "rng/rng.h"

namespace bitpush {

struct FederatedQueryConfig {
  // Protocol parameters (bits, gamma, alpha, delta, epsilon, caching,
  // squashing). bits must match the codec.
  AdaptiveConfig adaptive;
  CohortPolicy cohort;
  bool use_secure_aggregation = false;
  // Rebalance round-2 probabilities using round-1 dropout observations
  // (Section 4.3, "the bit sampling probabilities were auto-adjusted based
  // on the dropout rate").
  bool auto_adjust_dropout = false;
  int64_t value_id = 0;
  // Fault injection (nullptr runs clean) and the server's reaction policy:
  // report deadline, bounded cohort backfill, and the round-1 loss
  // threshold past which the round-2 rebalance degrades to the static
  // weighted policy.
  const FaultPlan* fault_plan = nullptr;
  FaultPolicy fault_policy;
  // Durability hook (nullptr runs without journaling). A recorder can
  // restore an already-journaled round instead of re-running it; see
  // federated/persist_hooks.h for the recovery model.
  QueryRecorder* recorder = nullptr;
  // Active recovery (federated/resilience.h). `resilience.budget` is this
  // *query's* deadline budget; each round receives the share proportional
  // to its cohort fraction. The default disables everything.
  ResilienceConfig resilience;
  // Per-client circuit breaker, owned by the caller (typically the
  // campaign, so quarantine spans queries). The query consults it during
  // assignment and applies each round's succeeded/failed outcome lists at
  // the round boundary — for restored rounds too, which is what keeps the
  // breaker byte-identical across a crash/recovery cycle.
  HealthTracker* health = nullptr;
};

struct FederatedQueryResult {
  // True when the eligible cohort was below the privacy minimum; no
  // protocol messages were sent.
  bool aborted = false;
  // Mean estimate in the value domain (valid when !aborted).
  double estimate = 0.0;
  RoundOutcome round1;
  RoundOutcome round2;
  std::vector<double> round2_probabilities;
  std::vector<double> final_bit_means;
  std::vector<bool> kept;
  CommunicationStats comm;
  // Pooled fault/reaction counters across both rounds (plus the
  // query-level static-policy fallback, if it fired).
  FaultStats faults;
  // True when round-1 losses exceeded fault_policy.max_round1_loss and the
  // round-2 allocation fell back to the static weighted policy instead of
  // the learned rebalance.
  bool used_static_fallback = false;
  // Pooled recovery-layer counters across both rounds, including the
  // breaker transitions this query's outcomes caused.
  RetryStats retry;
};

// Runs the full two-round query over `clients`. `meter` may be null.
FederatedQueryResult RunFederatedMeanQuery(const std::vector<Client>& clients,
                                           const FixedPointCodec& codec,
                                           const FederatedQueryConfig& config,
                                           PrivacyMeter* meter, Rng& rng);

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_ROUND_H_
