// Thread-safe report ingestion.
//
// A coordinator ingests reports from many transport threads; this wrapper
// serializes tallies into a BitHistogram behind a mutex and hands out
// consistent snapshots. The protocol math is unchanged — this is the
// production-hygiene layer over core/bit_pushing.h.

#ifndef BITPUSH_FEDERATED_CONCURRENT_SERVER_H_
#define BITPUSH_FEDERATED_CONCURRENT_SERVER_H_

#include <cstdint>
#include <vector>

#include "core/bit_pushing.h"
#include "federated/resilience.h"
#include "util/thread_annotations.h"

namespace bitpush {

class ConcurrentAggregator {
 public:
  explicit ConcurrentAggregator(int bits);

  ConcurrentAggregator(const ConcurrentAggregator&) = delete;
  ConcurrentAggregator& operator=(const ConcurrentAggregator&) = delete;

  // Records one report. Safe to call from any thread.
  void Add(int bit_index, int reported_bit);

  // Merges a locally accumulated histogram (e.g. one transport thread's
  // batch). Safe to call from any thread.
  void Merge(const BitHistogram& batch);

  // Folds one transport thread's recovery-layer counters into the shared
  // totals. Safe to call from any thread.
  void MergeRetryStats(const RetryStats& batch);

  // Returns a consistent copy of the tallies.
  BitHistogram Snapshot() const;

  // Returns a consistent copy of the pooled recovery-layer counters.
  RetryStats retry_stats() const;

  int64_t TotalReports() const;

 private:
  mutable util::Mutex mutex_;
  BitHistogram histogram_ BITPUSH_GUARDED_BY(mutex_);
  RetryStats retry_stats_ BITPUSH_GUARDED_BY(mutex_);
};

// Thread-safe facade over the per-client circuit breaker
// (federated/resilience.h). Transport threads consult Decision() while a
// window is in flight; the coordinator thread calls BeginRound at the
// window boundary and ObserveRound with the pooled per-client outcomes.
// All calls serialize on one mutex — HealthTracker itself stays
// single-threaded and byte-stable.
class ConcurrentHealthTracker {
 public:
  explicit ConcurrentHealthTracker(const BreakerPolicy& policy);

  ConcurrentHealthTracker(const ConcurrentHealthTracker&) = delete;
  ConcurrentHealthTracker& operator=(const ConcurrentHealthTracker&) = delete;

  void BeginRound();
  AssignmentDecision Decision(int64_t client_id) const;
  void ObserveRound(int64_t round_id,
                    const std::vector<int64_t>& succeeded_client_ids,
                    const std::vector<int64_t>& failed_client_ids);

  BreakerState state(int64_t client_id) const;
  int64_t opens() const;
  int64_t closes() const;

 private:
  mutable util::Mutex mutex_;
  HealthTracker tracker_ BITPUSH_GUARDED_BY(mutex_);
};

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_CONCURRENT_SERVER_H_
