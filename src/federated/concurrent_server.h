// Thread-safe report ingestion.
//
// A coordinator ingests reports from many transport threads; this wrapper
// serializes tallies into a BitHistogram behind a mutex and hands out
// consistent snapshots. The protocol math is unchanged — this is the
// production-hygiene layer over core/bit_pushing.h.

#ifndef BITPUSH_FEDERATED_CONCURRENT_SERVER_H_
#define BITPUSH_FEDERATED_CONCURRENT_SERVER_H_

#include <cstdint>
#include <mutex>

#include "core/bit_pushing.h"

namespace bitpush {

class ConcurrentAggregator {
 public:
  explicit ConcurrentAggregator(int bits);

  ConcurrentAggregator(const ConcurrentAggregator&) = delete;
  ConcurrentAggregator& operator=(const ConcurrentAggregator&) = delete;

  // Records one report. Safe to call from any thread.
  void Add(int bit_index, int reported_bit);

  // Merges a locally accumulated histogram (e.g. one transport thread's
  // batch). Safe to call from any thread.
  void Merge(const BitHistogram& batch);

  // Returns a consistent copy of the tallies.
  BitHistogram Snapshot() const;

  int64_t TotalReports() const;

 private:
  mutable std::mutex mutex_;
  BitHistogram histogram_;
};

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_CONCURRENT_SERVER_H_
