#include "federated/telemetry.h"

#include <algorithm>
#include <cmath>

#include "rng/distributions.h"
#include "util/check.h"

namespace bitpush {

std::string MetricFamilyName(MetricFamily family) {
  switch (family) {
    case MetricFamily::kLatencyMs:
      return "latency_ms";
    case MetricFamily::kCrashCount:
      return "crash_count";
    case MetricFamily::kBatteryDrainPct:
      return "battery_drain_pct";
    case MetricFamily::kQueueDepth:
      return "queue_depth";
    case MetricFamily::kAppVersion:
      return "app_version";
  }
  BITPUSH_CHECK(false) << "unreachable";
  return "";
}

std::vector<double> GenerateMetric(MetricFamily family, int64_t n, Rng& rng) {
  BITPUSH_CHECK_GE(n, 0);
  std::vector<double> values;
  values.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double v = 0.0;
    switch (family) {
      case MetricFamily::kLatencyMs:
        // Median ~55ms, long right tail into seconds.
        v = SampleLognormal(rng, 4.0, 0.9);
        break;
      case MetricFamily::kCrashCount:
        // "most typical values are 0 and 1 ... some rare clients report
        // values that are orders of magnitude higher."
        if (rng.NextBernoulli(0.002)) {
          v = SamplePareto(rng, 100.0, 1.05);
        } else if (rng.NextBernoulli(0.05)) {
          v = static_cast<double>(2 + rng.NextBelow(8));
        } else {
          v = static_cast<double>(rng.NextBit());
        }
        break;
      case MetricFamily::kBatteryDrainPct:
        v = std::clamp(SampleNormal(rng, 22.0, 7.0), 0.0, 100.0);
        break;
      case MetricFamily::kQueueDepth:
        v = SampleExponential(rng, 6.0);
        break;
      case MetricFamily::kAppVersion:
        v = 42.0;
        break;
    }
    values.push_back(v);
  }
  return values;
}

std::vector<std::vector<double>> GenerateMetricSeries(MetricFamily family,
                                                      int64_t devices,
                                                      int64_t observations,
                                                      Rng& rng) {
  BITPUSH_CHECK_GE(devices, 0);
  BITPUSH_CHECK_GE(observations, 1);
  std::vector<std::vector<double>> series;
  series.reserve(static_cast<size_t>(devices));
  for (int64_t d = 0; d < devices; ++d) {
    series.push_back(GenerateMetric(family, observations, rng));
  }
  return series;
}

int EstimateHighestUsedBit(const std::vector<double>& bit_means,
                           double threshold) {
  for (int j = static_cast<int>(bit_means.size()) - 1; j >= 0; --j) {
    if (bit_means[static_cast<size_t>(j)] >= threshold) return j;
  }
  return -1;
}

UpperBoundMonitor::UpperBoundMonitor(int flag_shift_bits)
    : flag_shift_bits_(flag_shift_bits) {
  BITPUSH_CHECK_GE(flag_shift_bits, 1);
}

bool UpperBoundMonitor::ObserveWindow(int b_max) {
  const bool flag =
      has_history_ && std::abs(b_max - last_bound_) >= flag_shift_bits_;
  if (flag) ++flags_raised_;
  last_bound_ = b_max;
  has_history_ = true;
  return flag;
}

}  // namespace bitpush
