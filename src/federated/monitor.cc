#include "federated/monitor.h"

#include <cmath>

#include "util/check.h"

namespace bitpush {

MetricMonitor::MetricMonitor(const FixedPointCodec& codec,
                             const MonitorConfig& config)
    : codec_(codec),
      config_(config),
      bound_monitor_(config.flag_shift_bits) {
  BITPUSH_CHECK_EQ(config_.protocol.bits, codec_.bits());
  BITPUSH_CHECK_GE(config_.min_window_size, 2);
  BITPUSH_CHECK_GE(config_.drift_threshold, 0.0);
}

WindowSummary MetricMonitor::IngestWindow(const std::vector<double>& values,
                                          Rng& rng) {
  WindowSummary summary;
  summary.window_index = static_cast<int64_t>(history_.size());
  summary.clients = static_cast<int64_t>(values.size());
  if (summary.clients < config_.min_window_size) {
    summary.skipped = true;
    history_.push_back(summary);
    return summary;
  }

  const AdaptiveResult result = RunAdaptiveBitPushing(
      codec_.EncodeAll(values), config_.protocol, rng);
  summary.estimate = codec_.Decode(result.estimate_codeword);
  summary.b_max = EstimateHighestUsedBit(result.final_means,
                                         config_.bmax_mean_threshold);
  summary.bound_flagged = bound_monitor_.ObserveWindow(summary.b_max);

  if (config_.drift_threshold > 0.0 && trailing_estimate_count_ > 0) {
    const double trailing_mean =
        trailing_estimate_sum_ /
        static_cast<double>(trailing_estimate_count_);
    const double scale = std::max(std::abs(trailing_mean), 1e-12);
    summary.drift_flagged =
        std::abs(summary.estimate - trailing_mean) / scale >
        config_.drift_threshold;
  }
  trailing_estimate_sum_ += summary.estimate;
  ++trailing_estimate_count_;

  if (summary.bound_flagged || summary.drift_flagged) ++windows_flagged_;
  history_.push_back(summary);
  return summary;
}

WindowSummary MetricMonitor::IngestWindow(
    const std::vector<double>& values,
    const RetryStats& cumulative_retry_stats, Rng& rng) {
  const int64_t recovered_before = retry_stats_.RecoveredTotal();
  WindowSummary summary = IngestWindow(values, rng);
  retry_stats_ = cumulative_retry_stats;
  const int64_t recovered =
      retry_stats_.RecoveredTotal() - recovered_before;
  BITPUSH_CHECK_GE(recovered, 0)
      << "retry stats must be cumulative across windows";
  summary.recovered_reports = recovered;
  history_.back().recovered_reports = recovered;
  return summary;
}

}  // namespace bitpush
