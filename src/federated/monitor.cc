#include "federated/monitor.h"

#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"

namespace bitpush {

namespace {

// Monitor windows run on seeded inputs, so their totals are kStable.
struct MonitorInstruments {
  obs::Counter* windows;
  obs::Counter* skipped;
  obs::Counter* flagged;
  obs::Counter* recovered_reports;
  obs::Counter* regressions;
};

const MonitorInstruments& GetMonitorInstruments() {
  static const MonitorInstruments instruments = [] {
    obs::Registry& r = obs::Registry::Default();
    const obs::Determinism s = obs::Determinism::kStable;
    MonitorInstruments i;
    i.windows = r.GetCounter("bitpush_monitor_windows_total",
                             "Windows ingested by metric monitors.", s);
    i.skipped = r.GetCounter(
        "bitpush_monitor_windows_skipped_total",
        "Windows skipped because the cohort was below the privacy minimum.",
        s);
    i.flagged = r.GetCounter("bitpush_monitor_windows_flagged_total",
                             "Windows that raised a bound or drift flag.", s);
    i.recovered_reports = r.GetCounter(
        "bitpush_monitor_recovered_reports_total",
        "Recovered reports attributed to monitor windows.", s);
    i.regressions = r.GetCounter(
        "bitpush_monitor_retry_stats_regressions_total",
        "Windows whose ingested RetryStats went backwards.", s);
    return i;
  }();
  return instruments;
}

}  // namespace

MetricMonitor::MetricMonitor(const FixedPointCodec& codec,
                             const MonitorConfig& config)
    : codec_(codec),
      config_(config),
      bound_monitor_(config.flag_shift_bits),
      alerts_(config.alerts) {
  BITPUSH_CHECK_EQ(config_.protocol.bits, codec_.bits());
  BITPUSH_CHECK_GE(config_.min_window_size, 2);
  BITPUSH_CHECK_GE(config_.drift_threshold, 0.0);
}

WindowSummary MetricMonitor::IngestWindow(const std::vector<double>& values,
                                          Rng& rng) {
  WindowSummary summary = IngestWindowCore(values, rng);
  FinalizeWindow(&summary);
  return summary;
}

WindowSummary MetricMonitor::IngestWindowCore(
    const std::vector<double>& values, Rng& rng) {
  WindowSummary summary;
  summary.window_index = static_cast<int64_t>(history_.size());
  summary.clients = static_cast<int64_t>(values.size());
  const MonitorInstruments& obs = GetMonitorInstruments();
  obs.windows->Increment();
  if (summary.clients < config_.min_window_size) {
    summary.skipped = true;
    obs.skipped->Increment();
    history_.push_back(summary);
    return summary;
  }

  const AdaptiveResult result = RunAdaptiveBitPushing(
      codec_.EncodeAll(values), config_.protocol, rng);
  summary.estimate = codec_.Decode(result.estimate_codeword);
  summary.b_max = EstimateHighestUsedBit(result.final_means,
                                         config_.bmax_mean_threshold);
  summary.bound_flagged = bound_monitor_.ObserveWindow(summary.b_max);

  if (config_.drift_threshold > 0.0 && trailing_estimate_count_ > 0) {
    const double trailing_mean =
        trailing_estimate_sum_ /
        static_cast<double>(trailing_estimate_count_);
    const double scale = std::max(std::abs(trailing_mean), 1e-12);
    summary.drift_flagged =
        std::abs(summary.estimate - trailing_mean) / scale >
        config_.drift_threshold;
  }
  trailing_estimate_sum_ += summary.estimate;
  ++trailing_estimate_count_;

  if (summary.bound_flagged || summary.drift_flagged) {
    ++windows_flagged_;
    obs.flagged->Increment();
  }
  history_.push_back(summary);
  return summary;
}

WindowSummary MetricMonitor::IngestWindow(
    const std::vector<double>& values,
    const RetryStats& cumulative_retry_stats, Rng& rng) {
  const int64_t recovered_before = retry_stats_.RecoveredTotal();
  WindowSummary summary = IngestWindowCore(values, rng);
  retry_stats_ = cumulative_retry_stats;
  int64_t recovered = retry_stats_.RecoveredTotal() - recovered_before;
  if (recovered < 0) {
    // The caller's RetryStats went backwards (reset or non-cumulative
    // counters). Degrade gracefully: attribute no recoveries to the window
    // and mark the monotonicity violation on the summary so dashboards can
    // surface it, rather than aborting the coordinator mid-campaign.
    recovered = 0;
    summary.retry_stats_regressed = true;
    history_.back().retry_stats_regressed = true;
    GetMonitorInstruments().regressions->Increment();
  }
  summary.recovered_reports = recovered;
  history_.back().recovered_reports = recovered;
  GetMonitorInstruments().recovered_reports->Add(recovered);
  FinalizeWindow(&summary);
  return summary;
}

WindowSummary MetricMonitor::IngestWindow(
    const std::vector<double>& values,
    const std::vector<RetryStats>& per_shard_stats, Rng& rng) {
  BITPUSH_CHECK(!per_shard_stats.empty());
  if (per_shard_retry_stats_.empty()) {
    per_shard_retry_stats_.resize(per_shard_stats.size());
  }
  BITPUSH_CHECK_EQ(per_shard_stats.size(), per_shard_retry_stats_.size())
      << "shard count changed between monitor windows";

  WindowSummary summary = IngestWindowCore(values, rng);
  int64_t recovered = 0;
  for (size_t s = 0; s < per_shard_stats.size(); ++s) {
    const int64_t current = per_shard_stats[s].RecoveredTotal();
    const int64_t last = per_shard_retry_stats_[s].RecoveredTotal();
    // Prometheus counter-reset rule: a shard whose cumulative counters
    // went backwards restarted its ledger (snapshot recovery), so its
    // whole current value is new activity — not a regression.
    recovered += current >= last ? current - last : current;
    per_shard_retry_stats_[s] = per_shard_stats[s];
  }
  retry_stats_ = RetryStats{};
  for (const RetryStats& stats : per_shard_retry_stats_) {
    retry_stats_.MergeFrom(stats);
  }
  summary.recovered_reports = recovered;
  history_.back().recovered_reports = recovered;
  GetMonitorInstruments().recovered_reports->Add(recovered);
  FinalizeWindow(&summary);
  return summary;
}

void MetricMonitor::FinalizeWindow(WindowSummary* summary) {
  obs::CampaignAlertInputs inputs;
  inputs.tick = summary->window_index;
  // The monitor has no privacy meter or journal of its own: bits_budget=0
  // gates burn-rate off and journal_records=-1 gates journal_growth off.
  // retry_storm is the live rule here — cumulative retries scheduled by
  // the collection transport, attributed to windows by the retry-stats
  // overloads before this runs.
  inputs.retries_scheduled = retry_stats_.retries_scheduled;
  inputs.recovery_divergence = summary->retry_stats_regressed;
  const std::vector<obs::AlertTransition> transitions =
      alerts_.EvaluateCampaignTick(inputs);
  for (const obs::AlertTransition& transition : transitions) {
    if (transition.fired) {
      ++summary->alerts_fired;
    } else {
      ++summary->alerts_resolved;
    }
  }
  summary->alerts_firing = alerts_.firing_count();
  WindowSummary& stored = history_.back();
  stored.alerts_fired = summary->alerts_fired;
  stored.alerts_resolved = summary->alerts_resolved;
  stored.alerts_firing = summary->alerts_firing;
}

}  // namespace bitpush
