#include "federated/shamir.h"

#include "util/check.h"

namespace bitpush {
namespace {

uint64_t ReduceMersenne(unsigned __int128 v) {
  // x mod (2^61 - 1) via the Mersenne identity 2^61 == 1.
  uint64_t r = static_cast<uint64_t>(v & kShamirPrime) +
               static_cast<uint64_t>(v >> 61);
  // One more fold covers the carry, then a conditional subtract.
  r = (r & kShamirPrime) + (r >> 61);
  if (r >= kShamirPrime) r -= kShamirPrime;
  return r;
}

uint64_t FieldPow(uint64_t base, uint64_t exponent) {
  uint64_t result = 1;
  uint64_t acc = base;
  while (exponent > 0) {
    if (exponent & 1) result = FieldMul(result, acc);
    acc = FieldMul(acc, acc);
    exponent >>= 1;
  }
  return result;
}

uint64_t UniformFieldElement(Rng& rng) { return rng.NextBelow(kShamirPrime); }

}  // namespace

uint64_t FieldAdd(uint64_t a, uint64_t b) {
  BITPUSH_CHECK_LT(a, kShamirPrime);
  BITPUSH_CHECK_LT(b, kShamirPrime);
  uint64_t r = a + b;
  if (r >= kShamirPrime) r -= kShamirPrime;
  return r;
}

uint64_t FieldSub(uint64_t a, uint64_t b) {
  BITPUSH_CHECK_LT(a, kShamirPrime);
  BITPUSH_CHECK_LT(b, kShamirPrime);
  return a >= b ? a - b : a + kShamirPrime - b;
}

uint64_t FieldMul(uint64_t a, uint64_t b) {
  BITPUSH_CHECK_LT(a, kShamirPrime);
  BITPUSH_CHECK_LT(b, kShamirPrime);
  return ReduceMersenne(static_cast<unsigned __int128>(a) * b);
}

uint64_t FieldInverse(uint64_t a) {
  BITPUSH_CHECK_NE(a, 0u);
  return FieldPow(a, kShamirPrime - 2);  // Fermat
}

std::vector<ShamirShare> ShamirShareSecret(uint64_t secret, int threshold,
                                           int num_shares, Rng& rng) {
  BITPUSH_CHECK_LT(secret, kShamirPrime);
  BITPUSH_CHECK_GE(threshold, 1);
  BITPUSH_CHECK_LE(threshold, num_shares);
  // Random polynomial of degree threshold-1 with constant term = secret.
  std::vector<uint64_t> coefficients;
  coefficients.push_back(secret);
  for (int k = 1; k < threshold; ++k) {
    coefficients.push_back(UniformFieldElement(rng));
  }
  std::vector<ShamirShare> shares;
  shares.reserve(static_cast<size_t>(num_shares));
  for (int i = 1; i <= num_shares; ++i) {
    const uint64_t x = static_cast<uint64_t>(i);
    // Horner evaluation.
    uint64_t y = 0;
    for (size_t k = coefficients.size(); k > 0; --k) {
      y = FieldAdd(FieldMul(y, x), coefficients[k - 1]);
    }
    shares.push_back(ShamirShare{x, y});
  }
  return shares;
}

uint64_t ShamirReconstruct(const std::vector<ShamirShare>& shares,
                           int threshold) {
  BITPUSH_CHECK_GE(threshold, 1);
  BITPUSH_CHECK_GE(static_cast<int>(shares.size()), threshold)
      << "not enough shares to reconstruct";
  // Lagrange interpolation at x = 0 over the first `threshold` shares.
  uint64_t secret = 0;
  for (int i = 0; i < threshold; ++i) {
    uint64_t numerator = 1;
    uint64_t denominator = 1;
    for (int j = 0; j < threshold; ++j) {
      if (i == j) continue;
      BITPUSH_CHECK_NE(shares[static_cast<size_t>(i)].x,
                       shares[static_cast<size_t>(j)].x)
          << "duplicate evaluation points";
      numerator =
          FieldMul(numerator,
                   FieldSub(0, shares[static_cast<size_t>(j)].x));
      denominator =
          FieldMul(denominator,
                   FieldSub(shares[static_cast<size_t>(i)].x,
                            shares[static_cast<size_t>(j)].x));
    }
    const uint64_t weight = FieldMul(numerator, FieldInverse(denominator));
    secret = FieldAdd(
        secret, FieldMul(shares[static_cast<size_t>(i)].y, weight));
  }
  return secret;
}

}  // namespace bitpush
