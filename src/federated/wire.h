// Wire format for protocol messages.
//
// The deployment discussion (Section 5, "Communication costs") notes that
// the single private bit rides in a small packet alongside headers and the
// sampled bit index. This module defines that packet: fixed-width
// little-endian encoding with explicit bounds-checked decoding, so the
// transport layer of an integration has a concrete, testable contract.

#ifndef BITPUSH_FEDERATED_WIRE_H_
#define BITPUSH_FEDERATED_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "federated/report.h"

namespace bitpush {

// Format version carried in every frame header — shared by the network
// batch frames below and by the persisted journal/snapshot records of
// src/persist/. Decoders reject any other value with a clean error rather
// than misparsing a frame laid out by a future (or corrupted) writer.
inline constexpr uint8_t kWireFormatVersion = 1;

// Serialized sizes (bytes) of the unframed single messages.
inline constexpr size_t kBitRequestWireSize = 8 + 8 + 1 + 8;
inline constexpr size_t kBitReportWireSize = 8 + 1 + 1;

// Appends the message to `out`.
void EncodeBitRequest(const BitRequest& request, std::vector<uint8_t>* out);
void EncodeBitReport(const BitReport& report, std::vector<uint8_t>* out);

// Decodes one message starting at `offset`; on success advances `*offset`
// past the message and returns true. Returns false (leaving `*offset` and
// `*out` untouched) on truncated input or malformed fields (bit values
// outside {0, 1}, negative bit indices, non-finite rr_epsilon).
bool DecodeBitRequest(const std::vector<uint8_t>& buffer, size_t* offset,
                      BitRequest* out);
bool DecodeBitReport(const std::vector<uint8_t>& buffer, size_t* offset,
                     BitReport* out);

// Batch framing: a 1-byte format version, a 4-byte count, then that many
// messages. Decoding rejects unknown versions and counts that would overrun
// the buffer.
void EncodeReportBatch(const std::vector<BitReport>& reports,
                       std::vector<uint8_t>* out);
bool DecodeReportBatch(const std::vector<uint8_t>& buffer,
                       std::vector<BitReport>* out);
void EncodeRequestBatch(const std::vector<BitRequest>& requests,
                        std::vector<uint8_t>* out);
bool DecodeRequestBatch(const std::vector<uint8_t>& buffer,
                        std::vector<BitRequest>* out);

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_WIRE_H_
