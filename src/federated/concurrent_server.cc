#include "federated/concurrent_server.h"

namespace bitpush {

ConcurrentAggregator::ConcurrentAggregator(int bits) : histogram_(bits) {}

void ConcurrentAggregator::Add(int bit_index, int reported_bit) {
  const std::lock_guard<std::mutex> lock(mutex_);
  histogram_.Add(bit_index, reported_bit);
}

void ConcurrentAggregator::Merge(const BitHistogram& batch) {
  const std::lock_guard<std::mutex> lock(mutex_);
  histogram_.Merge(batch);
}

BitHistogram ConcurrentAggregator::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return histogram_;
}

int64_t ConcurrentAggregator::TotalReports() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return histogram_.TotalReports();
}

}  // namespace bitpush
