#include "federated/concurrent_server.h"

#include "obs/metrics.h"

namespace bitpush {

namespace {

// Totals are thread-schedule-invariant (every report lands exactly once
// regardless of interleaving), so the counters are kStable even though the
// aggregator is driven from worker threads.
struct AggregatorInstruments {
  obs::Counter* reports;
  obs::Counter* merges;
};

const AggregatorInstruments& GetAggregatorInstruments() {
  static const AggregatorInstruments instruments = [] {
    obs::Registry& r = obs::Registry::Default();
    const obs::Determinism s = obs::Determinism::kStable;
    AggregatorInstruments i;
    i.reports = r.GetCounter("bitpush_concurrent_reports_total",
                             "Reports tallied by concurrent aggregators.", s);
    i.merges = r.GetCounter("bitpush_concurrent_merges_total",
                            "Histogram batches merged concurrently.", s);
    return i;
  }();
  return instruments;
}

}  // namespace

ConcurrentAggregator::ConcurrentAggregator(int bits) : histogram_(bits) {}

void ConcurrentAggregator::Add(int bit_index, int reported_bit) {
  const util::MutexLock lock(mutex_);
  histogram_.Add(bit_index, reported_bit);
  GetAggregatorInstruments().reports->Increment();
}

void ConcurrentAggregator::Merge(const BitHistogram& batch) {
  const util::MutexLock lock(mutex_);
  histogram_.Merge(batch);
  const AggregatorInstruments& obs = GetAggregatorInstruments();
  obs.merges->Increment();
  obs.reports->Add(batch.TotalReports());
}

void ConcurrentAggregator::MergeRetryStats(const RetryStats& batch) {
  const util::MutexLock lock(mutex_);
  retry_stats_.MergeFrom(batch);
}

BitHistogram ConcurrentAggregator::Snapshot() const {
  const util::MutexLock lock(mutex_);
  return histogram_;
}

RetryStats ConcurrentAggregator::retry_stats() const {
  const util::MutexLock lock(mutex_);
  return retry_stats_;
}

int64_t ConcurrentAggregator::TotalReports() const {
  const util::MutexLock lock(mutex_);
  return histogram_.TotalReports();
}

ConcurrentHealthTracker::ConcurrentHealthTracker(const BreakerPolicy& policy)
    : tracker_(policy) {}

void ConcurrentHealthTracker::BeginRound() {
  const util::MutexLock lock(mutex_);
  tracker_.BeginRound();
}

AssignmentDecision ConcurrentHealthTracker::Decision(int64_t client_id) const {
  const util::MutexLock lock(mutex_);
  return tracker_.Decision(client_id);
}

void ConcurrentHealthTracker::ObserveRound(
    int64_t round_id, const std::vector<int64_t>& succeeded_client_ids,
    const std::vector<int64_t>& failed_client_ids) {
  const util::MutexLock lock(mutex_);
  tracker_.ObserveRound(round_id, succeeded_client_ids, failed_client_ids,
                        /*recorder=*/nullptr);
}

BreakerState ConcurrentHealthTracker::state(int64_t client_id) const {
  const util::MutexLock lock(mutex_);
  return tracker_.state(client_id);
}

int64_t ConcurrentHealthTracker::opens() const {
  const util::MutexLock lock(mutex_);
  return tracker_.opens();
}

int64_t ConcurrentHealthTracker::closes() const {
  const util::MutexLock lock(mutex_);
  return tracker_.closes();
}

}  // namespace bitpush
