#include "federated/session.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/check.h"

namespace bitpush {

namespace {

// Session counters are kVolatile: a snapshot-restored session resumes with
// its accepted/rejected tallies intact, but the events themselves fired in
// the previous process, so these process-local counters legitimately
// differ across a clean/recovered pair.
struct SessionInstruments {
  obs::Counter* assignments;
  obs::Counter* accepted;
  obs::Counter* rejected;
  obs::Counter* late;
};

const SessionInstruments& GetSessionInstruments() {
  static const SessionInstruments instruments = [] {
    obs::Registry& r = obs::Registry::Default();
    const obs::Determinism v = obs::Determinism::kVolatile;
    SessionInstruments i;
    i.assignments = r.GetCounter("bitpush_session_assignments_total",
                                 "Fresh session assignments issued.", v);
    i.accepted = r.GetCounter("bitpush_session_reports_accepted_total",
                              "Session reports accepted.", v);
    i.rejected = r.GetCounter("bitpush_session_reports_rejected_total",
                              "Session reports rejected (all causes).", v);
    i.late = r.GetCounter("bitpush_session_reports_late_total",
                          "Session reports rejected for lateness.", v);
    return i;
  }();
  return instruments;
}

}  // namespace

CollectionSession::CollectionSession(const FixedPointCodec& codec,
                                     const SessionConfig& config)
    : codec_(codec),
      config_(config),
      rr_(RandomizedResponse::FromEpsilon(config.epsilon)),
      issued_(config.probabilities.size(), 0),
      histogram_(codec.bits()) {
  BITPUSH_CHECK_EQ(static_cast<int>(config_.probabilities.size()),
                   codec_.bits());
  double total = 0.0;
  for (const double p : config_.probabilities) {
    BITPUSH_CHECK_GE(p, 0.0);
    total += p;
  }
  BITPUSH_CHECK(std::abs(total - 1.0) < 1e-9)
      << "probabilities must sum to 1";
  BITPUSH_CHECK_GE(config_.target_reports, 0);
  BITPUSH_CHECK(!(config_.report_deadline < 0.0))
      << "report_deadline must be non-negative";
  BITPUSH_CHECK(!(config_.deadline_budget_minutes < 0.0))
      << "deadline_budget_minutes must be non-negative";
}

bool CollectionSession::IssueAssignment(int64_t client_id,
                                        BitRequest* request) {
  BITPUSH_CHECK(request != nullptr);
  if (state_ != SessionState::kCollecting) return false;

  int bit_index;
  bool fresh = false;
  const auto existing = assigned_bits_.find(client_id);
  if (existing != assigned_bits_.end()) {
    bit_index = existing->second;
  } else {
    fresh = true;
    // Largest-deficit streaming allocation: pick the bit whose realized
    // count lags its target share of (total_issued + 1) the most.
    const double next_total =
        static_cast<double>(assigned_bits_.size()) + 1.0;
    double best_deficit = -1.0;
    bit_index = 0;
    for (size_t j = 0; j < config_.probabilities.size(); ++j) {
      if (config_.probabilities[j] <= 0.0) continue;
      const double deficit = config_.probabilities[j] * next_total -
                             static_cast<double>(issued_[j]);
      if (deficit > best_deficit) {
        best_deficit = deficit;
        bit_index = static_cast<int>(j);
      }
    }
    BITPUSH_CHECK_GE(best_deficit, -1e9) << "no bit has positive probability";
    ++issued_[static_cast<size_t>(bit_index)];
    assigned_bits_.emplace(client_id, bit_index);
    GetSessionInstruments().assignments->Increment();
  }

  request->round_id = config_.round_id;
  request->value_id = config_.value_id;
  request->bit_index = bit_index;
  request->rr_epsilon = config_.epsilon;
  if (fresh && journal_ != nullptr) {
    journal_->OnAssignmentIssued(client_id, *request);
  }
  return true;
}

ReportRejection CollectionSession::SubmitReport(const BitReport& report) {
  return SubmitReport(report, /*arrival_time=*/0.0);
}

ReportRejection CollectionSession::SubmitReport(const BitReport& report,
                                                double arrival_time) {
  if (state_ != SessionState::kCollecting) {
    ++rejected_;
    GetSessionInstruments().rejected->Increment();
    return ReportRejection::kSessionClosed;
  }
  // Inclusive boundary: arrival_time == the effective deadline (the
  // tighter of report_deadline and the propagated budget) is on time;
  // only strictly later arrivals are rejected.
  if (arrival_time > config_.effective_deadline()) {
    ++rejected_;
    ++late_;
    GetSessionInstruments().rejected->Increment();
    GetSessionInstruments().late->Increment();
    return ReportRejection::kLate;
  }
  const auto assigned = assigned_bits_.find(report.client_id);
  if (assigned == assigned_bits_.end()) {
    ++rejected_;
    GetSessionInstruments().rejected->Increment();
    return ReportRejection::kUnknownClient;
  }
  if (reported_.contains(report.client_id)) {
    ++rejected_;
    GetSessionInstruments().rejected->Increment();
    return ReportRejection::kDuplicate;
  }
  if (report.bit_index != assigned->second) {
    ++rejected_;
    GetSessionInstruments().rejected->Increment();
    return ReportRejection::kWrongIndex;
  }
  if (report.bit != 0 && report.bit != 1) {
    ++rejected_;
    GetSessionInstruments().rejected->Increment();
    return ReportRejection::kMalformedBit;
  }
  reported_.insert(report.client_id);
  histogram_.Add(report.bit_index, report.bit);
  ++accepted_;
  GetSessionInstruments().accepted->Increment();
  if (journal_ != nullptr) journal_->OnReportAccepted(report);
  if (config_.target_reports > 0 && accepted_ >= config_.target_reports) {
    Close();
  }
  return ReportRejection::kAccepted;
}

void CollectionSession::Close() {
  if (state_ == SessionState::kClosed) return;
  state_ = SessionState::kClosed;
  if (journal_ != nullptr) journal_->OnClosed();
}

double CollectionSession::Estimate() const {
  return codec_.Decode(RecombineBitMeans(histogram_.UnbiasedMeans(rr_)));
}

void CollectionSession::EncodeTo(std::vector<uint8_t>* out) const {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutInt64(codec_.bits(), out);
  bytes::PutDouble(codec_.low(), out);
  bytes::PutDouble(codec_.high(), out);
  bytes::PutDoubleVector(config_.probabilities, out);
  bytes::PutDouble(config_.epsilon, out);
  bytes::PutInt64(config_.target_reports, out);
  bytes::PutInt64(config_.round_id, out);
  bytes::PutInt64(config_.value_id, out);
  bytes::PutDouble(config_.report_deadline, out);
  bytes::PutDouble(config_.deadline_budget_minutes, out);
  bytes::PutByte(static_cast<uint8_t>(state_), out);

  std::vector<int64_t> assigned_ids;
  assigned_ids.reserve(assigned_bits_.size());
  for (const auto& [client_id, bit] : assigned_bits_) {
    assigned_ids.push_back(client_id);
  }
  std::sort(assigned_ids.begin(), assigned_ids.end());
  bytes::PutUint32(static_cast<uint32_t>(assigned_ids.size()), out);
  for (const int64_t client_id : assigned_ids) {
    bytes::PutInt64(client_id, out);
    bytes::PutInt64(assigned_bits_.at(client_id), out);
  }

  std::vector<int64_t> reported_ids(reported_.begin(), reported_.end());
  std::sort(reported_ids.begin(), reported_ids.end());
  bytes::PutInt64Vector(reported_ids, out);

  bytes::PutInt64Vector(issued_, out);
  EncodeBitHistogram(histogram_, out);
  bytes::PutInt64(accepted_, out);
  bytes::PutInt64(rejected_, out);
  bytes::PutInt64(late_, out);
}

bool CollectionSession::Decode(const std::vector<uint8_t>& buffer,
                               size_t* offset,
                               std::optional<CollectionSession>* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = *offset;

  int64_t bits = 0;
  double low = 0.0;
  double high = 0.0;
  SessionConfig config;
  uint8_t state = 0;
  if (!bytes::GetInt64(buffer, &cursor, &bits) ||
      !bytes::GetDouble(buffer, &cursor, &low) ||
      !bytes::GetDouble(buffer, &cursor, &high) ||
      !bytes::GetDoubleVector(buffer, &cursor, &config.probabilities) ||
      !bytes::GetDouble(buffer, &cursor, &config.epsilon) ||
      !bytes::GetInt64(buffer, &cursor, &config.target_reports) ||
      !bytes::GetInt64(buffer, &cursor, &config.round_id) ||
      !bytes::GetInt64(buffer, &cursor, &config.value_id) ||
      !bytes::GetDouble(buffer, &cursor, &config.report_deadline) ||
      !bytes::GetDouble(buffer, &cursor, &config.deadline_budget_minutes) ||
      !bytes::GetByte(buffer, &cursor, &state)) {
    return false;
  }
  // Everything the constructor CHECKs must be validated here first, so a
  // hostile or corrupted snapshot fails closed instead of aborting.
  if (bits < 1 || bits > kMaxBits || !std::isfinite(low) ||
      !std::isfinite(high) || low >= high ||
      static_cast<int64_t>(config.probabilities.size()) != bits ||
      !std::isfinite(config.epsilon) || config.target_reports < 0 ||
      std::isnan(config.report_deadline) || config.report_deadline < 0.0 ||
      std::isnan(config.deadline_budget_minutes) ||
      config.deadline_budget_minutes < 0.0 ||
      state > static_cast<uint8_t>(SessionState::kClosed)) {
    return false;
  }
  double probability_total = 0.0;
  for (const double p : config.probabilities) {
    if (!std::isfinite(p) || p < 0.0) return false;
    probability_total += p;
  }
  if (std::abs(probability_total - 1.0) >= 1e-9) return false;

  uint32_t assigned_count = 0;
  if (!bytes::GetUint32(buffer, &cursor, &assigned_count)) return false;
  std::unordered_map<int64_t, int> assigned_bits;
  assigned_bits.reserve(assigned_count);
  std::vector<int64_t> issued_from_assignments(static_cast<size_t>(bits), 0);
  int64_t previous_id = 0;
  for (uint32_t i = 0; i < assigned_count; ++i) {
    int64_t client_id = 0;
    int64_t bit = 0;
    if (!bytes::GetInt64(buffer, &cursor, &client_id) ||
        !bytes::GetInt64(buffer, &cursor, &bit)) {
      return false;
    }
    if (bit < 0 || bit >= bits) return false;
    if (i > 0 && client_id <= previous_id) return false;  // canonical order
    previous_id = client_id;
    assigned_bits.emplace(client_id, static_cast<int>(bit));
    ++issued_from_assignments[static_cast<size_t>(bit)];
  }

  std::vector<int64_t> reported_ids;
  std::vector<int64_t> issued;
  BitHistogram histogram;
  int64_t accepted = 0;
  int64_t rejected = 0;
  int64_t late = 0;
  if (!bytes::GetInt64Vector(buffer, &cursor, &reported_ids) ||
      !bytes::GetInt64Vector(buffer, &cursor, &issued) ||
      !DecodeBitHistogram(buffer, &cursor, &histogram) ||
      !bytes::GetInt64(buffer, &cursor, &accepted) ||
      !bytes::GetInt64(buffer, &cursor, &rejected) ||
      !bytes::GetInt64(buffer, &cursor, &late)) {
    return false;
  }
  // Cross-field consistency: every reporter holds an assignment, the
  // per-bit issue counts match the assignment map, and the tallies match
  // the acceptance counters.
  for (size_t i = 0; i < reported_ids.size(); ++i) {
    if (i > 0 && reported_ids[i] <= reported_ids[i - 1]) return false;
    if (!assigned_bits.contains(reported_ids[i])) return false;
  }
  if (issued != issued_from_assignments) return false;
  if (histogram.bits() != bits) return false;
  if (histogram.TotalReports() != accepted) return false;
  if (accepted != static_cast<int64_t>(reported_ids.size())) return false;
  if (rejected < 0 || late < 0 || late > rejected) return false;

  out->emplace(FixedPointCodec(static_cast<int>(bits), low, high), config);
  CollectionSession& session = **out;
  session.state_ = static_cast<SessionState>(state);
  session.assigned_bits_ = std::move(assigned_bits);
  session.reported_ =
      std::unordered_set<int64_t>(reported_ids.begin(), reported_ids.end());
  session.issued_ = std::move(issued);
  session.histogram_ = std::move(histogram);
  session.accepted_ = accepted;
  session.rejected_ = rejected;
  session.late_ = late;
  *offset = cursor;
  return true;
}

}  // namespace bitpush
