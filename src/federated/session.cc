#include "federated/session.h"

#include <cmath>

#include "util/check.h"

namespace bitpush {

CollectionSession::CollectionSession(const FixedPointCodec& codec,
                                     const SessionConfig& config)
    : codec_(codec),
      config_(config),
      rr_(RandomizedResponse::FromEpsilon(config.epsilon)),
      issued_(config.probabilities.size(), 0),
      histogram_(codec.bits()) {
  BITPUSH_CHECK_EQ(static_cast<int>(config_.probabilities.size()),
                   codec_.bits());
  double total = 0.0;
  for (const double p : config_.probabilities) {
    BITPUSH_CHECK_GE(p, 0.0);
    total += p;
  }
  BITPUSH_CHECK(std::abs(total - 1.0) < 1e-9)
      << "probabilities must sum to 1";
  BITPUSH_CHECK_GE(config_.target_reports, 0);
  BITPUSH_CHECK(!(config_.report_deadline < 0.0))
      << "report_deadline must be non-negative";
}

bool CollectionSession::IssueAssignment(int64_t client_id,
                                        BitRequest* request) {
  BITPUSH_CHECK(request != nullptr);
  if (state_ != SessionState::kCollecting) return false;

  int bit_index;
  const auto existing = assigned_bits_.find(client_id);
  if (existing != assigned_bits_.end()) {
    bit_index = existing->second;
  } else {
    // Largest-deficit streaming allocation: pick the bit whose realized
    // count lags its target share of (total_issued + 1) the most.
    const double next_total =
        static_cast<double>(assigned_bits_.size()) + 1.0;
    double best_deficit = -1.0;
    bit_index = 0;
    for (size_t j = 0; j < config_.probabilities.size(); ++j) {
      if (config_.probabilities[j] <= 0.0) continue;
      const double deficit = config_.probabilities[j] * next_total -
                             static_cast<double>(issued_[j]);
      if (deficit > best_deficit) {
        best_deficit = deficit;
        bit_index = static_cast<int>(j);
      }
    }
    BITPUSH_CHECK_GE(best_deficit, -1e9) << "no bit has positive probability";
    ++issued_[static_cast<size_t>(bit_index)];
    assigned_bits_.emplace(client_id, bit_index);
  }

  request->round_id = config_.round_id;
  request->value_id = config_.value_id;
  request->bit_index = bit_index;
  request->rr_epsilon = config_.epsilon;
  return true;
}

ReportRejection CollectionSession::SubmitReport(const BitReport& report) {
  return SubmitReport(report, /*arrival_time=*/0.0);
}

ReportRejection CollectionSession::SubmitReport(const BitReport& report,
                                                double arrival_time) {
  if (state_ != SessionState::kCollecting) {
    ++rejected_;
    return ReportRejection::kSessionClosed;
  }
  if (arrival_time > config_.report_deadline) {
    ++rejected_;
    ++late_;
    return ReportRejection::kLate;
  }
  const auto assigned = assigned_bits_.find(report.client_id);
  if (assigned == assigned_bits_.end()) {
    ++rejected_;
    return ReportRejection::kUnknownClient;
  }
  if (reported_.contains(report.client_id)) {
    ++rejected_;
    return ReportRejection::kDuplicate;
  }
  if (report.bit_index != assigned->second) {
    ++rejected_;
    return ReportRejection::kWrongIndex;
  }
  if (report.bit != 0 && report.bit != 1) {
    ++rejected_;
    return ReportRejection::kMalformedBit;
  }
  reported_.insert(report.client_id);
  histogram_.Add(report.bit_index, report.bit);
  ++accepted_;
  if (config_.target_reports > 0 && accepted_ >= config_.target_reports) {
    Close();
  }
  return ReportRejection::kAccepted;
}

void CollectionSession::Close() { state_ = SessionState::kClosed; }

double CollectionSession::Estimate() const {
  return codec_.Decode(RecombineBitMeans(histogram_.UnbiasedMeans(rr_)));
}

}  // namespace bitpush
