#include "federated/secure_agg.h"

#include <algorithm>

#include "kernels/kernels.h"
#include "util/check.h"

namespace bitpush {

SecureAggregator::SecureAggregator(int64_t expected_contributors, Rng& rng) {
  BITPUSH_CHECK_GE(expected_contributors, 1);
  masks_.resize(static_cast<size_t>(expected_contributors));
  mask_used_.assign(masks_.size(), false);
  uint64_t sum = 0;
  for (size_t i = 0; i + 1 < masks_.size(); ++i) {
    masks_[i] = rng.NextUint64();
    sum += masks_[i];
  }
  masks_.back() = ~sum + 1;  // two's-complement negation: total is 0 mod 2^64
  received_.reserve(masks_.size());
}

uint64_t SecureAggregator::Mask(int64_t contributor_index, uint64_t value) {
  BITPUSH_CHECK_GE(contributor_index, 0);
  BITPUSH_CHECK_LT(contributor_index,
                   static_cast<int64_t>(masks_.size()));
  const size_t i = static_cast<size_t>(contributor_index);
  BITPUSH_CHECK(!mask_used_[i]) << "mask slot reused";
  mask_used_[i] = true;
  return value + masks_[i];
}

void SecureAggregator::MaskBatch(const uint64_t* values, int64_t count,
                                 int64_t first_slot, uint64_t* out) {
  BITPUSH_CHECK(values != nullptr);
  BITPUSH_CHECK(out != nullptr);
  BITPUSH_CHECK_GE(count, 0);
  BITPUSH_CHECK_GE(first_slot, 0);
  BITPUSH_CHECK_LE(first_slot + count,
                   static_cast<int64_t>(masks_.size()));
  for (int64_t i = 0; i < count; ++i) {
    const size_t slot = static_cast<size_t>(first_slot + i);
    BITPUSH_CHECK(!mask_used_[slot]) << "mask slot reused";
    mask_used_[slot] = true;
  }
  std::copy(values, values + count, out);
  kernels::ActiveKernel().add_words(
      out, masks_.data() + first_slot, count);
}

void SecureAggregator::Submit(uint64_t masked_value) {
  BITPUSH_CHECK_LT(received_.size(), masks_.size()) << "too many submissions";
  received_.push_back(masked_value);
}

void SecureAggregator::SubmitBatch(const uint64_t* masked_values,
                                   int64_t count) {
  BITPUSH_CHECK(masked_values != nullptr);
  BITPUSH_CHECK_GE(count, 0);
  BITPUSH_CHECK_LE(received_.size() + static_cast<size_t>(count),
                   masks_.size())
      << "too many submissions";
  received_.insert(received_.end(), masked_values, masked_values + count);
}

bool SecureAggregator::complete() const {
  return received_.size() == masks_.size();
}

uint64_t SecureAggregator::Sum() const {
  BITPUSH_CHECK(complete()) << "dropouts prevent mask cancellation";
  return kernels::ActiveKernel().reduce_add_words(
      received_.data(), static_cast<int64_t>(received_.size()));
}

}  // namespace bitpush
