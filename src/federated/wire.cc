#include "federated/wire.h"

#include <bit>
#include <cmath>

#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/check.h"

// bitpush-lint: allow(privacy-metering): codec implementation; it serializes reports whose meter charge already happened in Client::HandleRequest before the report existed

namespace bitpush {

namespace {

// Batch codec instruments. Raw wire-layer counts are kVolatile: batches
// are also encoded by tooling, tests, and recovery replay, so their totals
// are process-local (the round-boundary bitpush_wire_* counters in
// federated/obs_hooks.cc are the deterministic view).
struct WireInstruments {
  obs::Histogram* encode_seconds;
  obs::Histogram* decode_seconds;
  obs::Counter* batches_encoded;
  obs::Counter* batches_decoded;
  obs::Counter* decode_rejects;
};

const WireInstruments& GetWireInstruments() {
  static const WireInstruments instruments = [] {
    obs::Registry& r = obs::Registry::Default();
    const obs::Determinism v = obs::Determinism::kVolatile;
    WireInstruments i;
    i.encode_seconds =
        r.GetHistogram("bitpush_wire_encode_seconds",
                       "Wall-clock time to encode one request/report batch.",
                       obs::LatencySecondsBounds(), v);
    i.decode_seconds =
        r.GetHistogram("bitpush_wire_decode_seconds",
                       "Wall-clock time to decode one request/report batch.",
                       obs::LatencySecondsBounds(), v);
    i.batches_encoded = r.GetCounter("bitpush_wire_batches_encoded_total",
                                     "Wire batches encoded.", v);
    i.batches_decoded = r.GetCounter("bitpush_wire_batches_decoded_total",
                                     "Wire batches decoded successfully.", v);
    i.decode_rejects = r.GetCounter("bitpush_wire_decode_rejects_total",
                                    "Wire batches rejected by the decoder.",
                                    v);
    return i;
  }();
  return instruments;
}

}  // namespace

void EncodeBitRequest(const BitRequest& request, std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  BITPUSH_CHECK_GE(request.bit_index, 0);
  BITPUSH_CHECK_LT(request.bit_index, 256);
  BITPUSH_CHECK(std::isfinite(request.rr_epsilon))
      << "rr_epsilon must be finite on the wire";
  bytes::PutUint64(static_cast<uint64_t>(request.round_id), out);
  bytes::PutUint64(static_cast<uint64_t>(request.value_id), out);
  out->push_back(static_cast<uint8_t>(request.bit_index));
  bytes::PutDouble(request.rr_epsilon, out);
}

bool DecodeBitRequest(const std::vector<uint8_t>& buffer, size_t* offset,
                      BitRequest* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  if (*offset > buffer.size() ||
      buffer.size() - *offset < kBitRequestWireSize) {
    return false;
  }
  size_t cursor = *offset;
  uint64_t round_id = 0;
  uint64_t value_id = 0;
  uint8_t bit_index = 0;
  double rr_epsilon = 0.0;
  if (!bytes::GetUint64(buffer, &cursor, &round_id) ||
      !bytes::GetUint64(buffer, &cursor, &value_id) ||
      !bytes::GetByte(buffer, &cursor, &bit_index) ||
      !bytes::GetDouble(buffer, &cursor, &rr_epsilon)) {
    return false;
  }
  // Malformed: a NaN or infinite epsilon from the wire would poison the
  // randomized-response parameters downstream (found by the seeded wire
  // fuzzer; see tests/wire_fuzz_test.cc). Negative finite values are legal
  // and mean "perturbation disabled".
  if (!std::isfinite(rr_epsilon)) return false;
  out->round_id = static_cast<int64_t>(round_id);
  out->value_id = static_cast<int64_t>(value_id);
  out->bit_index = bit_index;
  out->rr_epsilon = rr_epsilon;
  *offset = cursor;
  return true;
}

void EncodeBitReport(const BitReport& report, std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  BITPUSH_CHECK(report.bit == 0 || report.bit == 1);
  BITPUSH_CHECK_GE(report.bit_index, 0);
  BITPUSH_CHECK_LT(report.bit_index, 256);
  bytes::PutUint64(static_cast<uint64_t>(report.client_id), out);
  out->push_back(static_cast<uint8_t>(report.bit_index));
  out->push_back(static_cast<uint8_t>(report.bit));
}

bool DecodeBitReport(const std::vector<uint8_t>& buffer, size_t* offset,
                     BitReport* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  if (*offset > buffer.size() ||
      buffer.size() - *offset < kBitReportWireSize) {
    return false;
  }
  size_t cursor = *offset;
  uint64_t client_id = 0;
  uint8_t bit_index = 0;
  uint8_t bit = 0;
  if (!bytes::GetUint64(buffer, &cursor, &client_id) ||
      !bytes::GetByte(buffer, &cursor, &bit_index) ||
      !bytes::GetByte(buffer, &cursor, &bit)) {
    return false;
  }
  if (bit > 1) return false;  // malformed: the private payload is one bit
  out->client_id = static_cast<int64_t>(client_id);
  out->bit_index = bit_index;
  out->bit = bit;
  *offset = cursor;
  return true;
}

void EncodeRequestBatch(const std::vector<BitRequest>& requests,
                        std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  const WireInstruments& obs = GetWireInstruments();
  const obs::ScopedTimer timer(obs.encode_seconds);
  obs.batches_encoded->Increment();
  bytes::PutByte(kWireFormatVersion, out);
  bytes::PutUint32(static_cast<uint32_t>(requests.size()), out);
  for (const BitRequest& request : requests) {
    EncodeBitRequest(request, out);
  }
}

bool DecodeRequestBatch(const std::vector<uint8_t>& buffer,
                        std::vector<BitRequest>* out) {
  BITPUSH_CHECK(out != nullptr);
  const WireInstruments& obs = GetWireInstruments();
  const obs::ScopedTimer timer(obs.decode_seconds);
  const auto reject = [&obs] {
    obs.decode_rejects->Increment();
    return false;
  };
  size_t offset = 0;
  uint8_t version = 0;
  uint32_t count = 0;
  if (!bytes::GetByte(buffer, &offset, &version)) return reject();
  if (version != kWireFormatVersion) return reject();  // unknown version
  if (!bytes::GetUint32(buffer, &offset, &count)) return reject();
  if ((buffer.size() - offset) / kBitRequestWireSize <
      static_cast<size_t>(count)) {
    return reject();
  }
  std::vector<BitRequest> requests;
  requests.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    BitRequest request;
    if (!DecodeBitRequest(buffer, &offset, &request)) return reject();
    requests.push_back(request);
  }
  *out = std::move(requests);
  obs.batches_decoded->Increment();
  return true;
}

void EncodeReportBatch(const std::vector<BitReport>& reports,
                       std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  const WireInstruments& obs = GetWireInstruments();
  const obs::ScopedTimer timer(obs.encode_seconds);
  obs.batches_encoded->Increment();
  bytes::PutByte(kWireFormatVersion, out);
  bytes::PutUint32(static_cast<uint32_t>(reports.size()), out);
  for (const BitReport& report : reports) EncodeBitReport(report, out);
}

bool DecodeReportBatch(const std::vector<uint8_t>& buffer,
                       std::vector<BitReport>* out) {
  BITPUSH_CHECK(out != nullptr);
  const WireInstruments& obs = GetWireInstruments();
  const obs::ScopedTimer timer(obs.decode_seconds);
  const auto reject = [&obs] {
    obs.decode_rejects->Increment();
    return false;
  };
  size_t offset = 0;
  uint8_t version = 0;
  uint32_t count = 0;
  if (!bytes::GetByte(buffer, &offset, &version)) return reject();
  if (version != kWireFormatVersion) return reject();  // unknown version
  if (!bytes::GetUint32(buffer, &offset, &count)) return reject();
  if ((buffer.size() - offset) / kBitReportWireSize <
      static_cast<size_t>(count)) {
    return reject();
  }
  std::vector<BitReport> reports;
  reports.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    BitReport report;
    if (!DecodeBitReport(buffer, &offset, &report)) return reject();
    reports.push_back(report);
  }
  *out = std::move(reports);
  obs.batches_decoded->Increment();
  return true;
}

}  // namespace bitpush
