// Message types exchanged between the aggregation server and clients, plus
// communication accounting (the paper's "Communication costs" discussion:
// the private payload is one bit, but headers and the sampled bit index
// must be carried too).

#ifndef BITPUSH_FEDERATED_REPORT_H_
#define BITPUSH_FEDERATED_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bitpush {

// Server -> client: report bit `bit_index` of the value identified by
// `value_id`, perturbed by randomized response at `rr_epsilon` (<= 0 means
// no perturbation).
struct BitRequest {
  int64_t round_id = 0;
  int64_t value_id = 0;
  int bit_index = 0;
  double rr_epsilon = 0.0;
};

// Client -> server: the (possibly perturbed) bit.
struct BitReport {
  int64_t client_id = 0;
  int bit_index = 0;
  int bit = 0;
};

// Accounting across a collection round.
struct CommunicationStats {
  int64_t requests_sent = 0;
  int64_t reports_received = 0;
  // Count of *private* bits disclosed (the quantity the privacy meter
  // bounds); equals reports_received for honest clients.
  int64_t private_bits = 0;
  // Estimated wire bytes: requests and reports each fit one small packet.
  int64_t payload_bytes = 0;

  void MergeFrom(const CommunicationStats& other);

  friend bool operator==(const CommunicationStats&,
                         const CommunicationStats&) = default;
};

// Serialization for the durable-state layer (src/persist/). Decoding
// rejects negative counters and returns false without touching `*out`.
void EncodeCommunicationStats(const CommunicationStats& stats,
                              std::vector<uint8_t>* out);
bool DecodeCommunicationStats(const std::vector<uint8_t>& buffer,
                              size_t* offset, CommunicationStats* out);

// Wire-size model: a report carries a header (client id + round id), the
// bit index, and the bit itself; a request carries header + index +
// epsilon. Both round up to whole bytes.
int64_t RequestPayloadBytes();
int64_t ReportPayloadBytes();

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_REPORT_H_
