// Device-health telemetry simulation for the deployment scenario of
// Section 4.3: metric families with the value distributions seen in the
// wild (heavy tails, extreme outliers, constants), plus the upper-bound
// monitor the paper proposes for heavy-tailed / non-stationary data
// ("report an upper bound on the aggregated samples, and flag when this
// bound changes significantly over time").

#ifndef BITPUSH_FEDERATED_TELEMETRY_H_
#define BITPUSH_FEDERATED_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rng/rng.h"

namespace bitpush {

enum class MetricFamily {
  kLatencyMs,        // lognormal: typical tens of ms, long tail
  kCrashCount,       // mostly 0/1 with rare huge outliers (Section 4.3)
  kBatteryDrainPct,  // near-normal, bounded [0, 100]
  kQueueDepth,       // exponential
  kAppVersion,       // constant across the fleet (degenerate)
};

// Human-readable family name for experiment output.
std::string MetricFamilyName(MetricFamily family);

// Generates `n` per-device readings of the given metric family.
std::vector<double> GenerateMetric(MetricFamily family, int64_t n, Rng& rng);

// Generates a per-device *series* of `observations` readings (the
// multi-value-per-client case of Section 4.3).
std::vector<std::vector<double>> GenerateMetricSeries(MetricFamily family,
                                                      int64_t devices,
                                                      int64_t observations,
                                                      Rng& rng);

// The highest bit index whose estimated mean is at least `threshold` — the
// protocol's view of the data's magnitude (b_max). Returns -1 when no bit
// qualifies.
int EstimateHighestUsedBit(const std::vector<double>& bit_means,
                           double threshold);

// Flags windows whose estimated upper bound (b_max) moves by at least
// `flag_shift_bits` relative to the previous window: the heavy-tail /
// non-stationarity signal of Section 1.1.
class UpperBoundMonitor {
 public:
  explicit UpperBoundMonitor(int flag_shift_bits = 2);

  // Observes one window's b_max estimate. Returns true when the shift from
  // the previous window is >= flag_shift_bits. The first window never
  // flags.
  bool ObserveWindow(int b_max);

  int last_bound() const { return last_bound_; }
  int64_t flags_raised() const { return flags_raised_; }

 private:
  int flag_shift_bits_;
  int last_bound_ = -1;
  bool has_history_ = false;
  int64_t flags_raised_ = 0;
};

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_TELEMETRY_H_
