// Fleet simulation over time.
//
// Section 4.3's deployment observations concern a fleet monitored over
// months: device availability varies ("their network connection can be
// unreliable"), metrics drift or regress, and collection windows run on a
// schedule. FleetSimulator models a device population with a diurnal
// availability cycle and an adjustable metric scale, so the windowed
// monitoring pipeline (federated/monitor.h) can be exercised end to end.
//
// Report-time failures are injected through the fault layer
// (federated/faults.h): a reachable device's reading can be lost mid-round,
// straggle past the window's report deadline, or arrive in a corrupt or
// truncated frame. At this layer the transport rejects corrupt and
// truncated frames outright (the monitor never ingests garbled values);
// all injections and rejections accumulate in fault_stats(). Per-window
// collection timing comes from the latency model when model_latency is on.

#ifndef BITPUSH_FEDERATED_FLEET_H_
#define BITPUSH_FEDERATED_FLEET_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "federated/faults.h"
#include "federated/latency.h"
#include "federated/resilience.h"
#include "federated/telemetry.h"
#include "rng/rng.h"

namespace bitpush {

struct FleetConfig {
  int64_t devices = 10000;
  MetricFamily metric = MetricFamily::kLatencyMs;
  // Availability oscillates as base + amplitude * sin(2*pi*hour/24),
  // clamped to [0.05, 1].
  double availability_base = 0.5;
  double availability_amplitude = 0.3;
  // Per-report fault rates, decided deterministically per (window, device)
  // from the simulator seed. All-zero rates disable injection.
  FaultRates report_faults;
  // Straggler cutoff: finite means straggler reports miss the window and
  // are rejected; infinity accepts (and counts) them.
  double report_deadline_minutes = std::numeric_limits<double>::infinity();
  // Collection-latency model driving last_window_minutes().
  LatencyModel latency;
  bool model_latency = false;
  // Recovery layer for the monitoring transport (federated/resilience.h):
  // lost reports are retransmitted on the deterministic backoff schedule
  // (the reading is generated once; retries re-send it, so the main RNG
  // stream is identical with and without resilience), chronically failing
  // devices are quarantined by the per-device breaker, and the per-window
  // deadline budget bounds how much backoff a window may spend. Hedging
  // does not apply here — a monitoring reading has no substitute device.
  ResilienceConfig resilience;
};

class FleetSimulator {
 public:
  FleetSimulator(const FleetConfig& config, uint64_t seed);

  // Advances the simulated clock.
  void AdvanceHours(double hours);
  double hour() const { return hour_; }

  // Current fraction of the fleet reachable by the coordinator.
  double Availability() const;

  // Multiplies the metric scale from now on (e.g. 20.0 simulates a
  // regression inflating the metric 20x).
  void ScaleMetric(double factor);
  double metric_scale() const { return metric_scale_; }

  // Collects one window: each device is independently reachable with
  // probability Availability(); reachable devices contribute one fresh
  // metric reading (scaled by the current metric scale), capped at
  // `max_cohort` (0 = no cap). Readings lost to injected report-time
  // faults are counted in fault_stats() and excluded from the result.
  std::vector<double> CollectWindow(int64_t max_cohort);

  // Cumulative fault injections and transport reactions across windows.
  const FaultStats& fault_stats() const { return fault_stats_; }
  // Cumulative recovery-layer counters (all zero with resilience disabled).
  const RetryStats& retry_stats() const { return retry_stats_; }
  // The per-device circuit breaker, or nullptr when the breaker policy is
  // disabled.
  const HealthTracker* health() const {
    return health_.has_value() ? &*health_ : nullptr;
  }
  // Sampled collection time of the most recent window (0 until a window
  // has run with model_latency enabled). Includes backoff minutes spent by
  // retries when resilience is enabled.
  double last_window_minutes() const { return last_window_minutes_; }
  int64_t windows_collected() const { return window_index_; }

 private:
  FleetConfig config_;
  Rng rng_;
  uint64_t seed_;
  FaultPlan fault_plan_;
  FaultStats fault_stats_;
  RetryStats retry_stats_;
  std::optional<RetrySchedule> retry_schedule_;
  std::optional<HealthTracker> health_;
  int64_t window_index_ = 0;
  double last_window_minutes_ = 0.0;
  double hour_ = 0.0;
  double metric_scale_ = 1.0;
};

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_FLEET_H_
