// Fleet simulation over time.
//
// Section 4.3's deployment observations concern a fleet monitored over
// months: device availability varies ("their network connection can be
// unreliable"), metrics drift or regress, and collection windows run on a
// schedule. FleetSimulator models a device population with a diurnal
// availability cycle and an adjustable metric scale, so the windowed
// monitoring pipeline (federated/monitor.h) can be exercised end to end.

#ifndef BITPUSH_FEDERATED_FLEET_H_
#define BITPUSH_FEDERATED_FLEET_H_

#include <cstdint>
#include <vector>

#include "federated/telemetry.h"
#include "rng/rng.h"

namespace bitpush {

struct FleetConfig {
  int64_t devices = 10000;
  MetricFamily metric = MetricFamily::kLatencyMs;
  // Availability oscillates as base + amplitude * sin(2*pi*hour/24),
  // clamped to [0.05, 1].
  double availability_base = 0.5;
  double availability_amplitude = 0.3;
};

class FleetSimulator {
 public:
  FleetSimulator(const FleetConfig& config, uint64_t seed);

  // Advances the simulated clock.
  void AdvanceHours(double hours);
  double hour() const { return hour_; }

  // Current fraction of the fleet reachable by the coordinator.
  double Availability() const;

  // Multiplies the metric scale from now on (e.g. 20.0 simulates a
  // regression inflating the metric 20x).
  void ScaleMetric(double factor);
  double metric_scale() const { return metric_scale_; }

  // Collects one window: each device is independently reachable with
  // probability Availability(); reachable devices contribute one fresh
  // metric reading (scaled by the current metric scale), capped at
  // `max_cohort` (0 = no cap).
  std::vector<double> CollectWindow(int64_t max_cohort);

 private:
  FleetConfig config_;
  Rng rng_;
  double hour_ = 0.0;
  double metric_scale_ = 1.0;
};

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_FLEET_H_
