// Round-latency model (Section 4.3, "Latency and number of rounds"):
// devices become available to the coordinator as a Poisson process; a round
// is assigned when enough *eligible* devices have checked in, so selective
// queries (low eligibility rates) wait longer, and a two-round protocol
// pays the collection wait twice plus fixed per-round compute/report time.

#ifndef BITPUSH_FEDERATED_LATENCY_H_
#define BITPUSH_FEDERATED_LATENCY_H_

#include <cstdint>

#include "rng/rng.h"

namespace bitpush {

struct LatencyModel {
  // Device check-ins per minute across the whole population.
  double checkins_per_minute = 1000.0;
  // Probability a checking-in device satisfies the query's eligibility
  // predicate (1 = unrestricted query).
  double eligibility_rate = 1.0;
  // Fixed minutes per round for assignment, on-device compute, and
  // report-back once the cohort is filled ("the typical time to complete a
  // round on our FA stack is a matter of minutes").
  double fixed_round_minutes = 3.0;

  friend bool operator==(const LatencyModel&, const LatencyModel&) = default;
};

// Expected minutes to gather `cohort_size` eligible devices.
double ExpectedCollectionMinutes(const LatencyModel& model,
                                 int64_t cohort_size);

// Expected end-to-end minutes for a protocol with `rounds` rounds needing
// `cohort_size` eligible devices in total (split evenly across rounds).
double ExpectedQueryMinutes(const LatencyModel& model, int64_t cohort_size,
                            int rounds);

// One stochastic draw of the collection time (sum of exponential
// inter-arrival gaps thinned by eligibility), for simulations.
double SampleCollectionMinutes(const LatencyModel& model,
                               int64_t cohort_size, Rng& rng);

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_LATENCY_H_
