// The aggregation server: orchestrates one bit-collection round over a
// cohort of clients, optionally routing per-bit tallies through simulated
// secure aggregation, and turns pooled histograms into mean estimates.

#ifndef BITPUSH_FEDERATED_SERVER_H_
#define BITPUSH_FEDERATED_SERVER_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/bit_pushing.h"
#include "core/fixed_point.h"
#include "core/privacy_meter.h"
#include "federated/client.h"
#include "federated/faults.h"
#include "federated/report.h"
#include "federated/resilience.h"
#include "rng/rng.h"

namespace bitpush {

class QueryRecorder;  // federated/persist_hooks.h

struct RoundConfig {
  // Per-bit sampling probabilities (length = codec bits, sums to 1).
  std::vector<double> probabilities;
  // Randomized-response budget each client applies; <= 0 disables.
  double epsilon = 0.0;
  // Server-chosen bit indices (QMC) vs client-chosen. Under central
  // randomness the server tallies reports under the *assigned* index,
  // ignoring any index the client claims — the poisoning defense of
  // Section 5.
  bool central_randomness = true;
  // Route per-bit tallies through SecureAggregator so the server only ever
  // sees sums (Section 3.3).
  bool use_secure_aggregation = false;
  // Identifies the value being queried, for privacy metering.
  int64_t value_id = 0;
  int64_t round_id = 0;
  // Fault injection (nullptr runs a clean round) and the server's reaction
  // policy; the policy defaults reproduce clean-round behavior exactly.
  const FaultPlan* fault_plan = nullptr;
  FaultPolicy fault_policy;
  // Replacement clients (indices into `clients`), drawn in order by the
  // backfill passes when accepted reports fall short of the cohort.
  std::vector<int64_t> backfill_pool;
  // Client ids assigned in an earlier round of the same query. Their
  // check-ins are rejected and counted (the crash-recheckin dedup policy:
  // at most one assignment per client per query).
  const std::unordered_set<int64_t>* already_assigned = nullptr;
  // Durability hook (nullptr disables journaling): receives assignment and
  // accepted-report events as they happen; see federated/persist_hooks.h.
  QueryRecorder* recorder = nullptr;
  // Active recovery (federated/resilience.h): retries, hedged assignments,
  // and the round's deadline budget. The default disables everything and
  // reproduces pre-resilience behavior byte for byte.
  ResilienceConfig resilience;
  // Per-client circuit breaker consulted (read-only) during assignment;
  // quarantined clients are excluded from the cohort, backfill, and hedges.
  // Owned by the caller (typically the campaign); nullptr disables it. The
  // round never mutates it — the caller applies the outcome's
  // succeeded/failed lists at the round boundary.
  const HealthTracker* health = nullptr;
};

struct RoundOutcome {
  BitHistogram histogram;
  int64_t contacted = 0;
  int64_t responded = 0;
  // Reports rejected for carrying an out-of-range bit index (only possible
  // under local randomness, where the client names the index).
  int64_t malformed_reports = 0;
  double dropout_rate = 0.0;
  CommunicationStats comm;
  // Intended per-bit report counts from the QMC assignment (empty under
  // local randomness); compared against realized counts for the dropout
  // auto-adjustment of Section 4.3.
  std::vector<int64_t> intended_counts;
  // Injected-fault and server-reaction counters for this round.
  FaultStats faults;
  // Indices (into `clients`) that were issued an assignment this round,
  // including backfill replacements; feeds the next round's dedup set.
  std::vector<int64_t> assigned_clients;
  // Indices that crashed after assignment (kRoundBoundaryCrash) — the
  // clients that will attempt to re-check-in next round.
  std::vector<int64_t> crashed_clients;
  // Recovery-layer counters for this round (all zero when resilience is
  // disabled).
  RetryStats retry;
  // Client ids whose assignment ultimately produced an accepted report,
  // and ids whose assignment ultimately failed (dropout after retries,
  // rejected report, crash, late straggler), in decision order. These feed
  // HealthTracker::ObserveRound at the round boundary — recorded here, not
  // applied in-round, so a restored round updates the breaker identically
  // to a live one.
  std::vector<int64_t> succeeded_client_ids;
  std::vector<int64_t> failed_client_ids;
};

// Serialization of a completed round's full outcome, used by the journal's
// round-closed records (src/persist/). Decoding validates every field
// (counts non-negative, rates finite, histogram internally consistent) and
// returns false without touching `*out` on any violation.
void EncodeRoundOutcome(const RoundOutcome& outcome, std::vector<uint8_t>* out);
bool DecodeRoundOutcome(const std::vector<uint8_t>& buffer, size_t* offset,
                        RoundOutcome* out);

class AggregationServer {
 public:
  explicit AggregationServer(const FixedPointCodec& codec);

  const FixedPointCodec& codec() const { return codec_; }

  // Runs one round over clients[cohort[*]]. `meter` may be null.
  RoundOutcome RunRound(const std::vector<Client>& clients,
                        const std::vector<int64_t>& cohort,
                        const RoundConfig& config, PrivacyMeter* meter,
                        Rng& rng) const;

  // Unbiases, recombines, and decodes a pooled histogram into the value
  // domain. `epsilon` must match what the reports were perturbed with.
  double EstimateMean(const BitHistogram& histogram, double epsilon) const;

 private:
  FixedPointCodec codec_;
};

// Rebalances sampling probabilities after observing dropout: bit j's
// probability is scaled by intended_j / realized_j (clamped to [1/2, 2] for
// stability) so under-reported bits receive more assignments next round.
std::vector<double> AdjustProbabilitiesForDropout(
    const std::vector<double>& probabilities,
    const std::vector<int64_t>& intended_counts,
    const std::vector<int64_t>& realized_counts);

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_SERVER_H_
