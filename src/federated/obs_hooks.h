// Shared metric-application helpers for the federated stack. Round- and
// query-boundary metrics must be applied exactly once per round/query on
// every execution path — live run, journal-restored round (round.cc), and
// recovery replay of finished queries (persist/recovery.cc ApplyJournal) —
// or a crash-recovered rerun would diverge from an uninterrupted one.
// Centralizing the application here keeps the three call sites identical;
// docs/OBSERVABILITY.md documents the contract and the metric catalog.

#ifndef BITPUSH_FEDERATED_OBS_HOOKS_H_
#define BITPUSH_FEDERATED_OBS_HOOKS_H_

#include <cstdint>

namespace bitpush {

struct RoundOutcome;
struct CampaignTickResult;
class HealthTracker;

// Applies one closed round's counters (rounds, cohort reach, wire bytes,
// fault reactions, retry/hedge recovery, simulated round duration). All
// kStable: derived from the journaled outcome, so restored rounds apply
// the exact values a live run would.
void ObserveRoundOutcome(const RoundOutcome& outcome);

// Publishes the circuit breaker's current state as gauges (opens, closes,
// quarantined and tracked clients). Gauges are set from the tracker, not
// accumulated, so replayed breaker transitions land on the same values.
void ObserveBreakerState(const HealthTracker& health);

// Applies one scheduled query's terminal counters (ran/skipped and
// accepted reports). Call on the campaign's common path so restored and
// live queries count identically.
void ObserveQueryResult(const CampaignTickResult& result);

// Counts one campaign tick.
void ObserveCampaignTick();

// Applies one merged shard tick's counters (frames merged, shards lost,
// quorum failures, degraded ticks). All kVolatile: the single-coordinator
// reference run never exercises the merge tier, and the sharded-vs-single
// oracle compares deterministic (kStable-only) snapshots, so shard-layer
// traffic must not appear there.
void ObserveShardTickMerged(int64_t shards_delivered, int64_t shards_lost,
                            bool quorum_failed);

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_OBS_HOOKS_H_
