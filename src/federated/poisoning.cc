#include "federated/poisoning.h"

#include "util/check.h"

namespace bitpush {

int PoisonedBit(AdversaryMode mode, bool local_randomness, int top_bit_index,
                int assigned_bit_index, int true_bit, int* reported_index) {
  BITPUSH_CHECK(reported_index != nullptr);
  BITPUSH_CHECK(true_bit == 0 || true_bit == 1);
  *reported_index = assigned_bit_index;
  switch (mode) {
    case AdversaryMode::kHonest:
      return true_bit;
    case AdversaryMode::kAlwaysOne:
      return 1;
    case AdversaryMode::kTopBitOne:
      if (local_randomness) *reported_index = top_bit_index;
      return 1;
    case AdversaryMode::kFlipBit:
      return 1 - true_bit;
    case AdversaryMode::kGarbageIndex:
      if (local_randomness) *reported_index = top_bit_index + 1000;
      return 1;
  }
  BITPUSH_CHECK(false) << "unreachable";
  return 0;
}

}  // namespace bitpush
