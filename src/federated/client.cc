#include "federated/client.h"

#include "stats/welford.h"
#include "util/check.h"

namespace bitpush {

Client::Client(int64_t id, std::vector<double> values, ClientConfig config)
    : id_(id), values_(std::move(values)), config_(config) {
  BITPUSH_CHECK(!values_.empty());
  BITPUSH_CHECK_GE(config_.dropout_probability, 0.0);
  BITPUSH_CHECK_LE(config_.dropout_probability, 1.0);
}

double Client::SelectValue(Rng& rng) const {
  switch (config_.value_policy) {
    case ValuePolicy::kSampleOne:
      return values_[rng.NextBelow(values_.size())];
    case ValuePolicy::kLocalMean: {
      Welford acc;
      for (const double v : values_) acc.Add(v);
      return acc.mean();
    }
    case ValuePolicy::kFirstValue:
      return values_.front();
  }
  BITPUSH_CHECK(false) << "unreachable";
  return 0.0;
}

std::optional<BitReport> Client::HandleRequest(const BitRequest& request,
                                               const FixedPointCodec& codec,
                                               bool local_randomness,
                                               PrivacyMeter* meter,
                                               Rng& rng) const {
  if (rng.NextBernoulli(config_.dropout_probability)) return std::nullopt;
  if (meter != nullptr &&
      !meter->TryChargeBit(id_, request.value_id,
                           request.rr_epsilon > 0 ? request.rr_epsilon
                                                  : 0.0)) {
    return std::nullopt;
  }

  const uint64_t codeword = codec.Encode(SelectValue(rng));
  const int true_bit = FixedPointCodec::Bit(codeword, request.bit_index);
  int reported_index = request.bit_index;
  const int raw_bit =
      PoisonedBit(config_.adversary, local_randomness, codec.bits() - 1,
                  request.bit_index, true_bit, &reported_index);
  const RandomizedResponse rr =
      RandomizedResponse::FromEpsilon(request.rr_epsilon);
  // Adversaries skip their own noise addition: they report exactly the bit
  // they want the server to see. Honest clients perturb.
  const int bit = config_.adversary == AdversaryMode::kHonest
                      ? rr.Apply(raw_bit, rng)
                      : raw_bit;
  return BitReport{id_, reported_index, bit};
}

std::vector<Client> MakePopulation(const std::vector<double>& values,
                                   const ClientConfig& config) {
  std::vector<Client> clients;
  clients.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    clients.emplace_back(static_cast<int64_t>(i),
                         std::vector<double>{values[i]}, config);
  }
  return clients;
}

}  // namespace bitpush
