#include "federated/faults.h"

#include "federated/wire.h"
#include "util/bytes.h"
#include "util/check.h"

namespace bitpush {
namespace {

// SplitMix64 finalizer: the same mixer the Rng uses for seeding, reused
// here as a stateless hash so fault decisions need no stream position.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void CheckRate(double rate) {
  BITPUSH_CHECK_GE(rate, 0.0);
  BITPUSH_CHECK_LE(rate, 1.0);
}

// Salt stride separating retry attempts: attempt k uses the base salts
// shifted by k * kAttemptSaltStride, so attempt 0 reproduces the original
// hashes exactly and no attempt's salts collide with another's (the base
// salts occupy [0, 4 + flips), far below the stride).
constexpr uint64_t kAttemptSaltStride = 16;

uint64_t AttemptSalt(uint64_t base_salt, int64_t attempt) {
  return base_salt + kAttemptSaltStride * static_cast<uint64_t>(attempt);
}

}  // namespace

bool FaultRates::Any() const {
  return mid_round_dropout > 0.0 || straggler > 0.0 ||
         corrupt_message > 0.0 || truncate_message > 0.0 ||
         round_boundary_crash > 0.0;
}

FaultPlan::FaultPlan() = default;

FaultPlan::FaultPlan(uint64_t seed, const FaultRates& rates)
    : seed_(seed), rates_(rates), enabled_(rates.Any()) {
  CheckRate(rates_.mid_round_dropout);
  CheckRate(rates_.straggler);
  CheckRate(rates_.corrupt_message);
  CheckRate(rates_.truncate_message);
  CheckRate(rates_.round_boundary_crash);
  BITPUSH_CHECK_LE(rates_.mid_round_dropout + rates_.straggler +
                       rates_.corrupt_message + rates_.truncate_message +
                       rates_.round_boundary_crash,
                   1.0 + 1e-12);
}

uint64_t FaultPlan::Hash(int64_t round_id, int64_t client_id,
                         uint64_t salt) const {
  uint64_t h = Mix(seed_ ^ Mix(static_cast<uint64_t>(round_id)));
  h = Mix(h ^ static_cast<uint64_t>(client_id));
  return Mix(h ^ salt);
}

double FaultPlan::HashUniform(int64_t round_id, int64_t client_id,
                              uint64_t salt) const {
  return static_cast<double>(Hash(round_id, client_id, salt) >> 11) *
         0x1.0p-53;
}

FaultType FaultPlan::Decide(int64_t round_id, int64_t client_id) const {
  return DecideAttempt(round_id, client_id, /*attempt=*/0);
}

FaultType FaultPlan::DecideAttempt(int64_t round_id, int64_t client_id,
                                   int64_t attempt) const {
  BITPUSH_CHECK_GE(attempt, 0);
  if (!enabled_) return FaultType::kNone;
  const double u =
      HashUniform(round_id, client_id, AttemptSalt(/*base_salt=*/0, attempt));
  double edge = rates_.mid_round_dropout;
  if (u < edge) return FaultType::kMidRoundDropout;
  edge += rates_.straggler;
  if (u < edge) return FaultType::kStraggler;
  edge += rates_.corrupt_message;
  if (u < edge) return FaultType::kCorruptMessage;
  edge += rates_.truncate_message;
  if (u < edge) return FaultType::kTruncateMessage;
  edge += rates_.round_boundary_crash;
  if (u < edge) {
    return round_id == 1 ? FaultType::kRoundBoundaryCrash : FaultType::kNone;
  }
  return FaultType::kNone;
}

double FaultPlan::StragglerDelayMinutes(int64_t round_id,
                                        int64_t client_id) const {
  return 1.0 + 59.0 * HashUniform(round_id, client_id, /*salt=*/1);
}

void FaultPlan::CorruptBuffer(int64_t round_id, int64_t client_id,
                              std::vector<uint8_t>* buffer) const {
  CorruptBuffer(round_id, client_id, /*attempt=*/0, buffer);
}

void FaultPlan::CorruptBuffer(int64_t round_id, int64_t client_id,
                              int64_t attempt,
                              std::vector<uint8_t>* buffer) const {
  BITPUSH_CHECK(buffer != nullptr);
  BITPUSH_CHECK_GE(attempt, 0);
  if (buffer->empty()) return;
  const int flips = 1 + static_cast<int>(Hash(round_id, client_id,
                                              AttemptSalt(/*base_salt=*/2,
                                                          attempt)) %
                                         3);
  for (int k = 0; k < flips; ++k) {
    const uint64_t h = Hash(
        round_id, client_id,
        AttemptSalt(/*base_salt=*/3 + static_cast<uint64_t>(k), attempt));
    const size_t pos = static_cast<size_t>(h % buffer->size());
    // A non-zero XOR mask guarantees the byte actually changes.
    const uint8_t mask = static_cast<uint8_t>(1 + (h >> 32) % 255);
    (*buffer)[pos] ^= mask;
  }
}

size_t FaultPlan::TruncatedSize(int64_t round_id, int64_t client_id,
                                size_t full_size) const {
  return TruncatedSize(round_id, client_id, /*attempt=*/0, full_size);
}

size_t FaultPlan::TruncatedSize(int64_t round_id, int64_t client_id,
                                int64_t attempt, size_t full_size) const {
  BITPUSH_CHECK_GE(full_size, 1u);
  BITPUSH_CHECK_GE(attempt, 0);
  return static_cast<size_t>(
      Hash(round_id, client_id, AttemptSalt(/*base_salt=*/4, attempt)) %
      full_size);
}

int64_t FaultStats::InjectedTotal() const {
  return injected_dropouts + injected_stragglers + injected_corruptions +
         injected_truncations + injected_crashes;
}

void FaultStats::MergeFrom(const FaultStats& other) {
  injected_dropouts += other.injected_dropouts;
  injected_stragglers += other.injected_stragglers;
  injected_corruptions += other.injected_corruptions;
  injected_truncations += other.injected_truncations;
  injected_crashes += other.injected_crashes;
  late_reports_rejected += other.late_reports_rejected;
  late_reports_accepted += other.late_reports_accepted;
  corrupt_reports_rejected += other.corrupt_reports_rejected;
  corrupt_reports_accepted += other.corrupt_reports_accepted;
  truncated_reports_rejected += other.truncated_reports_rejected;
  recheckins_rejected += other.recheckins_rejected;
  backfill_requests += other.backfill_requests;
  backfill_reports += other.backfill_reports;
  backfill_rounds_used += other.backfill_rounds_used;
  static_policy_fallbacks += other.static_policy_fallbacks;
}

namespace {

// The 15 counters in their fixed serialization order; Encode and Decode
// share the list so the order cannot drift between them.
constexpr int64_t FaultStats::* kFaultStatsFields[] = {
    &FaultStats::injected_dropouts,
    &FaultStats::injected_stragglers,
    &FaultStats::injected_corruptions,
    &FaultStats::injected_truncations,
    &FaultStats::injected_crashes,
    &FaultStats::late_reports_rejected,
    &FaultStats::late_reports_accepted,
    &FaultStats::corrupt_reports_rejected,
    &FaultStats::corrupt_reports_accepted,
    &FaultStats::truncated_reports_rejected,
    &FaultStats::recheckins_rejected,
    &FaultStats::backfill_requests,
    &FaultStats::backfill_reports,
    &FaultStats::backfill_rounds_used,
    &FaultStats::static_policy_fallbacks,
};

}  // namespace

void EncodeFaultStats(const FaultStats& stats, std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  for (const auto field : kFaultStatsFields) {
    bytes::PutInt64(stats.*field, out);
  }
}

bool DecodeFaultStats(const std::vector<uint8_t>& buffer, size_t* offset,
                      FaultStats* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = *offset;
  FaultStats stats;
  for (const auto field : kFaultStatsFields) {
    if (!bytes::GetInt64(buffer, &cursor, &(stats.*field))) return false;
    if (stats.*field < 0) return false;
  }
  *out = stats;
  *offset = cursor;
  return true;
}

std::optional<BitReport> DeliverFaultedReport(const FaultPlan& plan,
                                              int64_t round_id,
                                              int64_t client_id,
                                              FaultType fault,
                                              const BitReport& report,
                                              FaultStats* stats) {
  return DeliverFaultedReport(plan, round_id, client_id, /*attempt=*/0, fault,
                              report, stats);
}

std::optional<BitReport> DeliverFaultedReport(const FaultPlan& plan,
                                              int64_t round_id,
                                              int64_t client_id,
                                              int64_t attempt, FaultType fault,
                                              const BitReport& report,
                                              FaultStats* stats) {
  BITPUSH_CHECK(stats != nullptr);
  BITPUSH_CHECK(fault == FaultType::kCorruptMessage ||
                fault == FaultType::kTruncateMessage);
  std::vector<uint8_t> frame;
  // bitpush-lint: allow(privacy-metering): fault injection re-encodes a report the client already paid a meter charge for; no new bit is disclosed here
  EncodeBitReport(report, &frame);
  if (fault == FaultType::kTruncateMessage) {
    ++stats->injected_truncations;
    frame.resize(
        plan.TruncatedSize(round_id, client_id, attempt, frame.size()));
    size_t offset = 0;
    BitReport decoded;
    // A truncated frame is always shorter than the fixed wire size, so the
    // bounds-checked decode rejects it.
    if (!DecodeBitReport(frame, &offset, &decoded)) {
      ++stats->truncated_reports_rejected;
      return std::nullopt;
    }
    return decoded;
  }
  ++stats->injected_corruptions;
  plan.CorruptBuffer(round_id, client_id, attempt, &frame);
  size_t offset = 0;
  BitReport decoded;
  if (!DecodeBitReport(frame, &offset, &decoded)) {
    ++stats->corrupt_reports_rejected;
    return std::nullopt;
  }
  ++stats->corrupt_reports_accepted;
  return decoded;
}

}  // namespace bitpush
