// Simulated secure aggregation (Section 3.3): "the server knows the sum of
// the input values, without revealing anything further about the inputs of
// individual clients".
//
// Clients add pairwise-cancelling additive masks over Z_{2^64} before
// submitting; the server observes only masked values, which are
// individually uniform, but their modular sum equals the true sum. If any
// expected contributor drops out, the masks no longer cancel and the sum is
// unrecoverable — the same failure mode that forces real secure-aggregation
// deployments to batch a committed cohort (Section 1.1 contrasts this with
// bit-pushing's tolerance of asynchronous updates).

#ifndef BITPUSH_FEDERATED_SECURE_AGG_H_
#define BITPUSH_FEDERATED_SECURE_AGG_H_

#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace bitpush {

class SecureAggregator {
 public:
  // Sets up masks for `expected_contributors` clients. Masks sum to zero
  // modulo 2^64.
  SecureAggregator(int64_t expected_contributors, Rng& rng);

  // Client-side: returns value + mask_i (mod 2^64) for contributor slot i.
  // Each slot may be used once.
  uint64_t Mask(int64_t contributor_index, uint64_t value);

  // Bulk Mask for contributor slots [first_slot, first_slot + count):
  // out[i] = values[i] + mask_{first_slot + i} (mod 2^64), applied by the
  // kernel layer's word-add (src/kernels/). Identical to calling Mask per
  // slot; each slot may still be used only once.
  void MaskBatch(const uint64_t* values, int64_t count, int64_t first_slot,
                 uint64_t* out);

  // Server-side: records a masked submission.
  void Submit(uint64_t masked_value);

  // Bulk Submit of `count` masked values in order.
  void SubmitBatch(const uint64_t* masked_values, int64_t count);

  // True once every expected contributor has submitted.
  bool complete() const;
  int64_t submissions() const {
    return static_cast<int64_t>(received_.size());
  }

  // The aggregate, valid only when complete(); the caller must check.
  // Returns the exact sum of the unmasked values (mod 2^64).
  uint64_t Sum() const;

  // The server's raw view, exposed for tests that verify individual values
  // are not recoverable.
  const std::vector<uint64_t>& received() const { return received_; }

 private:
  std::vector<uint64_t> masks_;
  std::vector<bool> mask_used_;
  std::vector<uint64_t> received_;
};

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_SECURE_AGG_H_
