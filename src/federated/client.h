// Simulated client device.
//
// A client holds one or more private values for a feature (Section 4.3:
// "for many features of interest, most clients hold several values"),
// selects the value to contribute per the configured semantics, and answers
// the server's bit requests — metering every disclosed private bit, and
// dropping out of rounds with a configured probability (the intermittent
// connectivity of Section 4.3).

#ifndef BITPUSH_FEDERATED_CLIENT_H_
#define BITPUSH_FEDERATED_CLIENT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/fixed_point.h"
#include "core/privacy_meter.h"
#include "federated/poisoning.h"
#include "federated/report.h"
#include "ldp/randomized_response.h"
#include "rng/rng.h"

namespace bitpush {

// How a multi-value client reduces its local values to the single value it
// contributes (Section 4.3, "Aggregating multiple local values per
// feature").
enum class ValuePolicy {
  kSampleOne,   // uniform random local value (the deployed semantics)
  kLocalMean,   // mean of the local values
  kFirstValue,  // deterministic; degenerate single-value clients
};

struct ClientConfig {
  double dropout_probability = 0.0;
  ValuePolicy value_policy = ValuePolicy::kSampleOne;
  AdversaryMode adversary = AdversaryMode::kHonest;
};

class Client {
 public:
  // `values` must be non-empty.
  Client(int64_t id, std::vector<double> values, ClientConfig config);

  int64_t id() const { return id_; }
  const std::vector<double>& values() const { return values_; }
  const ClientConfig& config() const { return config_; }

  // The value this client would contribute under its policy.
  double SelectValue(Rng& rng) const;

  // Handles one bit request. Returns nullopt when the client drops out of
  // the round or its privacy meter refuses the disclosure. `local_bit_index`
  // lets a local-randomness protocol (or an adversary) override the
  // server's choice; honest central-randomness clients pass the request's
  // index through. `meter` may be null (no metering).
  std::optional<BitReport> HandleRequest(const BitRequest& request,
                                         const FixedPointCodec& codec,
                                         bool local_randomness,
                                         PrivacyMeter* meter, Rng& rng) const;

 private:
  int64_t id_;
  std::vector<double> values_;
  ClientConfig config_;
};

// Builds one single-value client per element of `values`, ids 0..n-1.
std::vector<Client> MakePopulation(const std::vector<double>& values,
                                   const ClientConfig& config);

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_CLIENT_H_
