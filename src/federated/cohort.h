// Cohort selection: eligibility filtering, sub-sampling, and the minimum
// cohort size check of Section 4.3 ("enforce a minimum cohort size for
// privacy" for selective queries).

#ifndef BITPUSH_FEDERATED_COHORT_H_
#define BITPUSH_FEDERATED_COHORT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "federated/client.h"
#include "rng/rng.h"

namespace bitpush {

struct CohortPolicy {
  // Rounds abort when fewer eligible clients than this are available.
  int64_t min_cohort_size = 1;
  // Cap on cohort size; 0 means "all eligible clients".
  int64_t max_cohort_size = 0;
};

// Returns the indices (into `clients`) of the selected cohort: clients
// passing `eligible` (null accepts everyone), shuffled, truncated to
// max_cohort_size. An empty result with *below_minimum = true signals a
// round that must abort. When `unselected` is non-null it receives the
// eligible clients the truncation left out (still in shuffled order) — the
// replacement pool the fault layer's backfill draws from.
std::vector<int64_t> SelectCohort(
    const std::vector<Client>& clients,
    const std::function<bool(const Client&)>& eligible,
    const CohortPolicy& policy, Rng& rng, bool* below_minimum,
    std::vector<int64_t>* unselected = nullptr);

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_COHORT_H_
