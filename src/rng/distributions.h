// Samplers for the probability distributions used by workload generators and
// privacy mechanisms. All samplers are pure functions of the supplied Rng.

#ifndef BITPUSH_RNG_DISTRIBUTIONS_H_
#define BITPUSH_RNG_DISTRIBUTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace bitpush {

// Uniform real in [low, high).
double SampleUniform(Rng& rng, double low, double high);

// Normal(mean, stddev) via Marsaglia polar method. `stddev` must be >= 0.
double SampleNormal(Rng& rng, double mean, double stddev);

// Exponential with the given mean (= 1/rate). `mean` must be > 0.
double SampleExponential(Rng& rng, double mean);

// Laplace(location, scale) via inverse CDF. `scale` must be > 0.
double SampleLaplace(Rng& rng, double location, double scale);

// Pareto with minimum `scale` > 0 and tail index `shape` > 0 (heavy-tailed
// for shape <= 2).
double SamplePareto(Rng& rng, double scale, double shape);

// Lognormal: exp(Normal(log_mean, log_stddev)).
double SampleLognormal(Rng& rng, double log_mean, double log_stddev);

// Samples an index in [0, weights.size()) with probability proportional to
// weights[i]. Weights must be non-negative with a positive sum.
size_t SampleDiscrete(Rng& rng, const std::vector<double>& weights);

// Binomial(n, p) by summing Bernoulli draws for small n and a normal
// approximation guarded to [0, n] for large n (n*p*(1-p) > 100). Used for
// simulating aggregate noise; the approximation error is far below the
// statistical noise being modeled.
int64_t SampleBinomial(Rng& rng, int64_t n, double p);

// Precomputed alias-free cumulative sampler for repeated draws from one
// discrete distribution (used by the census workload, where millions of
// draws share the same weights).
class DiscreteSampler {
 public:
  // Weights must be non-negative with a positive sum.
  explicit DiscreteSampler(const std::vector<double>& weights);

  size_t Sample(Rng& rng) const;
  size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;  // normalized, nondecreasing, ends at 1
};

}  // namespace bitpush

#endif  // BITPUSH_RNG_DISTRIBUTIONS_H_
