// Deterministic pseudo-random number generation.
//
// All randomized components of the library draw from an explicit Rng so
// every experiment is reproducible from a 64-bit seed. The generator is
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, a standard
// combination with good statistical quality and a tiny state. It is not
// cryptographically secure; the library simulates protocols, it does not
// implement production client-side noise.

#ifndef BITPUSH_RNG_RNG_H_
#define BITPUSH_RNG_RNG_H_

#include <cstdint>

namespace bitpush {

class Rng {
 public:
  // Seeds the generator. Any seed (including 0) is valid; SplitMix64
  // expansion guarantees a non-degenerate internal state.
  explicit Rng(uint64_t seed);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  // Returns the next 64 uniformly random bits.
  uint64_t NextUint64();

  // Returns a uniform double in [0, 1) with 53 random mantissa bits.
  double NextDouble();

  // Returns a uniform integer in [0, bound). `bound` must be positive.
  // Uses rejection sampling, so the result is exactly uniform.
  uint64_t NextBelow(uint64_t bound);

  // Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // Returns a single uniformly random bit as an int in {0, 1}.
  int NextBit();

  // Derives an independent generator. Forked streams do not overlap in any
  // realistic use because the child is re-seeded through SplitMix64 from
  // fresh output of the parent.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace bitpush

#endif  // BITPUSH_RNG_RNG_H_
