#include "rng/distributions.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace bitpush {

double SampleUniform(Rng& rng, double low, double high) {
  BITPUSH_CHECK_LE(low, high);
  return low + (high - low) * rng.NextDouble();
}

double SampleNormal(Rng& rng, double mean, double stddev) {
  BITPUSH_CHECK_GE(stddev, 0.0);
  if (stddev == 0.0) return mean;
  // Marsaglia polar method; we discard the second variate to keep samplers
  // stateless (workload generation is not a hot path).
  while (true) {
    const double u = 2.0 * rng.NextDouble() - 1.0;
    const double v = 2.0 * rng.NextDouble() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double SampleExponential(Rng& rng, double mean) {
  BITPUSH_CHECK_GT(mean, 0.0);
  // -mean * log(U) with U in (0, 1].
  return -mean * std::log(1.0 - rng.NextDouble());
}

double SampleLaplace(Rng& rng, double location, double scale) {
  BITPUSH_CHECK_GT(scale, 0.0);
  const double u = rng.NextDouble() - 0.5;  // (-0.5, 0.5)
  const double magnitude = -std::log(1.0 - 2.0 * std::abs(u));
  return location + (u < 0 ? -scale : scale) * magnitude;
}

double SamplePareto(Rng& rng, double scale, double shape) {
  BITPUSH_CHECK_GT(scale, 0.0);
  BITPUSH_CHECK_GT(shape, 0.0);
  const double u = 1.0 - rng.NextDouble();  // (0, 1]
  return scale / std::pow(u, 1.0 / shape);
}

double SampleLognormal(Rng& rng, double log_mean, double log_stddev) {
  return std::exp(SampleNormal(rng, log_mean, log_stddev));
}

size_t SampleDiscrete(Rng& rng, const std::vector<double>& weights) {
  const DiscreteSampler sampler(weights);
  return sampler.Sample(rng);
}

int64_t SampleBinomial(Rng& rng, int64_t n, double p) {
  BITPUSH_CHECK_GE(n, 0);
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const double variance = static_cast<double>(n) * p * (1.0 - p);
  if (variance > 100.0) {
    const double mean = static_cast<double>(n) * p;
    const double draw = std::round(SampleNormal(rng, mean, std::sqrt(variance)));
    return std::clamp<int64_t>(static_cast<int64_t>(draw), 0, n);
  }
  int64_t successes = 0;
  for (int64_t i = 0; i < n; ++i) successes += rng.NextBernoulli(p) ? 1 : 0;
  return successes;
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  BITPUSH_CHECK(!weights.empty());
  cumulative_.reserve(weights.size());
  double total = 0.0;
  for (const double w : weights) {
    BITPUSH_CHECK_GE(w, 0.0);
    total += w;
    cumulative_.push_back(total);
  }
  BITPUSH_CHECK_GT(total, 0.0);
  for (double& c : cumulative_) c /= total;
  cumulative_.back() = 1.0;  // guard against rounding drift
}

size_t DiscreteSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<size_t>(std::min<ptrdiff_t>(
      it - cumulative_.begin(),
      static_cast<ptrdiff_t>(cumulative_.size()) - 1));
}

}  // namespace bitpush
