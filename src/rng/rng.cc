#include "rng/rng.h"

#include "util/check.h"

namespace bitpush {
namespace {

// SplitMix64 step, used only for seeding.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotateLeft(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotateLeft(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotateLeft(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // Top 53 bits give a uniform dyadic rational in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  BITPUSH_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound` that fits.
  const uint64_t threshold = -bound % bound;  // (2^64 - bound) mod bound
  while (true) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int Rng::NextBit() { return static_cast<int>(NextUint64() >> 63); }

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace bitpush
