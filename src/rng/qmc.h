// Quasi-Monte-Carlo client-to-bit assignment (central randomness).
//
// The paper's default sampling mode has the *server* select which bit each
// client reports: "the server randomly selects a p_j fraction of clients to
// report back on bit j. This reduces variance in the number of reports of
// each bit" (Section 3.1). We realize this with deterministic proportional
// allocation: group sizes are fixed to the largest-remainder rounding of
// n * p_j (so the per-bit report counts have no sampling variance at all),
// and a seeded shuffle decides which concrete clients land in each group
// (so membership is uncorrelated with client identity).
//
// This central mode is also the defense against bit-choice poisoning
// (Section 5): a malicious client cannot elect to report the top bit.

#ifndef BITPUSH_RNG_QMC_H_
#define BITPUSH_RNG_QMC_H_

#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace bitpush {

// Rounds n * p_j to integer group sizes that sum exactly to n, using the
// largest-remainder method. `probabilities` must be non-negative and sum to
// 1 (within 1e-9); n must be >= 0. Any bit with p_j > 0 is guaranteed at
// least its floor; remainders are distributed by descending fractional part
// with ties broken by lower index.
std::vector<int64_t> ProportionalGroupSizes(
    int64_t n, const std::vector<double>& probabilities);

// Assigns each client in [0, n) a bit index, with exactly
// ProportionalGroupSizes(n, probabilities)[j] clients on bit j, permuted by
// a Fisher-Yates shuffle driven by `rng`. Returns the per-client bit index.
std::vector<int> AssignBitsCentral(int64_t n,
                                   const std::vector<double>& probabilities,
                                   Rng& rng);

// Local-randomness alternative: each client independently samples its bit
// from `probabilities`. Per-bit report counts are then Binomial(n, p_j),
// which is the higher-variance mode the paper advises against; provided for
// the poisoning and variance ablations.
std::vector<int> AssignBitsLocal(int64_t n,
                                 const std::vector<double>& probabilities,
                                 Rng& rng);

}  // namespace bitpush

#endif  // BITPUSH_RNG_QMC_H_
