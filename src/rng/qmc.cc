#include "rng/qmc.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "rng/distributions.h"
#include "util/check.h"

namespace bitpush {

std::vector<int64_t> ProportionalGroupSizes(
    int64_t n, const std::vector<double>& probabilities) {
  BITPUSH_CHECK_GE(n, 0);
  BITPUSH_CHECK(!probabilities.empty());
  double total = 0.0;
  for (const double p : probabilities) {
    BITPUSH_CHECK_GE(p, 0.0);
    total += p;
  }
  BITPUSH_CHECK(std::abs(total - 1.0) < 1e-9)
      << "probabilities must sum to 1, got " << total;

  const size_t k = probabilities.size();
  std::vector<int64_t> sizes(k);
  std::vector<double> remainders(k);
  int64_t allocated = 0;
  for (size_t j = 0; j < k; ++j) {
    const double exact = static_cast<double>(n) * probabilities[j];
    sizes[j] = static_cast<int64_t>(std::floor(exact));
    remainders[j] = exact - static_cast<double>(sizes[j]);
    allocated += sizes[j];
  }
  // Distribute the leftover slots by descending remainder (ties -> lower j).
  std::vector<size_t> order(k);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return remainders[a] > remainders[b];
  });
  int64_t leftover = n - allocated;
  BITPUSH_CHECK_GE(leftover, 0);
  for (size_t i = 0; leftover > 0; i = (i + 1) % k, --leftover) {
    ++sizes[order[i]];
  }
  return sizes;
}

std::vector<int> AssignBitsCentral(int64_t n,
                                   const std::vector<double>& probabilities,
                                   Rng& rng) {
  const std::vector<int64_t> sizes = ProportionalGroupSizes(n, probabilities);
  std::vector<int> assignment;
  assignment.reserve(static_cast<size_t>(n));
  for (size_t j = 0; j < sizes.size(); ++j) {
    assignment.insert(assignment.end(), static_cast<size_t>(sizes[j]),
                      static_cast<int>(j));
  }
  // Fisher-Yates: decorrelate bit index from client id.
  for (size_t i = assignment.size(); i > 1; --i) {
    const size_t swap_with = static_cast<size_t>(rng.NextBelow(i));
    std::swap(assignment[i - 1], assignment[swap_with]);
  }
  return assignment;
}

std::vector<int> AssignBitsLocal(int64_t n,
                                 const std::vector<double>& probabilities,
                                 Rng& rng) {
  BITPUSH_CHECK_GE(n, 0);
  const DiscreteSampler sampler(probabilities);
  std::vector<int> assignment(static_cast<size_t>(n));
  for (int& bit : assignment) bit = static_cast<int>(sampler.Sample(rng));
  return assignment;
}

}  // namespace bitpush
