// Runtime kernel selection: CPU feature detection, the BITPUSH_SIMD=OFF
// environment override, and the test-only scalar force switch.

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "kernels/kernel_ops_inl.h"
#include "kernels/kernels.h"

namespace bitpush {
namespace kernels {
namespace {

std::atomic<int> g_force_scalar{0};

// BITPUSH_SIMD=OFF / off / 0 disables runtime SIMD even when compiled in
// (mirrors the CMake option of the same name, which removes it at build
// time). Read once; the result is latched by DispatchedKernel().
bool SimdDisabledByEnv() {
  const char* value = std::getenv("BITPUSH_SIMD");
  if (value == nullptr) return false;
  return std::strcmp(value, "OFF") == 0 || std::strcmp(value, "off") == 0 ||
         std::strcmp(value, "0") == 0;
}

const KernelOps* DetectKernel() {
  if (SimdDisabledByEnv()) return &ScalarKernel();
#if defined(BITPUSH_SIMD_AVX2)
  if (__builtin_cpu_supports("avx2")) return &Avx2Kernel();
#endif
#if defined(BITPUSH_SIMD_NEON)
  return &NeonKernel();
#endif
  return &ScalarKernel();
}

const KernelOps& DispatchedKernel() {
  static const KernelOps* const kernel = DetectKernel();
  return *kernel;
}

}  // namespace

const KernelOps& ActiveKernel() {
  if (g_force_scalar.load(std::memory_order_relaxed) > 0) {
    return ScalarKernel();
  }
  return DispatchedKernel();
}

bool SimdCompiledIn() {
#if defined(BITPUSH_SIMD_AVX2) || defined(BITPUSH_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

bool SimdActive() { return &ActiveKernel() != &ScalarKernel(); }

ScopedForceScalar::ScopedForceScalar() {
  g_force_scalar.fetch_add(1, std::memory_order_relaxed);
}

ScopedForceScalar::~ScopedForceScalar() {
  g_force_scalar.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace kernels
}  // namespace bitpush
