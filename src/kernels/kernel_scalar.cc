// The scalar fallback kernel: the portable implementations compiled with
// the project's baseline flags. This is the reference every SIMD kernel is
// differentially tested against, and the kernel ActiveKernel() returns
// under BITPUSH_SIMD=OFF or ScopedForceScalar.

#include "kernels/kernel_ops_inl.h"
#include "kernels/kernels.h"

namespace bitpush {
namespace kernels {

const KernelOps& ScalarKernel() {
  static constexpr KernelOps kOps = {
      "scalar",
      portable::EncodeCodewords,
      portable::BuildPlanes,
      portable::XorWords,
      portable::XorMaskedWords,
      portable::PopcountWords,
      portable::PopcountAndWords,
      portable::AddWords,
      portable::ReduceAddWords,
  };
  return kOps;
}

}  // namespace kernels
}  // namespace bitpush
