// Shared portable implementations of the KernelOps primitives.
//
// Each kernel translation unit includes this header and instantiates the
// functions it does not hand-write, so every kernel computes identical
// results by construction while the compiler is free to auto-vectorize
// under that TU's flags (e.g. kernel_avx2.cc is built with -mavx2, so the
// same source compiles to vpxor/popcnt/vpaddq there and to plain scalar
// code in kernel_scalar.cc). Only include from src/kernels/*.cc.

#ifndef BITPUSH_KERNELS_KERNEL_OPS_INL_H_
#define BITPUSH_KERNELS_KERNEL_OPS_INL_H_

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "kernels/kernels.h"

namespace bitpush {
namespace kernels {
namespace portable {

// The reference encode, byte-for-byte the arithmetic of
// FixedPointCodec::Encode. Hand-written SIMD encodes must match this
// exactly (tests/kernels_test.cc sweeps ties and boundaries).
inline uint64_t EncodeOne(double x, const EncodeParams& p) {
  const double clipped = std::clamp(x, p.low, p.high);
  const double scaled = (clipped - p.low) * p.scale;
  const auto codeword = static_cast<uint64_t>(std::llround(scaled));
  return std::min(codeword, p.max_codeword);
}

inline void EncodeCodewords(const double* in, int64_t n,
                            const EncodeParams& params, uint64_t* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = EncodeOne(in[i], params);
}

// Bit-plane split via the byte-gather multiply trick: for each window of
// 64 clients and each codeword byte lane, pack one byte from 8 clients
// into a word and gather bit k of every byte with a single multiply.
// The magic constant (bytes 2^7, 2^6, ..., 2^0 from the low byte up)
// moves bit k of byte r to bit r of the top byte with no carry collisions,
// preserving client order. Pure integer code — every kernel that compiles
// this computes the same planes.
inline void BuildPlanes(const uint64_t* codewords, const int* assignment,
                        int64_t n, int bits, int64_t stride, uint64_t* planes,
                        uint64_t* selection) {
  const int lanes = (bits + 7) / 8;
  const int64_t words = WordsForBits(n);
  for (int64_t w = 0; w < words; ++w) {
    const int64_t base = w * 64;
    const int have = static_cast<int>(std::min<int64_t>(64, n - base));
    uint64_t out[64] = {0};
    for (int g = 0; g * 8 < have; ++g) {
      const int in_group = std::min(8, have - g * 8);
      for (int lane = 0; lane < lanes; ++lane) {
        uint64_t packed = 0;
        for (int r = 0; r < in_group; ++r) {
          packed |= ((codewords[base + g * 8 + r] >> (8 * lane)) & 0xFF)
                    << (8 * r);
        }
        const int lane_bits = std::min(8, bits - 8 * lane);
        for (int k = 0; k < lane_bits; ++k) {
          const uint64_t gathered =
              (((packed >> k) & 0x0101010101010101ULL) *
               0x0102040810204080ULL) >>
              56;
          out[8 * lane + k] |= gathered << (8 * g);
        }
      }
    }
    for (int j = 0; j < bits; ++j) planes[j * stride + w] = out[j];
    uint64_t sel[64] = {0};
    for (int r = 0; r < have; ++r) {
      sel[assignment[base + r]] |= uint64_t{1} << r;
    }
    for (int j = 0; j < bits; ++j) selection[j * stride + w] = sel[j];
  }
}

inline void XorWords(uint64_t* dst, const uint64_t* mask, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] ^= mask[i];
}

inline void XorMaskedWords(uint64_t* dst, const uint64_t* mask,
                           const uint64_t* gate, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] ^= mask[i] & gate[i];
}

inline int64_t PopcountWords(const uint64_t* words, int64_t n) {
  int64_t total = 0;
  for (int64_t i = 0; i < n; ++i) total += std::popcount(words[i]);
  return total;
}

inline int64_t PopcountAndWords(const uint64_t* a, const uint64_t* b,
                                int64_t n) {
  int64_t total = 0;
  for (int64_t i = 0; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

inline void AddWords(uint64_t* dst, const uint64_t* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

inline uint64_t ReduceAddWords(const uint64_t* words, int64_t n) {
  uint64_t sum = 0;
  for (int64_t i = 0; i < n; ++i) sum += words[i];
  return sum;
}

}  // namespace portable

// Internal accessors for the optional SIMD kernels; defined only in their
// respective translation units and referenced only by dispatch.cc under
// the matching BITPUSH_SIMD_* define.
const KernelOps& Avx2Kernel();
const KernelOps& NeonKernel();

}  // namespace kernels
}  // namespace bitpush

#endif  // BITPUSH_KERNELS_KERNEL_OPS_INL_H_
