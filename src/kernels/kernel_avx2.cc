// AVX2 kernel. This translation unit is compiled with -mavx2 (see
// src/CMakeLists.txt); nothing outside src/kernels/ may assume AVX2.
//
// encode_codewords is hand-written because no compiler auto-vectorizes
// llround's round-half-away-from-zero. It emulates llround exactly:
//
//   s = (clamp(x) - low) * scale            // s in [0, 2^52] by codec bounds
//   d = s + 2^52                            // round-to-even to integer: for
//   r = bitcast<int64>(d) - bitcast(2^52)   // d in [2^52, 2^53) the mantissa
//                                           // IS the integer (magic trick)
//   if (s - double(r) == 0.5) r += 1        // even ties where llround goes up
//
// The tie test is exact: r <= 2^52 so double(r) is exact, and s - double(r)
// is computed without rounding (Sterbenz). For s - r < 0.5 or > 0.5 the
// round-to-even result already equals llround. Inputs are finite and
// in-domain after the clamp, so the emulation matches std::llround bit for
// bit — tests/kernels_test.cc sweeps ties, boundaries, and random values
// against the scalar kernel.
//
// popcount_words / popcount_and_words are hand-written too: the scalar
// popcnt instruction the compiler emits for std::popcount runs one word
// per cycle at best, while the vpshufb nibble-LUT form (count the set
// bits of each nibble by table lookup, horizontally sum bytes with
// vpsadbw) counts 32 bytes per ~1.5 cycles. Byte counters are drained
// into 64-bit lanes every 8 vectors, well before they can saturate
// (8 iterations * max 8 per byte = 64 < 255). Popcounts are exact integer
// counts, so the result is identical to the scalar kernel's by
// definition.
//
// The remaining ops instantiate the shared portable code from
// kernel_ops_inl.h: under -mavx2 GCC/Clang auto-vectorize the XOR/add
// loops to vpxor/vpaddq, while the results stay bit-identical to the
// scalar kernel by construction.

#include "kernels/kernel_ops_inl.h"
#include "kernels/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstdint>

namespace bitpush {
namespace kernels {
namespace {

void EncodeCodewordsAvx2(const double* in, int64_t n,
                         const EncodeParams& params, uint64_t* out) {
  const __m256d low = _mm256_set1_pd(params.low);
  const __m256d high = _mm256_set1_pd(params.high);
  const __m256d scale = _mm256_set1_pd(params.scale);
  const __m256d magic = _mm256_set1_pd(0x1p52);
  const __m256i magic_bits = _mm256_castpd_si256(magic);
  const __m256i max_codeword =
      _mm256_set1_epi64x(static_cast<long long>(params.max_codeword));
  const __m256d half = _mm256_set1_pd(0.5);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d x = _mm256_loadu_pd(in + i);
    x = _mm256_min_pd(_mm256_max_pd(x, low), high);
    const __m256d s = _mm256_mul_pd(_mm256_sub_pd(x, low), scale);
    const __m256d d = _mm256_add_pd(s, magic);
    __m256i r = _mm256_sub_epi64(_mm256_castpd_si256(d), magic_bits);
    const __m256d rounded = _mm256_sub_pd(d, magic);
    const __m256i tie = _mm256_castpd_si256(
        _mm256_cmp_pd(_mm256_sub_pd(s, rounded), half, _CMP_EQ_OQ));
    r = _mm256_sub_epi64(r, tie);  // tie lanes are all-ones == -1
    // Codewords are < 2^52, so signed compare is safe (no epu64 min in
    // AVX2).
    const __m256i over = _mm256_cmpgt_epi64(r, max_codeword);
    r = _mm256_blendv_epi8(r, max_codeword, over);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), r);
  }
  for (; i < n; ++i) out[i] = portable::EncodeOne(in[i], params);
}

// Per-byte popcount of a 32-byte vector via two nibble table lookups.
inline __m256i PopcountBytes(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_nibbles = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_nibbles);
  const __m256i hi =
      _mm256_and_si256(_mm256_srli_epi16(v, 4), low_nibbles);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

inline int64_t HorizontalSum(__m256i acc) {
  const __m128i lanes = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                      _mm256_extracti128_si256(acc, 1));
  return _mm_cvtsi128_si64(lanes) +
         _mm_cvtsi128_si64(_mm_unpackhi_epi64(lanes, lanes));
}

// Shared core of the two popcount ops: Load() maps a word index to the
// 4-word vector to count.
template <typename LoadVector>
int64_t PopcountVectors(int64_t n, int64_t* tail_start, LoadVector load) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i bytes = zero;
    for (int64_t k = 0; k < 32; k += 4) {
      bytes = _mm256_add_epi8(bytes, PopcountBytes(load(i + k)));
    }
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, zero));
  }
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(acc,
                           _mm256_sad_epu8(PopcountBytes(load(i)), zero));
  }
  *tail_start = i;
  return HorizontalSum(acc);
}

int64_t PopcountWordsAvx2(const uint64_t* words, int64_t n) {
  int64_t i = 0;
  int64_t total = PopcountVectors(n, &i, [&](int64_t k) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + k));
  });
  for (; i < n; ++i) total += std::popcount(words[i]);
  return total;
}

int64_t PopcountAndWordsAvx2(const uint64_t* a, const uint64_t* b,
                             int64_t n) {
  int64_t i = 0;
  int64_t total = PopcountVectors(n, &i, [&](int64_t k) {
    return _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + k)));
  });
  for (; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

}  // namespace

const KernelOps& Avx2Kernel() {
  static constexpr KernelOps kOps = {
      "avx2",
      EncodeCodewordsAvx2,
      portable::BuildPlanes,
      portable::XorWords,
      portable::XorMaskedWords,
      PopcountWordsAvx2,
      PopcountAndWordsAvx2,
      portable::AddWords,
      portable::ReduceAddWords,
  };
  return kOps;
}

}  // namespace kernels
}  // namespace bitpush

#else  // !defined(__AVX2__)

// Compiled without -mavx2 (e.g. BITPUSH_SIMD=OFF still lists the file, or
// a non-x86 target picked it up by mistake): fall back to the scalar table
// so the symbol exists but never diverges.
namespace bitpush {
namespace kernels {

const KernelOps& Avx2Kernel() { return ScalarKernel(); }

}  // namespace kernels
}  // namespace bitpush

#endif  // defined(__AVX2__)
