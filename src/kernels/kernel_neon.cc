// NEON (aarch64) kernel. This translation unit is the only place outside
// kernel_avx2.cc allowed to include an architecture intrinsics header (the
// bitpush_lint header-hygiene check enforces this).
//
// encode_codewords stays on the shared scalar path: AdvSIMD's frinta
// (round-half-away) would match llround, but the clamp/scale chain is
// already memory-bound on typical aarch64 parts and exactness matters more
// than the last 20% here. The bitwise ops use explicit NEON intrinsics —
// veor for XOR, vcnt + pairwise widening adds for popcount, vadd.2d for
// the secure-agg sums — and remain bit-identical to the scalar kernel
// because they are pure integer data movement.

#include "kernels/kernel_ops_inl.h"
#include "kernels/kernels.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <cstdint>

namespace bitpush {
namespace kernels {
namespace {

void XorWordsNeon(uint64_t* dst, const uint64_t* mask, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, veorq_u64(vld1q_u64(dst + i), vld1q_u64(mask + i)));
  }
  for (; i < n; ++i) dst[i] ^= mask[i];
}

void XorMaskedWordsNeon(uint64_t* dst, const uint64_t* mask,
                        const uint64_t* gate, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t gated =
        vandq_u64(vld1q_u64(mask + i), vld1q_u64(gate + i));
    vst1q_u64(dst + i, veorq_u64(vld1q_u64(dst + i), gated));
  }
  for (; i < n; ++i) dst[i] ^= mask[i] & gate[i];
}

inline uint64_t PopcountPair(uint64x2_t v) {
  // Per-byte counts, then widen 8->16->32->64 and sum the two lanes.
  const uint8x16_t bytes = vcntq_u8(vreinterpretq_u8_u64(v));
  return vaddvq_u64(vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(bytes))));
}

int64_t PopcountWordsNeon(const uint64_t* words, int64_t n) {
  int64_t total = 0;
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    total += static_cast<int64_t>(PopcountPair(vld1q_u64(words + i)));
  }
  for (; i < n; ++i) total += __builtin_popcountll(words[i]);
  return total;
}

int64_t PopcountAndWordsNeon(const uint64_t* a, const uint64_t* b,
                             int64_t n) {
  int64_t total = 0;
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    total += static_cast<int64_t>(
        PopcountPair(vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i))));
  }
  for (; i < n; ++i) total += __builtin_popcountll(a[i] & b[i]);
  return total;
}

void AddWordsNeon(uint64_t* dst, const uint64_t* src, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vaddq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

uint64_t ReduceAddWordsNeon(const uint64_t* words, int64_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) acc = vaddq_u64(acc, vld1q_u64(words + i));
  uint64_t sum = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i < n; ++i) sum += words[i];
  return sum;
}

}  // namespace

const KernelOps& NeonKernel() {
  static constexpr KernelOps kOps = {
      "neon",
      portable::EncodeCodewords,
      portable::BuildPlanes,
      XorWordsNeon,
      XorMaskedWordsNeon,
      PopcountWordsNeon,
      PopcountAndWordsNeon,
      AddWordsNeon,
      ReduceAddWordsNeon,
  };
  return kOps;
}

}  // namespace kernels
}  // namespace bitpush

#else  // !aarch64

namespace bitpush {
namespace kernels {

const KernelOps& NeonKernel() { return ScalarKernel(); }

}  // namespace kernels
}  // namespace bitpush

#endif  // defined(__aarch64__) && defined(__ARM_NEON)
