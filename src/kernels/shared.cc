// Kernel-independent randomness: the bulk Bernoulli mask generator used by
// the batch perturbation path. Deliberately *not* a KernelOps member — the
// mask stream must depend only on the Rng so scalar and SIMD runs stay
// bit-identical (see the determinism contract in kernels.h).

#include <cmath>
#include <cstdint>

#include "kernels/kernels.h"
#include "rng/rng.h"
#include "util/check.h"

namespace bitpush {
namespace kernels {

void FillBernoulliWords(double probability, int64_t n_bits, Rng& rng,
                        uint64_t* out) {
  BITPUSH_CHECK_GE(n_bits, 0);
  BITPUSH_CHECK(probability >= 0.0 && probability <= 1.0)
      << "probability=" << probability;
  if (n_bits == 0) return;
  const int64_t words = WordsForBits(n_bits);
  const uint64_t tail = TailMask(n_bits);

  // Quantize to q / 2^32. q == 0 and q == 2^32 need no randomness at all;
  // both still zero the out-of-range tail bits.
  const auto q = static_cast<uint64_t>(std::llround(probability * 0x1p32));
  if (q == 0) {
    for (int64_t w = 0; w < words; ++w) out[w] = 0;
    return;
  }
  if (q >= (uint64_t{1} << 32)) {
    for (int64_t w = 0; w < words; ++w) out[w] = ~uint64_t{0};
    out[words - 1] = tail;
    return;
  }

  // Horner evaluation of the binary expansion of q/2^32, one uniform word
  // per level, from the lowest set bit of q upward: starting from that bit
  // acc ~ Bernoulli(1/2) per position, and each higher level k maps
  // p -> (bit_k(q) + p) / 2 via OR (bit set) or AND (bit clear). After the
  // top level every bit of acc is 1 with probability exactly q / 2^32.
  const int lowest = __builtin_ctzll(q);
  for (int64_t w = 0; w < words; ++w) {
    uint64_t acc = rng.NextUint64();
    for (int k = lowest + 1; k < 32; ++k) {
      const uint64_t r = rng.NextUint64();
      acc = ((q >> k) & 1) ? (acc | r) : (acc & r);
    }
    out[w] = acc;
  }
  out[words - 1] &= tail;
}

}  // namespace kernels
}  // namespace bitpush
