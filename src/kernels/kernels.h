// Portable SIMD kernel layer for the columnar data plane (src/batch/).
//
// The paper's efficiency argument is that one-bit reports turn aggregation
// into a counting problem; this layer makes the counting run as fast as the
// hardware allows. A kernel is a table of function pointers (`KernelOps`)
// over two columnar primitives:
//
//   * packed bit vectors — n client bits stored LSB-first in contiguous
//     `uint64_t` words (client i lives at bit `i % 64` of word `i / 64`;
//     bits at positions >= n of the last word are zero), and
//   * codeword arrays — one `uint64_t` fixed-point codeword per client.
//
// Three implementations exist: a scalar fallback (always compiled), an
// AVX2 kernel (x86-64, compiled when BITPUSH_SIMD is ON), and a NEON
// kernel (aarch64). `ActiveKernel()` picks the best one at runtime from
// CPU features, the `BITPUSH_SIMD=OFF` environment override, and
// `ScopedForceScalar` (used by the differential tests).
//
// Determinism contract: every kernel computes the *same function* —
// `encode_codewords` reproduces `FixedPointCodec::Encode` bit for bit
// (including llround's round-half-away-from-zero ties), and the remaining
// ops are integer data movement with a single well-defined result. All
// randomness is generated outside the kernels by shared scalar code
// (`FillBernoulliWords` here, `RandomizedResponse::DrawFlip` in ldp/)
// drawing from an explicit `Rng`, so switching kernels can never change a
// tally, a meter charge, or a wire byte. See docs/KERNELS.md.

#ifndef BITPUSH_KERNELS_KERNELS_H_
#define BITPUSH_KERNELS_KERNELS_H_

#include <cstdint>

#include "rng/rng.h"

namespace bitpush {
namespace kernels {

// Parameters of the fixed-point encode, mirroring FixedPointCodec:
// encode(x) = min(llround((clamp(x, low, high) - low) * scale), max_codeword).
struct EncodeParams {
  double low = 0.0;
  double high = 1.0;
  double scale = 1.0;
  uint64_t max_codeword = 1;
};

// A table of columnar primitives. All word counts are in uint64_t units;
// regions may not alias unless stated. Implementations must tolerate
// n == 0.
struct KernelOps {
  // Human-readable kernel name ("scalar", "avx2", "neon").
  const char* name;

  // out[i] = min(llround((clamp(in[i], low, high) - low) * scale),
  //              max_codeword), exactly as FixedPointCodec::Encode.
  void (*encode_codewords)(const double* in, int64_t n,
                           const EncodeParams& params, uint64_t* out);

  // Splits codewords into bit planes and scatters selection masks.
  // For client i with assignment[i] == j: bit i of plane k receives bit k
  // of codewords[i] for every k < bits, and bit i of selection plane j is
  // set. `planes` and `selection` are bits * stride words each, stride >=
  // WordsForBits(n), and must be zeroed by the caller.
  void (*build_planes)(const uint64_t* codewords, const int* assignment,
                       int64_t n, int bits, int64_t stride, uint64_t* planes,
                       uint64_t* selection);

  // dst[i] ^= mask[i].
  void (*xor_words)(uint64_t* dst, const uint64_t* mask, int64_t n);

  // dst[i] ^= mask[i] & gate[i] (flip only gated positions).
  void (*xor_masked_words)(uint64_t* dst, const uint64_t* mask,
                           const uint64_t* gate, int64_t n);

  // Total number of set bits in words[0..n).
  int64_t (*popcount_words)(const uint64_t* words, int64_t n);

  // Total number of set bits in a[i] & b[i] over i in [0, n).
  int64_t (*popcount_and_words)(const uint64_t* a, const uint64_t* b,
                                int64_t n);

  // dst[i] += src[i] (mod 2^64) — secure-agg mask application / merging.
  void (*add_words)(uint64_t* dst, const uint64_t* src, int64_t n);

  // Sum of words[0..n) mod 2^64 — secure-agg reconstruction.
  uint64_t (*reduce_add_words)(const uint64_t* words, int64_t n);
};

// The scalar fallback (always available).
const KernelOps& ScalarKernel();

// The best kernel for this process: scalar unless a SIMD kernel was
// compiled in, the CPU supports it, the BITPUSH_SIMD environment variable
// is not "OFF"/"off"/"0", and no ScopedForceScalar is live. The
// environment is read once, on first use.
const KernelOps& ActiveKernel();

// True when a SIMD kernel was compiled into this binary (it may still be
// unused if the CPU lacks the feature or the override is set).
bool SimdCompiledIn();

// True when ActiveKernel() currently resolves to a non-scalar kernel.
bool SimdActive();

// Forces ActiveKernel() to return the scalar kernel while in scope. Used
// by the scalar-vs-SIMD differential oracles. Nestable and thread-safe
// (the force flag is a process-wide atomic count).
class ScopedForceScalar {
 public:
  ScopedForceScalar();
  ~ScopedForceScalar();

  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;
};

// Number of uint64_t words holding n packed bits.
constexpr int64_t WordsForBits(int64_t n_bits) { return (n_bits + 63) / 64; }

// Mask of the bits of the last word that are in range for n packed bits
// (all ones when n is a multiple of 64 and n > 0).
constexpr uint64_t TailMask(int64_t n_bits) {
  return (n_bits % 64 == 0) ? ~uint64_t{0}
                            : ((uint64_t{1} << (n_bits % 64)) - 1);
}

// Fills WordsForBits(n_bits) words with independent Bernoulli(probability)
// bits drawn from `rng`; bits at positions >= n_bits are zero. The
// probability is quantized to q = llround(probability * 2^32) / 2^32
// (quantization error <= 2^-33) and each word is built from the binary
// expansion of q with one rng word per expansion level, so the cost is at
// most 32 rng draws per 64 bits. This is *shared scalar code*, not a
// kernel op: the mask stream depends only on `rng`, never on the kernel,
// which is what makes scalar and SIMD runs bit-identical.
void FillBernoulliWords(double probability, int64_t n_bits, Rng& rng,
                        uint64_t* out);

}  // namespace kernels
}  // namespace bitpush

#endif  // BITPUSH_KERNELS_KERNELS_H_
