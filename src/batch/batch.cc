#include "batch/batch.h"

// bitpush-lint: allow(privacy-metering): the columnar adapters repackage
// reports that were already metered when collected (server.cc charges via
// client.cc before reports reach a batch); no new disclosure happens here.

#include <cstdint>
#include <vector>

#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace bitpush {
namespace {

ReportBatch MakeEmptyBatch(int bits, int64_t count) {
  BITPUSH_CHECK_GE(bits, 1);
  BITPUSH_CHECK_GE(count, 1);
  ReportBatch batch;
  batch.bits = bits;
  batch.count = count;
  batch.stride = kernels::WordsForBits(count);
  batch.planes.assign(static_cast<size_t>(bits) *
                          static_cast<size_t>(batch.stride),
                      0);
  batch.selection.assign(static_cast<size_t>(bits) *
                             static_cast<size_t>(batch.stride),
                         0);
  return batch;
}

}  // namespace

BitHistogram TallyBatch::ToBitHistogram() const {
  std::vector<int64_t> total = totals;
  std::vector<int64_t> one = ones;
  return BitHistogram::FromCounts(std::move(total), std::move(one));
}

void TallyBatch::AccumulateInto(BitHistogram* histogram) const {
  BITPUSH_CHECK(histogram != nullptr);
  histogram->Merge(ToBitHistogram());
}

TallyBatch TallyBatchFromBitHistogram(const BitHistogram& histogram) {
  TallyBatch tallies;
  tallies.totals = histogram.totals();
  tallies.ones = histogram.one_counts();
  return tallies;
}

void AccumulateTallies(const TallyBatch& src, TallyBatch* dst) {
  BITPUSH_CHECK(dst != nullptr);
  BITPUSH_CHECK_EQ(src.bits(), dst->bits());
  const int64_t n = static_cast<int64_t>(src.totals.size());
  if (n == 0) return;
  // int64_t and uint64_t are layout-compatible; two's-complement wraparound
  // addition is identical, and real tallies never approach the sign bit.
  const kernels::KernelOps& ops = kernels::ActiveKernel();
  ops.add_words(reinterpret_cast<uint64_t*>(dst->totals.data()),
                reinterpret_cast<const uint64_t*>(src.totals.data()), n);
  ops.add_words(reinterpret_cast<uint64_t*>(dst->ones.data()),
                reinterpret_cast<const uint64_t*>(src.ones.data()), n);
}

ReportBatch BuildReportBatch(const std::vector<uint64_t>& codewords,
                             const std::vector<int>& assignment, int bits) {
  BITPUSH_CHECK_EQ(codewords.size(), assignment.size());
  ReportBatch batch =
      MakeEmptyBatch(bits, static_cast<int64_t>(codewords.size()));
  for (const int j : assignment) {
    BITPUSH_CHECK(j >= 0 && j < bits) << "assignment out of range: " << j;
  }
  kernels::ActiveKernel().build_planes(codewords.data(), assignment.data(),
                                       batch.count, bits, batch.stride,
                                       batch.planes.data(),
                                       batch.selection.data());
  return batch;
}

ReportBatch ReportBatchFromBitReports(const std::vector<BitReport>& reports,
                                      int bits) {
  ReportBatch batch =
      MakeEmptyBatch(bits, static_cast<int64_t>(reports.size()));
  for (int64_t i = 0; i < batch.count; ++i) {
    const BitReport& report = reports[static_cast<size_t>(i)];
    BITPUSH_CHECK(report.bit_index >= 0 && report.bit_index < bits)
        << "bit_index out of range: " << report.bit_index;
    BITPUSH_CHECK(report.bit == 0 || report.bit == 1);
    const int64_t word = i / 64;
    const uint64_t mask = uint64_t{1} << (i % 64);
    batch.selection_plane(report.bit_index)[word] |= mask;
    if (report.bit != 0) batch.plane(report.bit_index)[word] |= mask;
  }
  return batch;
}

std::vector<BitReport> ToBitReports(const ReportBatch& batch) {
  std::vector<BitReport> reports;
  reports.reserve(static_cast<size_t>(batch.count));
  for (int64_t i = 0; i < batch.count; ++i) {
    const int64_t word = i / 64;
    const uint64_t mask = uint64_t{1} << (i % 64);
    int bit_index = -1;
    int bit = 0;
    for (int j = 0; j < batch.bits; ++j) {
      if ((batch.selection_plane(j)[word] & mask) != 0) {
        BITPUSH_CHECK_EQ(bit_index, -1)
            << "slot " << i << " selected in multiple planes";
        bit_index = j;
        bit = (batch.plane(j)[word] & mask) != 0 ? 1 : 0;
      }
    }
    BITPUSH_CHECK_NE(bit_index, -1) << "slot " << i << " has no selection";
    reports.push_back(BitReport{i, bit_index, bit});
  }
  return reports;
}

void PerturbBatch(ReportBatch* batch, const RandomizedResponse& rr,
                  Rng& rng) {
  BITPUSH_CHECK(batch != nullptr);
  if (!rr.enabled()) return;
  // One keep/flip draw per slot, in slot order — the same draws, from the
  // same stream, that the per-report rr.Apply path consumed. This keeps
  // every fixed-seed tally bit-identical to the pre-columnar
  // implementation (and independent of the dispatched kernel, since the
  // draws never depend on the data); only the application is columnar: the
  // flip mask is XOR-ed into each plane gated by that plane's selection,
  // so a slot's flip lands exactly on its one assigned bit. Callers that
  // do not need stream compatibility can draw bulk masks instead via
  // RandomizedResponse::ApplyToWords (kernels::FillBernoulliWords).
  std::vector<uint64_t> flips(static_cast<size_t>(batch->stride), 0);
  for (int64_t i = 0; i < batch->count; ++i) {
    if (rr.DrawFlip(rng)) {
      flips[static_cast<size_t>(i >> 6)] |= uint64_t{1} << (i & 63);
    }
  }
  const kernels::KernelOps& ops = kernels::ActiveKernel();
  for (int j = 0; j < batch->bits; ++j) {
    ops.xor_masked_words(batch->plane(j), flips.data(),
                         batch->selection_plane(j), batch->stride);
  }
}

TallyBatch AggregateBatch(const ReportBatch& batch) {
  // Volatile, not stable: aggregation is skipped when a crash-recovered
  // round is restored from the journal, so this counter legitimately
  // differs between a live run and its recovered twin and must stay out
  // of the deterministic snapshot.
  static obs::Counter* batch_reports = obs::Registry::Default().GetCounter(
      "bitpush_batch_reports_total",
      "Reports tallied through the columnar batch path.",
      obs::Determinism::kVolatile);
  const kernels::KernelOps& ops = kernels::ActiveKernel();
  TallyBatch tally;
  tally.totals.resize(static_cast<size_t>(batch.bits));
  tally.ones.resize(static_cast<size_t>(batch.bits));
  int64_t reports = 0;
  for (int j = 0; j < batch.bits; ++j) {
    const int64_t total =
        ops.popcount_words(batch.selection_plane(j), batch.stride);
    tally.totals[static_cast<size_t>(j)] = total;
    tally.ones[static_cast<size_t>(j)] = ops.popcount_and_words(
        batch.plane(j), batch.selection_plane(j), batch.stride);
    reports += total;
  }
  batch_reports->Add(reports);
  return tally;
}

}  // namespace bitpush
