// Columnar report batches: the structure-of-arrays data plane.
//
// The AoS path moves one 16-byte BitReport per client through the
// encode/perturb/tally loops; at a million clients per round that is the
// bottleneck ROADMAP item 1 names. A ReportBatch instead stores the round
// columnarly:
//
//   planes[j]    — packed bit vector, bit i = the report bit of client i
//                  *if* client i was assigned bit index j (zero otherwise)
//   selection[j] — packed bit vector, bit i = "client i is assigned j"
//
// Both are `bits` rows of `stride` contiguous uint64_t words, client i at
// bit i%64 of word i/64 (the packed layout of src/kernels/kernels.h).
// Tallying becomes popcount over contiguous words:
//
//   totals[j] = popcount(selection[j]),  ones[j] = popcount(planes[j] &
//   selection[j])
//
// and randomized response becomes an XOR with a bulk Bernoulli mask.
//
// Plane bits outside the selection are inert: BuildReportBatch scatters
// the *full* bit-slice of every codeword (the cheapest thing for the
// kernel to produce) and relies on every consumer gating by selection —
// tallies popcount plane & selection, perturbation masks are ANDed with
// the selection, and conversion reads only the selected plane.
// ReportBatchFromBitReports, whose inputs carry just one bit per report,
// produces gated planes (planes[j] & ~selection[j] == 0).
//
// Determinism: PerturbBatch draws one keep/flip decision per slot, in slot
// order, from the caller's rng — exactly the stream the per-report
// rr.Apply path consumed — so the result is bit-identical to the
// pre-columnar implementation and a function of (batch, rr, rng) only,
// never of the dispatched kernel. See docs/KERNELS.md for the full
// contract.

#ifndef BITPUSH_BATCH_BATCH_H_
#define BITPUSH_BATCH_BATCH_H_

#include <cstdint>
#include <vector>

#include "core/bit_pushing.h"
#include "federated/report.h"
#include "ldp/randomized_response.h"
#include "rng/rng.h"

namespace bitpush {

// One collection round in structure-of-arrays form.
struct ReportBatch {
  int bits = 0;        // bit planes (codeword width)
  int64_t count = 0;   // clients in the batch
  int64_t stride = 0;  // words per plane, kernels::WordsForBits(count)
  std::vector<uint64_t> planes;     // bits * stride words
  std::vector<uint64_t> selection;  // bits * stride words

  uint64_t* plane(int j) { return planes.data() + j * stride; }
  const uint64_t* plane(int j) const { return planes.data() + j * stride; }
  uint64_t* selection_plane(int j) { return selection.data() + j * stride; }
  const uint64_t* selection_plane(int j) const {
    return selection.data() + j * stride;
  }
};

// Per-bit tallies of a batch; the columnar twin of BitHistogram.
struct TallyBatch {
  std::vector<int64_t> totals;
  std::vector<int64_t> ones;

  int bits() const { return static_cast<int>(totals.size()); }
  // CHECK-fails on inconsistent counts (ones > totals etc.).
  BitHistogram ToBitHistogram() const;
  // Adds the tallies into an existing histogram of the same width.
  void AccumulateInto(BitHistogram* histogram) const;

  friend bool operator==(const TallyBatch&, const TallyBatch&) = default;
};

// The inverse of ToBitHistogram: lifts a histogram's counts into columnar
// form so coordinator-side tallies can ride the word kernels.
TallyBatch TallyBatchFromBitHistogram(const BitHistogram& histogram);

// dst += src per column, via the dispatched add_words kernel. Tallies are
// non-negative counts far below 2^63, so unsigned word addition equals
// signed addition exactly. Widths must match (CHECK-fails otherwise).
void AccumulateTallies(const TallyBatch& src, TallyBatch* dst);

// Builds a batch from encoded codewords and a per-client bit assignment
// (entries in [0, bits)), e.g. from rng/qmc.h. Plane bits carry the
// *unperturbed* assigned bit of each codeword.
ReportBatch BuildReportBatch(const std::vector<uint64_t>& codewords,
                             const std::vector<int>& assignment, int bits);

// Converters to/from the AoS path. FromBitReports accepts reports in any
// order; slot i of the batch is reports[i] (client ids are not retained —
// tallies never depend on them). ToBitReports emits one report per slot
// with client_id = slot index; round-trips preserve (bit_index, bit) per
// slot exactly.
ReportBatch ReportBatchFromBitReports(const std::vector<BitReport>& reports,
                                      int bits);
std::vector<BitReport> ToBitReports(const ReportBatch& batch);

// Applies randomized response to every *assigned* bit of the batch: one
// flip mask is drawn slot-by-slot via rr.DrawFlip (consuming exactly the
// randomness the per-report rr.Apply path consumed, in the same order)
// and XOR-ed into each plane gated by that plane's selection. No-op when
// rr is disabled (consumes no randomness, matching the scalar path's
// disabled Apply).
void PerturbBatch(ReportBatch* batch, const RandomizedResponse& rr,
                  Rng& rng);

// Per-plane popcount reduction. Charges the batch's report count to the
// volatile obs counter `bitpush_batch_reports_total` (volatile because
// restored rounds skip aggregation, so live and crash-recovered runs
// legitimately disagree on it).
TallyBatch AggregateBatch(const ReportBatch& batch);

}  // namespace bitpush

#endif  // BITPUSH_BATCH_BATCH_H_
