#include "persist/recovery.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "federated/obs_hooks.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace bitpush {

namespace {

// Replay-progress counters are kVolatile by nature: an uninterrupted run
// replays nothing, so they can never match across a clean/recovered pair.
void ObserveRecovery(const RecoveryInfo& info) {
  if (!obs::Enabled()) return;
  obs::Registry& registry = obs::Registry::Default();
  static obs::Counter* opens = registry.GetCounter(
      "bitpush_recovery_opens_total", "Durable runner opens.",
      obs::Determinism::kVolatile);
  static obs::Counter* recovered = registry.GetCounter(
      "bitpush_recovery_recovered_total",
      "Opens that found prior durable state.", obs::Determinism::kVolatile);
  static obs::Counter* replayed = registry.GetCounter(
      "bitpush_recovery_replayed_records_total",
      "Journal records validated and replayed on open.",
      obs::Determinism::kVolatile);
  static obs::Counter* torn = registry.GetCounter(
      "bitpush_recovery_torn_tails_total",
      "Opens that discarded a torn journal tail.",
      obs::Determinism::kVolatile);
  opens->Increment();
  if (info.recovered) recovered->Increment();
  replayed->Add(info.replayed_records);
  if (info.torn_tail) torn->Increment();
}

constexpr const char* kJournalFile = "journal.wal";
constexpr const char* kSnapshotFile = "snapshot.bin";

// NaN-safe: a journaled denial can carry the invalid epsilon it was denied
// for, and replay must still match it against the re-executed value.
bool SameDoubleBits(double a, double b) {
  uint64_t ua = 0;
  uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

}  // namespace

DurableCampaignRunner::DurableCampaignRunner(
    std::vector<CampaignQuery> queries, const MeterPolicy& policy,
    DurableCampaignOptions options, ResilienceConfig resilience)
    : policy_(policy),
      options_(std::move(options)),
      meter_(policy),
      campaign_(std::move(queries), &meter_, resilience),
      rng_(options_.seed) {
  BITPUSH_CHECK(!options_.state_dir.empty()) << "state_dir is required";
}

bool DurableCampaignRunner::Open(std::string* error) {
  BITPUSH_CHECK(error != nullptr);
  BITPUSH_CHECK(!open_) << "runner already open";
  obs::Span span("recovery.open", "persist");

  std::error_code ec;
  std::filesystem::create_directories(options_.state_dir, ec);
  if (ec) {
    *error = "create state dir " + options_.state_dir + ": " + ec.message();
    return false;
  }
  journal_path_ = options_.state_dir + "/" + kJournalFile;
  snapshot_path_ = options_.state_dir + "/" + kSnapshotFile;

  CoordinatorSnapshot snapshot;
  bool found = false;
  if (!LoadSnapshotFile(snapshot_path_, &snapshot, &found, error)) {
    return false;
  }
  uint64_t expected_seq = 0;
  if (found) {
    info_.had_snapshot = true;
    if (snapshot.base_seed != options_.seed) {
      *error = "state directory was recorded under a different seed";
      return false;
    }
    PrivacyMeter restored(policy_);
    size_t offset = 0;
    if (!PrivacyMeter::DecodeFrom(snapshot.meter_blob, &offset, &restored) ||
        offset != snapshot.meter_blob.size()) {
      *error = "snapshot meter ledger failed validation";
      return false;
    }
    if (!(restored.policy() == policy_)) {
      *error = "snapshot meter policy does not match this campaign";
      return false;
    }
    meter_ = std::move(restored);
    for (const FinishedQueryEntry& entry : snapshot.finished) {
      if (entry.query_index >=
          static_cast<int64_t>(campaign_.queries().size())) {
        *error = "snapshot references an unknown query index";
        return false;
      }
      finished_.emplace(std::make_pair(entry.tick, entry.query_index), entry);
    }
    for (const BitMeansEntry& entry : snapshot.bit_means) {
      bit_means_cache_[entry.value_id] = entry.means;
    }
    for (const std::vector<uint8_t>& blob : snapshot.open_sessions) {
      std::optional<CollectionSession> session;
      size_t session_offset = 0;
      if (!CollectionSession::Decode(blob, &session_offset, &session) ||
          session_offset != blob.size()) {
        *error = "snapshot session state failed validation";
        return false;
      }
      sessions_.push_back(std::move(*session));
    }
    if (!snapshot.health_blob.empty()) {
      HealthTracker* health = campaign_.mutable_health();
      if (health == nullptr) {
        *error = "snapshot has breaker state but the campaign has no breaker";
        return false;
      }
      size_t health_offset = 0;
      if (!HealthTracker::DecodeFrom(snapshot.health_blob, &health_offset,
                                     health) ||
          health_offset != snapshot.health_blob.size()) {
        *error = "snapshot breaker state failed validation";
        return false;
      }
    }
    completed_ticks_ = snapshot.completed_ticks;
    expected_seq = snapshot.journal_next_seq;
  }

  JournalReadResult journal;
  if (!ReadJournal(journal_path_, expected_seq, &journal, error)) {
    return false;
  }
  info_.torn_tail = journal.torn_tail;
  info_.replayed_records = static_cast<int64_t>(journal.records.size());
  info_.recovered = found || !journal.records.empty() || journal.torn_tail;
  if (!ApplyJournal(journal.records, error)) return false;
  journal_records_ = static_cast<int64_t>(journal.records.size());

  // Rewrite the file to exactly the validated records: drops the torn tail
  // and any stale pre-snapshot prefix so a later recovery never re-parses
  // them.
  if (!RewriteJournalFile(journal.records, error)) return false;
  if (!journal_.Open(journal_path_, journal.next_seq, error)) return false;
  journal_.set_fsync(options_.fsync);
  journal_.set_crash_after_records(options_.crash_after_records);

  meter_.set_journal(this);
  campaign_.set_recorder(this);
  cursor_ = 0;
  live_ = prefix_.empty();
  ticks_already_journaled_ = completed_ticks_;
  info_.completed_ticks = completed_ticks_;
  rng_ = Rng(options_.seed);
  open_ = true;
  ObserveRecovery(info_);
  // Replay milestone for the flight recorder. kVolatile by nature: an
  // uninterrupted run opens with nothing to replay, so this event can
  // never match across a clean/recovered pair.
  if (info_.recovered) {
    obs::EventArgs args;
    args.detail = "journal replay complete: replayed=" +
                  std::to_string(info_.replayed_records) +
                  " completed_ticks=" + std::to_string(completed_ticks_) +
                  " pending_prefix=" + std::to_string(prefix_.size()) +
                  (info_.had_snapshot ? " snapshot" : "") +
                  (info_.torn_tail ? " torn_tail" : "");
    obs::EmitEvent(obs::EventType::kReplayMilestone,
                   obs::Determinism::kVolatile, std::move(args));
  }
  span.AddNumeric("replayed_records",
                  static_cast<double>(info_.replayed_records));
  span.AddString("recovered", info_.recovered ? "yes" : "no");
  return true;
}

bool DurableCampaignRunner::ApplyJournal(
    const std::vector<JournalRecord>& records, std::string* error) {
  // Trailing records of an unfinished query become the replay prefix.
  size_t prefix_start = records.size();
  bool in_query = false;
  QueryStartedRecord current_query;
  for (size_t i = 0; i < records.size(); ++i) {
    const JournalRecord& record = records[i];
    switch (record.type) {
      case JournalRecordType::kQueryStarted: {
        QueryStartedRecord started;
        if (!DecodeQueryStartedRecord(record.payload, &started) || in_query) {
          *error = "journal: malformed or misplaced query-started record";
          return false;
        }
        if (started.tick != completed_ticks_ ||
            started.query_index >=
                static_cast<int64_t>(campaign_.queries().size()) ||
            campaign_.queries()[static_cast<size_t>(started.query_index)]
                    .value_id != started.value_id) {
          *error = "journal: query-started record contradicts the campaign";
          return false;
        }
        in_query = true;
        current_query = started;
        prefix_start = i;
        break;
      }
      case JournalRecordType::kCohortAssigned:
      case JournalRecordType::kReportAccepted:
      case JournalRecordType::kRoundClosed: {
        // Contextual records of the in-flight query; validated here,
        // consumed (or verified against) during re-execution.
        if (!in_query) {
          *error = "journal: round record outside any query";
          return false;
        }
        bool valid = false;
        if (record.type == JournalRecordType::kCohortAssigned) {
          CohortAssignedRecord decoded;
          valid = DecodeCohortAssignedRecord(record.payload, &decoded);
        } else if (record.type == JournalRecordType::kReportAccepted) {
          ReportAcceptedRecord decoded;
          valid = DecodeReportAcceptedRecord(record.payload, &decoded);
        } else {
          RoundClosedRecord decoded;
          valid = DecodeRoundClosedRecord(record.payload, &decoded);
        }
        if (!valid) {
          *error = "journal: malformed round record";
          return false;
        }
        break;
      }
      case JournalRecordType::kMeterCharge: {
        MeterChargeRecord charge;
        if (!DecodeMeterChargeRecord(record.payload, &charge) || !in_query) {
          *error = "journal: malformed or misplaced meter-charge record";
          return false;
        }
        // Validated here; re-applied through the real meter in the
        // in-order replay pass below.
        break;
      }
      case JournalRecordType::kQueryFinished: {
        QueryFinishedRecord finished;
        if (!DecodeQueryFinishedRecord(record.payload, &finished) ||
            !in_query || finished.tick != current_query.tick ||
            finished.query_index != current_query.query_index) {
          *error = "journal: malformed or misplaced query-finished record";
          return false;
        }
        FinishedQueryEntry entry;
        entry.tick = finished.tick;
        entry.query_index = finished.query_index;
        entry.result = finished.result;
        entry.final_bit_means = finished.final_bit_means;
        const auto key = std::make_pair(entry.tick, entry.query_index);
        if (!finished_.emplace(key, entry).second) {
          *error = "journal: duplicate query-finished record";
          return false;
        }
        if (entry.result.status == CampaignTickResult::Status::kRan &&
            !entry.final_bit_means.empty()) {
          bit_means_cache_[current_query.value_id] = entry.final_bit_means;
        }
        in_query = false;
        prefix_start = records.size();
        break;
      }
      case JournalRecordType::kCampaignTick: {
        CampaignTickRecord tick;
        if (!DecodeCampaignTickRecord(record.payload, &tick) || in_query) {
          *error = "journal: malformed or misplaced campaign-tick record";
          return false;
        }
        if (tick.tick != completed_ticks_) {
          *error = "journal: campaign ticks closed out of order";
          return false;
        }
        completed_ticks_ = tick.tick + 1;
        prefix_start = records.size();
        break;
      }
      case JournalRecordType::kResilienceEvent: {
        // Contextual, like the round records: a decision the resilience
        // layer made inside the in-flight query. Validated here; the
        // re-execution re-derives it and verifies byte equality.
        ResilienceEventRecord event;
        if (!DecodeResilienceEventRecord(record.payload, &event) ||
            !in_query) {
          *error = "journal: malformed or misplaced resilience-event record";
          return false;
        }
        break;
      }
    }
  }
  prefix_.assign(records.begin() + static_cast<ptrdiff_t>(prefix_start),
                 records.end());

  // In-order replay of the completed region (everything before the replay
  // prefix). Meter charges and round closes are re-applied in journal
  // order — which is execution order — so the ledger absorbs every charge
  // exactly once, the breaker rebuilds transition by transition, and the
  // flight recorder's stable events (meter announcements, round outcomes,
  // breaker transitions) land in the same relative order a live run
  // produced them. Rounds of *finished* queries never re-execute
  // (RestoreQueryResult serves their summaries), so this pass is their
  // only observation point; the in-flight query's rounds — the replay
  // prefix — are applied by the round layer during re-execution, and
  // pre-snapshot history came in with the snapshot's health blob (round
  // metrics truncated with the journal are gone — the
  // deterministic-metrics contract is scoped to journal-only recovery;
  // see docs/OBSERVABILITY.md).
  HealthTracker* health = campaign_.mutable_health();
  for (size_t i = 0; i < prefix_start; ++i) {
    const JournalRecord& record = records[i];
    switch (record.type) {
      case JournalRecordType::kMeterCharge: {
        MeterChargeRecord charge;
        BITPUSH_CHECK(DecodeMeterChargeRecord(record.payload, &charge));
        // The recomputed decision must match what was journaled — anything
        // else means the ledger and journal disagree, and a coordinator
        // that cannot trust its ledger must stop.
        const bool granted = meter_.TryChargeBit(
            charge.client_id, charge.value_id, charge.epsilon);
        if (granted != charge.granted) {
          *error = "journal: meter replay diverged from recorded outcome";
          return false;
        }
        break;
      }
      case JournalRecordType::kRoundClosed: {
        RoundClosedRecord closed;
        BITPUSH_CHECK(DecodeRoundClosedRecord(record.payload, &closed));
        ObserveRoundOutcome(closed.outcome);
        if (health != nullptr) {
          health->BeginRound();
          health->ObserveRound(closed.round_id,
                               closed.outcome.succeeded_client_ids,
                               closed.outcome.failed_client_ids,
                               /*recorder=*/nullptr);
        }
        break;
      }
      case JournalRecordType::kCampaignTick: {
        CampaignTickRecord tick;
        BITPUSH_CHECK(DecodeCampaignTickRecord(record.payload, &tick));
        // Sample the meter at the tick close, before any later records
        // mutate it — the recovery-stable trajectory meter_by_tick().
        RecordMeterSample(tick.tick);
        break;
      }
      default:
        break;
    }
  }

  // Replay-prefix charges: the in-flight query's journaled meter activity.
  // The ledger must absorb them now (they are durable decisions), but
  // their flight-recorder announcements are suppressed — the re-execution
  // will be served these same outcomes through OnChargeAttempt, and the
  // events are emitted there, at the position a live run emitted them.
  meter_.set_replay_quiet(true);
  for (size_t i = prefix_start; i < records.size(); ++i) {
    if (records[i].type != JournalRecordType::kMeterCharge) continue;
    MeterChargeRecord charge;
    BITPUSH_CHECK(DecodeMeterChargeRecord(records[i].payload, &charge));
    const bool granted = meter_.TryChargeBit(charge.client_id,
                                             charge.value_id, charge.epsilon);
    if (granted != charge.granted) {
      meter_.set_replay_quiet(false);
      *error = "journal: meter replay diverged from recorded outcome";
      return false;
    }
  }
  meter_.set_replay_quiet(false);

  if (health != nullptr) ObserveBreakerState(*health);
  return true;
}

bool DurableCampaignRunner::RewriteJournalFile(
    const std::vector<JournalRecord>& records, std::string* error) {
  std::vector<uint8_t> bytes;
  for (const JournalRecord& record : records) {
    AppendJournalFrame(record.type, record.seq, record.payload, &bytes);
  }
  // Temp sibling + fsync + rename, the WriteSnapshotFile pattern: the old
  // journal stays durable and intact until the rewritten bytes are. An
  // in-place truncate would destroy validated records before their
  // replacements reached disk, so a crash inside this window could lose
  // journaled meter charges.
  const std::string temp_path = journal_path_ + ".tmp";
  std::FILE* file = std::fopen(temp_path.c_str(), "wb");
  if (file == nullptr) {
    *error = "rewrite journal " + temp_path + ": " + std::strerror(errno);
    return false;
  }
  // An empty record set is legal (a journal rewritten down to nothing) and
  // an empty vector's data() may be null, which fwrite declares nonnull.
  const bool wrote =
      bytes.empty() ||
      std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  const bool flushed = wrote && std::fflush(file) == 0;
  const bool synced = flushed && (!options_.fsync || fsync(fileno(file)) == 0);
  std::fclose(file);
  if (!synced) {
    *error = "rewrite journal " + temp_path + ": " + std::strerror(errno);
    std::remove(temp_path.c_str());
    return false;
  }
  if (std::rename(temp_path.c_str(), journal_path_.c_str()) != 0) {
    *error = "rename journal " + journal_path_ + ": " + std::strerror(errno);
    std::remove(temp_path.c_str());
    return false;
  }
  if (options_.fsync && !SyncParentDir(journal_path_, error)) return false;
  return true;
}

std::vector<CampaignTickResult> DurableCampaignRunner::RunTick(
    int64_t tick,
    const std::vector<const std::vector<Client>*>& populations,
    const std::vector<FixedPointCodec>& codecs) {
  BITPUSH_CHECK(open_) << "call Open() first";
  BITPUSH_CHECK_EQ(tick, next_tick_)
      << "RunTick must be called for every tick from 0 in order";

  std::vector<CampaignTickResult> results =
      campaign_.RunTick(tick, populations, codecs, rng_);

  // The in-flight query (if any) lived at tick info_.completed_ticks, so by
  // the end of that tick the re-execution must have consumed every replay
  // record; earlier ticks are fully restored and leave the prefix alone.
  if (tick >= info_.completed_ticks) {
    BITPUSH_CHECK(live_)
        << "recovery divergence: replay prefix not fully consumed";
  }

  if (tick >= ticks_already_journaled_) {
    std::vector<uint8_t> payload;
    EncodeCampaignTickRecord(CampaignTickRecord{tick}, &payload);
    VerifyOrAppend(JournalRecordType::kCampaignTick, payload);
  }
  completed_ticks_ = tick + 1;
  ++next_tick_;
  // No-op for ticks already sampled during journal replay; the tick that
  // was in flight at a crash gets its sample here, after its re-execution
  // completed — the same totals the uninterrupted run closed it with.
  RecordMeterSample(tick);

  if (options_.snapshot_every_ticks > 0 &&
      completed_ticks_ % options_.snapshot_every_ticks == 0) {
    snapshot_due_ = true;
  }
  // A snapshot that comes due at a restored-tick boundary (the replay
  // prefix still pending) is deferred to the first boundary after the run
  // goes live — snapshotting mid-replay would have to persist a state the
  // re-execution has not reproduced yet.
  if (snapshot_due_ && live_) {
    std::string error;
    BITPUSH_CHECK(Snapshot(&error)) << "snapshot failed: " << error;
    snapshot_due_ = false;
  }
  return results;
}

bool DurableCampaignRunner::Snapshot(std::string* error) {
  BITPUSH_CHECK(error != nullptr);
  BITPUSH_CHECK(open_) << "call Open() first";
  BITPUSH_CHECK(live_ && prefix_.empty())
      << "snapshots are only taken at tick boundaries";

  CoordinatorSnapshot snapshot;
  snapshot.base_seed = options_.seed;
  snapshot.journal_next_seq = journal_.next_seq();
  snapshot.completed_ticks = completed_ticks_;
  meter_.EncodeTo(&snapshot.meter_blob);
  snapshot.finished.reserve(finished_.size());
  for (const auto& [key, entry] : finished_) snapshot.finished.push_back(entry);
  snapshot.bit_means.reserve(bit_means_cache_.size());
  for (const auto& [value_id, means] : bit_means_cache_) {
    snapshot.bit_means.push_back(BitMeansEntry{value_id, means});
  }
  for (const CollectionSession& session : sessions_) {
    if (session.state() != SessionState::kCollecting) continue;
    std::vector<uint8_t> blob;
    session.EncodeTo(&blob);
    snapshot.open_sessions.push_back(std::move(blob));
  }
  if (const HealthTracker* health = campaign_.health(); health != nullptr) {
    health->EncodeTo(&snapshot.health_blob);
  }
  if (!WriteSnapshotFile(snapshot_path_, snapshot, error)) return false;

  // The snapshot now covers every journaled record: truncate the journal.
  // A crash between the rename above and this truncation is benign — the
  // leftover records all predate snapshot.journal_next_seq and the next
  // recovery skips them as stale.
  journal_.Close();
  if (!RewriteJournalFile({}, error)) return false;
  journal_records_ = 0;
  return journal_.Open(journal_path_, snapshot.journal_next_seq, error);
}

int64_t DurableCampaignRunner::AddSession(const FixedPointCodec& codec,
                                          const SessionConfig& config) {
  sessions_.emplace_back(codec, config);
  return static_cast<int64_t>(sessions_.size()) - 1;
}

CollectionSession* DurableCampaignRunner::session(int64_t index) {
  BITPUSH_CHECK_GE(index, 0);
  BITPUSH_CHECK_LT(index, static_cast<int64_t>(sessions_.size()));
  return &sessions_[static_cast<size_t>(index)];
}

void DurableCampaignRunner::VerifyOrAppend(JournalRecordType type,
                                           const std::vector<uint8_t>& payload) {
  if (!live_) {
    BITPUSH_CHECK_LT(cursor_, prefix_.size());
    const JournalRecord& expected = prefix_[cursor_];
    BITPUSH_CHECK(expected.type == type && expected.payload == payload)
        << "recovery divergence: re-execution did not reproduce journal "
        << "record " << expected.seq;
    AdvanceReplay(cursor_ + 1);
    return;  // already durable — do not re-append
  }
  BITPUSH_CHECK(journal_.Append(type, payload)) << "journal append failed";
  ++journal_records_;
}

void DurableCampaignRunner::RecordMeterSample(int64_t tick) {
  const MeterTickSample sample{meter_.total_bits(), meter_.denied_charges()};
  while (static_cast<int64_t>(meter_by_tick_.size()) <= tick) {
    meter_by_tick_.push_back(sample);
  }
}

void DurableCampaignRunner::AdvanceReplay(size_t next) {
  cursor_ = next;
  if (cursor_ == prefix_.size()) {
    prefix_.clear();
    cursor_ = 0;
    live_ = true;
  }
}

bool DurableCampaignRunner::RestoreQueryResult(int64_t tick,
                                               size_t query_index,
                                               CampaignTickResult* out) {
  const auto it =
      finished_.find(std::make_pair(tick, static_cast<int64_t>(query_index)));
  if (it == finished_.end()) return false;
  *out = it->second.result;
  return true;
}

void DurableCampaignRunner::OnQueryStarted(int64_t tick, size_t query_index,
                                           int64_t value_id) {
  std::vector<uint8_t> payload;
  EncodeQueryStartedRecord(
      QueryStartedRecord{tick, static_cast<int64_t>(query_index), value_id},
      &payload);
  VerifyOrAppend(JournalRecordType::kQueryStarted, payload);
}

void DurableCampaignRunner::OnQueryFinished(int64_t tick, size_t query_index,
                                            const CampaignTickResult& result,
                                            const FederatedQueryResult& outcome) {
  QueryFinishedRecord record;
  record.tick = tick;
  record.query_index = static_cast<int64_t>(query_index);
  record.result = result;
  record.final_bit_means = outcome.final_bit_means;
  std::vector<uint8_t> payload;
  EncodeQueryFinishedRecord(record, &payload);
  VerifyOrAppend(JournalRecordType::kQueryFinished, payload);

  FinishedQueryEntry entry;
  entry.tick = tick;
  entry.query_index = static_cast<int64_t>(query_index);
  entry.result = result;
  entry.final_bit_means = outcome.final_bit_means;
  const auto key = std::make_pair(tick, static_cast<int64_t>(query_index));
  BITPUSH_CHECK(finished_.emplace(key, entry).second)
      << "query finished twice";
  if (result.status == CampaignTickResult::Status::kRan &&
      !outcome.final_bit_means.empty()) {
    bit_means_cache_[campaign_.queries()[query_index].value_id] =
        outcome.final_bit_means;
  }
  full_results_[key] = outcome;
}

bool DurableCampaignRunner::RestoreRound(int64_t round_id, RoundOutcome* out) {
  if (live_) return false;
  // Scan the remaining prefix for this round's close record. Finding it
  // means the round fully completed before the crash: skip the whole round
  // (its charges were already re-applied from their own records) and
  // resume after it. A completed round is never re-run — no client is
  // asked for a second bit.
  for (size_t j = cursor_; j < prefix_.size(); ++j) {
    if (prefix_[j].type != JournalRecordType::kRoundClosed) continue;
    RoundClosedRecord record;
    BITPUSH_CHECK(DecodeRoundClosedRecord(prefix_[j].payload, &record));
    if (record.round_id != round_id) continue;
    *out = std::move(record.outcome);
    AdvanceReplay(j + 1);
    return true;
  }
  return false;
}

void DurableCampaignRunner::OnRoundClosed(int64_t round_id,
                                          const RoundOutcome& outcome) {
  RoundClosedRecord record;
  record.round_id = round_id;
  record.outcome = outcome;
  std::vector<uint8_t> payload;
  EncodeRoundClosedRecord(record, &payload);
  VerifyOrAppend(JournalRecordType::kRoundClosed, payload);
}

void DurableCampaignRunner::OnCohortAssigned(
    int64_t round_id, const std::vector<int64_t>& client_ids) {
  std::vector<uint8_t> payload;
  EncodeCohortAssignedRecord(CohortAssignedRecord{round_id, client_ids},
                             &payload);
  VerifyOrAppend(JournalRecordType::kCohortAssigned, payload);
}

void DurableCampaignRunner::OnReportAccepted(int64_t round_id,
                                             const BitReport& report) {
  std::vector<uint8_t> payload;
  EncodeReportAcceptedRecord(ReportAcceptedRecord{round_id, report}, &payload);
  VerifyOrAppend(JournalRecordType::kReportAccepted, payload);
}

void DurableCampaignRunner::OnResilienceEvent(const ResilienceEvent& event) {
  std::vector<uint8_t> payload;
  EncodeResilienceEventRecord(ResilienceEventRecord{event}, &payload);
  VerifyOrAppend(JournalRecordType::kResilienceEvent, payload);
}

std::optional<bool> DurableCampaignRunner::OnChargeAttempt(int64_t client_id,
                                                           int64_t value_id,
                                                           double epsilon) {
  if (live_) return std::nullopt;
  BITPUSH_CHECK_LT(cursor_, prefix_.size());
  const JournalRecord& expected = prefix_[cursor_];
  BITPUSH_CHECK(expected.type == JournalRecordType::kMeterCharge)
      << "recovery divergence: unexpected meter charge during replay";
  MeterChargeRecord record;
  BITPUSH_CHECK(DecodeMeterChargeRecord(expected.payload, &record));
  BITPUSH_CHECK(record.client_id == client_id &&
                record.value_id == value_id &&
                SameDoubleBits(record.epsilon, epsilon))
      << "recovery divergence: meter charge does not match journal record "
      << expected.seq;
  AdvanceReplay(cursor_ + 1);
  return record.granted;
}

void DurableCampaignRunner::OnCharge(int64_t client_id, int64_t value_id,
                                     double epsilon, bool granted) {
  BITPUSH_CHECK(live_)
      << "replayed charges must be served by OnChargeAttempt";
  MeterChargeRecord record;
  record.client_id = client_id;
  record.value_id = value_id;
  record.epsilon = epsilon;
  record.granted = granted;
  std::vector<uint8_t> payload;
  EncodeMeterChargeRecord(record, &payload);
  VerifyOrAppend(JournalRecordType::kMeterCharge, payload);
}

}  // namespace bitpush
