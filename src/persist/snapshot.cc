#include "persist/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "federated/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bytes.h"
#include "util/check.h"

namespace bitpush {

namespace {

constexpr uint8_t kSnapshotMagic[4] = {'B', 'P', 'S', 'N'};

std::string IoError(const std::string& action, const std::string& path) {
  return action + " " + path + ": " + std::strerror(errno);
}

void EncodeBody(const CoordinatorSnapshot& snapshot,
                std::vector<uint8_t>* out) {
  bytes::PutUint64(snapshot.base_seed, out);
  bytes::PutUint64(snapshot.journal_next_seq, out);
  bytes::PutInt64(snapshot.completed_ticks, out);
  bytes::PutUint32(static_cast<uint32_t>(snapshot.meter_blob.size()), out);
  out->insert(out->end(), snapshot.meter_blob.begin(),
              snapshot.meter_blob.end());
  bytes::PutUint32(static_cast<uint32_t>(snapshot.finished.size()), out);
  for (const FinishedQueryEntry& entry : snapshot.finished) {
    bytes::PutInt64(entry.tick, out);
    bytes::PutInt64(entry.query_index, out);
    EncodeCampaignTickResult(entry.result, out);
    bytes::PutDoubleVector(entry.final_bit_means, out);
  }
  bytes::PutUint32(static_cast<uint32_t>(snapshot.bit_means.size()), out);
  for (const BitMeansEntry& entry : snapshot.bit_means) {
    bytes::PutInt64(entry.value_id, out);
    bytes::PutDoubleVector(entry.means, out);
  }
  bytes::PutUint32(static_cast<uint32_t>(snapshot.open_sessions.size()), out);
  for (const std::vector<uint8_t>& session : snapshot.open_sessions) {
    bytes::PutUint32(static_cast<uint32_t>(session.size()), out);
    out->insert(out->end(), session.begin(), session.end());
  }
  bytes::PutUint32(static_cast<uint32_t>(snapshot.health_blob.size()), out);
  out->insert(out->end(), snapshot.health_blob.begin(),
              snapshot.health_blob.end());
}

bool GetBlob(const std::vector<uint8_t>& buffer, size_t* cursor,
             std::vector<uint8_t>* out) {
  uint32_t length = 0;
  if (!bytes::GetUint32(buffer, cursor, &length)) return false;
  if (buffer.size() - *cursor < static_cast<size_t>(length)) return false;
  out->assign(buffer.begin() + static_cast<ptrdiff_t>(*cursor),
              buffer.begin() + static_cast<ptrdiff_t>(*cursor + length));
  *cursor += length;
  return true;
}

bool DecodeBody(const std::vector<uint8_t>& buffer, size_t* offset,
                CoordinatorSnapshot* out) {
  size_t cursor = *offset;
  CoordinatorSnapshot snapshot;
  if (!bytes::GetUint64(buffer, &cursor, &snapshot.base_seed) ||
      !bytes::GetUint64(buffer, &cursor, &snapshot.journal_next_seq) ||
      !bytes::GetInt64(buffer, &cursor, &snapshot.completed_ticks) ||
      !GetBlob(buffer, &cursor, &snapshot.meter_blob)) {
    return false;
  }
  if (snapshot.completed_ticks < 0) return false;

  uint32_t finished_count = 0;
  if (!bytes::GetUint32(buffer, &cursor, &finished_count)) return false;
  snapshot.finished.reserve(finished_count);
  for (uint32_t i = 0; i < finished_count; ++i) {
    FinishedQueryEntry entry;
    if (!bytes::GetInt64(buffer, &cursor, &entry.tick) ||
        !bytes::GetInt64(buffer, &cursor, &entry.query_index) ||
        !DecodeCampaignTickResult(buffer, &cursor, &entry.result) ||
        !bytes::GetDoubleVector(buffer, &cursor, &entry.final_bit_means)) {
      return false;
    }
    if (entry.tick < 0 || entry.query_index < 0 ||
        entry.tick != entry.result.tick) {
      return false;
    }
    for (const double mean : entry.final_bit_means) {
      if (std::isnan(mean)) return false;
    }
    // Chronological, no duplicates: queries finish in (tick, index) order.
    if (!snapshot.finished.empty()) {
      const FinishedQueryEntry& previous = snapshot.finished.back();
      if (entry.tick < previous.tick ||
          (entry.tick == previous.tick &&
           entry.query_index <= previous.query_index)) {
        return false;
      }
    }
    snapshot.finished.push_back(std::move(entry));
  }

  uint32_t means_count = 0;
  if (!bytes::GetUint32(buffer, &cursor, &means_count)) return false;
  snapshot.bit_means.reserve(means_count);
  for (uint32_t i = 0; i < means_count; ++i) {
    BitMeansEntry entry;
    if (!bytes::GetInt64(buffer, &cursor, &entry.value_id) ||
        !bytes::GetDoubleVector(buffer, &cursor, &entry.means)) {
      return false;
    }
    for (const double mean : entry.means) {
      if (std::isnan(mean)) return false;
    }
    if (!snapshot.bit_means.empty() &&
        entry.value_id <= snapshot.bit_means.back().value_id) {
      return false;  // canonical order: sorted by value id, no duplicates
    }
    snapshot.bit_means.push_back(std::move(entry));
  }

  uint32_t session_count = 0;
  if (!bytes::GetUint32(buffer, &cursor, &session_count)) return false;
  snapshot.open_sessions.reserve(session_count);
  for (uint32_t i = 0; i < session_count; ++i) {
    std::vector<uint8_t> session;
    if (!GetBlob(buffer, &cursor, &session)) return false;
    snapshot.open_sessions.push_back(std::move(session));
  }

  if (!GetBlob(buffer, &cursor, &snapshot.health_blob)) return false;

  *out = std::move(snapshot);
  *offset = cursor;
  return true;
}

}  // namespace

void EncodeCoordinatorSnapshot(const CoordinatorSnapshot& snapshot,
                               std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  const size_t start = out->size();
  out->insert(out->end(), kSnapshotMagic, kSnapshotMagic + 4);
  bytes::PutByte(kWireFormatVersion, out);
  EncodeBody(snapshot, out);
  const uint32_t crc = bytes::Crc32(out->data() + start, out->size() - start);
  bytes::PutUint32(crc, out);
}

bool DecodeCoordinatorSnapshot(const std::vector<uint8_t>& buffer,
                               CoordinatorSnapshot* out) {
  BITPUSH_CHECK(out != nullptr);
  if (buffer.size() < 4 + 1 + 4) return false;
  if (std::memcmp(buffer.data(), kSnapshotMagic, 4) != 0) return false;
  if (buffer[4] != kWireFormatVersion) return false;
  const size_t body_end = buffer.size() - 4;
  const uint32_t computed_crc = bytes::Crc32(buffer.data(), body_end);
  size_t crc_cursor = body_end;
  uint32_t stored_crc = 0;
  if (!bytes::GetUint32(buffer, &crc_cursor, &stored_crc)) return false;
  if (computed_crc != stored_crc) return false;
  size_t cursor = 5;
  CoordinatorSnapshot snapshot;
  if (!DecodeBody(buffer, &cursor, &snapshot)) return false;
  if (cursor != body_end) return false;  // trailing garbage inside the CRC
  *out = std::move(snapshot);
  return true;
}

bool WriteSnapshotFile(const std::string& path,
                       const CoordinatorSnapshot& snapshot,
                       std::string* error) {
  BITPUSH_CHECK(error != nullptr);
  // Snapshot I/O metrics are kVolatile: how many snapshots a run takes
  // (and their wall-clock cost) depends on where crashes landed.
  obs::Registry& registry = obs::Registry::Default();
  static obs::Counter* writes = registry.GetCounter(
      "bitpush_snapshot_writes_total", "Snapshot files written.",
      obs::Determinism::kVolatile);
  static obs::Gauge* size_bytes = registry.GetGauge(
      "bitpush_snapshot_bytes", "Size of the last snapshot written.",
      obs::Determinism::kVolatile);
  static obs::Histogram* duration = registry.GetHistogram(
      "bitpush_snapshot_write_seconds",
      "Wall-clock time to encode, write, and fsync one snapshot.",
      obs::LatencySecondsBounds(), obs::Determinism::kVolatile);
  obs::ScopedTimer timer(duration);
  obs::Span span("snapshot.write", "persist");

  std::vector<uint8_t> encoded;
  EncodeCoordinatorSnapshot(snapshot, &encoded);
  writes->Increment();
  size_bytes->Set(static_cast<double>(encoded.size()));
  span.AddNumeric("bytes", static_cast<double>(encoded.size()));

  const std::string temp_path = path + ".tmp";
  std::FILE* file = std::fopen(temp_path.c_str(), "wb");
  if (file == nullptr) {
    *error = IoError("open snapshot temp", temp_path);
    return false;
  }
  const bool wrote =
      std::fwrite(encoded.data(), 1, encoded.size(), file) == encoded.size();
  const bool flushed = wrote && std::fflush(file) == 0;
  const bool synced = flushed && fsync(fileno(file)) == 0;
  std::fclose(file);
  if (!synced) {
    *error = IoError("write snapshot temp", temp_path);
    std::remove(temp_path.c_str());
    return false;
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    *error = IoError("rename snapshot", path);
    std::remove(temp_path.c_str());
    return false;
  }
  // The rename is only durable once the directory entry is; without this a
  // power loss could resurrect the old snapshot after the journal had
  // already been truncated against the new one.
  return SyncParentDir(path, error);
}

bool SyncParentDir(const std::string& path, std::string* error) {
  BITPUSH_CHECK(error != nullptr);
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                          : slash == 0              ? std::string("/")
                                                    : path.substr(0, slash);
  const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    *error = IoError("open state dir", dir);
    return false;
  }
  const bool synced = fsync(fd) == 0;
  if (!synced) *error = IoError("fsync state dir", dir);
  close(fd);
  return synced;
}

bool LoadSnapshotFile(const std::string& path, CoordinatorSnapshot* out,
                      bool* found, std::string* error) {
  BITPUSH_CHECK(out != nullptr);
  BITPUSH_CHECK(found != nullptr);
  BITPUSH_CHECK(error != nullptr);
  *found = false;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) return true;
    *error = IoError("open snapshot", path);
    return false;
  }
  std::vector<uint8_t> data;
  uint8_t chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    data.insert(data.end(), chunk, chunk + n);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    *error = IoError("read snapshot", path);
    return false;
  }
  if (!DecodeCoordinatorSnapshot(data, out)) {
    *error = "snapshot failed validation (bad magic, version, CRC, or body)";
    return false;
  }
  *found = true;
  return true;
}

}  // namespace bitpush
