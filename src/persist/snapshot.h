// Coordinator snapshots.
//
// A snapshot captures everything the durable coordinator needs to resume a
// campaign without the journal growing forever: the privacy-meter ledger
// (as its canonical encoded blob), every finished query's tick result and
// final bit means, the adaptive bit-means cache, any open collection
// sessions, and the sequence number at which the journal resumes. After a
// snapshot is durably in place (write-to-temp, fsync, atomic rename) the
// journal is truncated; recovery loads the newest snapshot and replays the
// short journal tail on top of it.
//
// File format: "BPSN" magic, a format-version byte (kWireFormatVersion,
// shared with the wire and journal frames), the encoded body, and a
// trailing CRC-32 over everything before it. Decoding rejects a bad magic,
// an unknown version, a CRC mismatch, and any internally inconsistent body
// — fail closed, same rule as the journal.

#ifndef BITPUSH_PERSIST_SNAPSHOT_H_
#define BITPUSH_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "federated/campaign.h"

namespace bitpush {

// One finished (run or skipped) scheduled query.
struct FinishedQueryEntry {
  int64_t tick = 0;
  int64_t query_index = 0;
  CampaignTickResult result;
  // Final unbiased bit means of the query (empty for skips); feeds the
  // bit-means cache.
  std::vector<double> final_bit_means;
};

// Latest final bit means observed per value id (the adaptive cache a
// coordinator consults to seed future allocations).
struct BitMeansEntry {
  int64_t value_id = 0;
  std::vector<double> means;
};

struct CoordinatorSnapshot {
  // Seed of the campaign's root RNG; recovery refuses a state directory
  // recorded under a different seed.
  uint64_t base_seed = 0;
  // Sequence number of the first journal record *after* this snapshot.
  uint64_t journal_next_seq = 0;
  // Number of fully closed campaign ticks (ticks [0, completed_ticks)).
  int64_t completed_ticks = 0;
  // PrivacyMeter::EncodeTo blob (kept opaque here; recovery decodes it).
  std::vector<uint8_t> meter_blob;
  // Every finished query since campaign start, in chronological order.
  std::vector<FinishedQueryEntry> finished;
  // Adaptive bit-means cache, sorted by value id.
  std::vector<BitMeansEntry> bit_means;
  // Open CollectionSession blobs (CollectionSession::EncodeTo), kept opaque.
  std::vector<std::vector<uint8_t>> open_sessions;
  // Circuit-breaker state (HealthTracker::EncodeTo, kept opaque; empty when
  // the campaign runs without a breaker). Restoring it from the snapshot
  // preserves failure history older than the journal tail, so quarantine
  // decisions after recovery match an uninterrupted run.
  std::vector<uint8_t> health_blob;
};

// Full-file encode/decode (magic + version + body + CRC). Decode returns
// false on any framing or consistency violation without touching `*out`.
void EncodeCoordinatorSnapshot(const CoordinatorSnapshot& snapshot,
                               std::vector<uint8_t>* out);
bool DecodeCoordinatorSnapshot(const std::vector<uint8_t>& buffer,
                               CoordinatorSnapshot* out);

// Atomically replaces `path` with the encoded snapshot: write to a
// temporary sibling, fsync, rename, fsync the directory. Returns false
// with `*error` on I/O failure.
bool WriteSnapshotFile(const std::string& path,
                       const CoordinatorSnapshot& snapshot,
                       std::string* error);

// Fsyncs the directory containing `path`, making a preceding rename or
// file creation inside it durable across power loss. Returns false with
// `*error` set on failure.
bool SyncParentDir(const std::string& path, std::string* error);

// Loads and decodes `path`. A missing file is success with `*found` set to
// false (fresh state directory). Corruption is an error — a coordinator
// must not silently start from scratch when its ledger exists but is
// unreadable.
bool LoadSnapshotFile(const std::string& path, CoordinatorSnapshot* out,
                      bool* found, std::string* error);

}  // namespace bitpush

#endif  // BITPUSH_PERSIST_SNAPSHOT_H_
