// Crash recovery: snapshot + journal replay into a resumable campaign.
//
// DurableCampaignRunner wraps a MeasurementCampaign with the write-ahead
// journal (persist/journal.h) and periodic snapshots (persist/snapshot.h)
// so that a coordinator killed at *any* instant — mid-round, mid-charge,
// between a snapshot rename and the journal truncation — resumes and
// produces byte-identical results to an uninterrupted run.
//
// The recovery model is deterministic re-execution with a replay cursor:
//
//   1. Load the newest snapshot: privacy-meter ledger, finished queries,
//      bit-means cache, open sessions, completed-tick count.
//   2. Replay the journal tail on top of it. Meter-charge records are
//      re-applied through the real meter, verifying the recorded outcome —
//      a charge is applied exactly once, never twice, never dropped.
//      Query-finished and tick records advance the completed state; the
//      trailing records of an unfinished query become the *replay prefix*.
//   3. The driver re-calls RunTick for every tick from 0. Finished queries
//      are served from the recovered state without touching clients or the
//      meter (a completed round-1 probe is never re-probed). The one query
//      that was mid-flight re-executes with the same forked RNG stream
//      while the recorder verifies each emission against the replay prefix
//      (crashing loudly on divergence) and serves journaled charge
//      outcomes back to the meter; once the prefix is exhausted the run
//      goes live and new records append where the crash cut off.
//
// The caller must re-create the runner with the same queries, meter
// policy, seed, populations, and codecs it used originally — recovery
// fails closed on the mismatches it can detect (seed, meter policy,
// journal/snapshot corruption) and relies on determinism for the rest.

#ifndef BITPUSH_PERSIST_RECOVERY_H_
#define BITPUSH_PERSIST_RECOVERY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/privacy_meter.h"
#include "federated/campaign.h"
#include "federated/session.h"
#include "persist/journal.h"
#include "persist/snapshot.h"
#include "rng/rng.h"

namespace bitpush {

struct DurableCampaignOptions {
  // Directory holding journal.wal and snapshot.bin; created if missing.
  std::string state_dir;
  // Seed of the campaign's root RNG. Recovery refuses a state directory
  // recorded under a different seed.
  uint64_t seed = 0;
  // Snapshot (and truncate the journal) after every N closed ticks;
  // 0 disables automatic snapshots.
  int64_t snapshot_every_ticks = 0;
  // Per-record fsync. Disable only in tests that write many journals.
  bool fsync = true;
  // Crash harness passthrough (JournalWriter::set_crash_after_records):
  // exit with status 137 after this many appended records. 0 disables.
  int64_t crash_after_records = 0;
};

struct RecoveryInfo {
  // The state directory held prior state (snapshot or journal records).
  bool recovered = false;
  bool had_snapshot = false;
  // The journal ended mid-frame (the expected crash artifact); the torn
  // bytes were discarded and the clean prefix used.
  bool torn_tail = false;
  // Journal records replayed on top of the snapshot.
  int64_t replayed_records = 0;
  // Fully closed ticks restored; RunTick(t) for t below this serves every
  // query from the recovered state.
  int64_t completed_ticks = 0;
};

// A crash-consistent campaign coordinator. Usage, fresh or recovering:
//
//   DurableCampaignRunner runner(queries, policy, options);
//   std::string error;
//   if (!runner.Open(&error)) { /* corrupt state: fail closed */ }
//   for (int64_t t = 0; t < kTicks; ++t)
//     runner.RunTick(t, populations, codecs);
//
// RunTick must be called for every tick from 0 in order, with the same
// populations and codecs as the original run; recovered ticks replay from
// state instead of contacting clients.
class DurableCampaignRunner : private CampaignRecorder,
                              private PrivacyMeter::Journal {
 public:
  // `resilience` is forwarded to the campaign (see MeasurementCampaign).
  // Every retry / hedge / breaker decision is journaled as a
  // kResilienceEvent record, so replay verifies the recovered schedule
  // decision by decision; the breaker's state is snapshot-persisted and
  // rebuilt from the journaled round outcomes in between.
  DurableCampaignRunner(std::vector<CampaignQuery> queries,
                        const MeterPolicy& policy,
                        DurableCampaignOptions options,
                        ResilienceConfig resilience = {});
  ~DurableCampaignRunner() override = default;

  // Loads the snapshot, replays the journal, and prepares the journal for
  // appending. Returns false with `*error` set on I/O failure or on any
  // validation failure (corrupt snapshot/journal, seed or policy
  // mismatch) — fail closed, no partial state.
  bool Open(std::string* error);

  // Runs (or restores) one campaign tick. `tick` must equal next_tick().
  std::vector<CampaignTickResult> RunTick(
      int64_t tick,
      const std::vector<const std::vector<Client>*>& populations,
      const std::vector<FixedPointCodec>& codecs);

  // Writes a snapshot of the current state and truncates the journal.
  // Called automatically every snapshot_every_ticks; may be called
  // manually between ticks.
  bool Snapshot(std::string* error);

  // Durable collection sessions: persisted (while open) in every snapshot
  // and restored by Open. Indices are assigned in creation order; after a
  // recovery they re-index the restored open sessions.
  int64_t AddSession(const FixedPointCodec& codec, const SessionConfig& config);
  CollectionSession* session(int64_t index);
  int64_t session_count() const {
    return static_cast<int64_t>(sessions_.size());
  }

  const PrivacyMeter& meter() const { return meter_; }
  const MeasurementCampaign& campaign() const { return campaign_; }
  const RecoveryInfo& recovery_info() const { return info_; }
  int64_t next_tick() const { return next_tick_; }

  // Recovery-stable per-tick privacy-meter trajectory: entry t holds the
  // ledger totals at the close of tick t. A recovered run reconstructs the
  // samples for restored ticks during journal replay (at each campaign-tick
  // record, i.e. with exactly the charges that preceded that tick's close),
  // so the trajectory is byte-identical to an uninterrupted run's — the
  // deterministic input the privacy-burn-rate alert rule evaluates on.
  struct MeterTickSample {
    int64_t bits_spent = 0;
    int64_t denied_charges = 0;
  };
  const std::vector<MeterTickSample>& meter_by_tick() const {
    return meter_by_tick_;
  }

  // Records currently in the journal file: the validated records kept at
  // Open plus live appends, zeroed when a snapshot truncates the journal.
  // Feeds the journal-growth alert rule.
  int64_t journal_records() const { return journal_records_; }

  // Latest final bit means per value id (snapshot-persisted).
  const std::map<int64_t, std::vector<double>>& bit_means_cache() const {
    return bit_means_cache_;
  }
  // Full protocol-level results of the queries this process executed live
  // (restored queries only have their summarized CampaignTickResult),
  // keyed by (tick, query index).
  const std::map<std::pair<int64_t, int64_t>, FederatedQueryResult>&
  full_results() const {
    return full_results_;
  }

 private:
  // CampaignRecorder:
  bool RestoreQueryResult(int64_t tick, size_t query_index,
                          CampaignTickResult* out) override;
  void OnQueryStarted(int64_t tick, size_t query_index,
                      int64_t value_id) override;
  void OnQueryFinished(int64_t tick, size_t query_index,
                       const CampaignTickResult& result,
                       const FederatedQueryResult& outcome) override;
  // QueryRecorder:
  bool RestoreRound(int64_t round_id, RoundOutcome* out) override;
  void OnRoundClosed(int64_t round_id, const RoundOutcome& outcome) override;
  void OnCohortAssigned(int64_t round_id,
                        const std::vector<int64_t>& client_ids) override;
  void OnReportAccepted(int64_t round_id, const BitReport& report) override;
  void OnResilienceEvent(const ResilienceEvent& event) override;
  // PrivacyMeter::Journal:
  std::optional<bool> OnChargeAttempt(int64_t client_id, int64_t value_id,
                                      double epsilon) override;
  void OnCharge(int64_t client_id, int64_t value_id, double epsilon,
                bool granted) override;

  // In replay mode, checks the emission against the next prefix record and
  // advances the cursor (aborting on divergence — a recovering coordinator
  // that cannot reproduce its own journal must not limp on). In live mode,
  // appends the record durably.
  void VerifyOrAppend(JournalRecordType type,
                      const std::vector<uint8_t>& payload);
  // Moves the replay cursor to `next`; once the prefix is exhausted,
  // discards it and flips the run live (Snapshot() requires the prefix to
  // be gone, not merely consumed).
  void AdvanceReplay(size_t next);
  // Applies the replayed journal records to the recovered state (step 2 of
  // the recovery model above).
  bool ApplyJournal(const std::vector<JournalRecord>& records,
                    std::string* error);
  bool RewriteJournalFile(const std::vector<JournalRecord>& records,
                          std::string* error);
  // Pads meter_by_tick_ up to (and including) index `tick` with the
  // meter's current totals — called when a tick closes (live) and at each
  // replayed campaign-tick record (recovery). Never overwrites an existing
  // sample, so the replayed values win for restored ticks.
  void RecordMeterSample(int64_t tick);

  MeterPolicy policy_;
  DurableCampaignOptions options_;
  PrivacyMeter meter_;
  MeasurementCampaign campaign_;
  Rng rng_;
  JournalWriter journal_;
  std::string journal_path_;
  std::string snapshot_path_;

  // Replay prefix: journal records of the query that was mid-flight at the
  // crash. live_ flips once the cursor exhausts it.
  std::vector<JournalRecord> prefix_;
  size_t cursor_ = 0;
  bool live_ = true;

  // Recovered + accumulated durable state.
  std::map<std::pair<int64_t, int64_t>, FinishedQueryEntry> finished_;
  std::map<int64_t, std::vector<double>> bit_means_cache_;
  std::map<std::pair<int64_t, int64_t>, FederatedQueryResult> full_results_;
  std::vector<CollectionSession> sessions_;

  std::vector<MeterTickSample> meter_by_tick_;
  int64_t journal_records_ = 0;
  int64_t completed_ticks_ = 0;
  // Ticks whose kCampaignTick record predates this process (do not
  // re-append while re-running them).
  int64_t ticks_already_journaled_ = 0;
  int64_t next_tick_ = 0;
  // An automatic snapshot came due at a boundary where the replay prefix
  // was still pending; taken at the first boundary after going live.
  bool snapshot_due_ = false;
  bool open_ = false;
  RecoveryInfo info_;
};

}  // namespace bitpush

#endif  // BITPUSH_PERSIST_RECOVERY_H_
