#include "persist/journal.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "federated/wire.h"
#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/check.h"

namespace bitpush {

namespace {

// Journal I/O counters are kVolatile: a recovered run re-appends only the
// records the crash lost, so its totals legitimately differ from a clean
// run's.
void ObserveJournalAppend(size_t frame_bytes, bool fsynced) {
  if (!obs::Enabled()) return;
  obs::Registry& registry = obs::Registry::Default();
  static obs::Counter* records = registry.GetCounter(
      "bitpush_journal_records_total", "Journal records appended.",
      obs::Determinism::kVolatile);
  static obs::Counter* bytes = registry.GetCounter(
      "bitpush_journal_bytes_total", "Journal frame bytes written.",
      obs::Determinism::kVolatile);
  static obs::Counter* fsyncs = registry.GetCounter(
      "bitpush_journal_fsyncs_total", "Journal fsync calls issued.",
      obs::Determinism::kVolatile);
  records->Increment();
  bytes->Add(static_cast<int64_t>(frame_bytes));
  if (fsynced) fsyncs->Increment();
}

// version + type + seq + len.
constexpr size_t kFrameHeaderSize = 1 + 1 + 8 + 4;
constexpr size_t kFrameCrcSize = 4;

bool ValidRecordType(uint8_t type) {
  return type >= static_cast<uint8_t>(JournalRecordType::kQueryStarted) &&
         type <= static_cast<uint8_t>(JournalRecordType::kResilienceEvent);
}

std::string IoError(const std::string& action, const std::string& path) {
  return action + " " + path + ": " + std::strerror(errno);
}

}  // namespace

void AppendJournalFrame(JournalRecordType type, uint64_t seq,
                        const std::vector<uint8_t>& payload,
                        std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  const size_t start = out->size();
  bytes::PutByte(kWireFormatVersion, out);
  bytes::PutByte(static_cast<uint8_t>(type), out);
  bytes::PutUint64(seq, out);
  bytes::PutUint32(static_cast<uint32_t>(payload.size()), out);
  out->insert(out->end(), payload.begin(), payload.end());
  const uint32_t crc = bytes::Crc32(out->data() + start, out->size() - start);
  bytes::PutUint32(crc, out);
}

bool JournalWriter::Open(const std::string& path, uint64_t next_seq,
                         std::string* error) {
  BITPUSH_CHECK(error != nullptr);
  BITPUSH_CHECK(file_ == nullptr) << "journal already open";
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    *error = IoError("open journal", path);
    return false;
  }
  next_seq_ = next_seq;
  return true;
}

bool JournalWriter::Append(JournalRecordType type,
                           const std::vector<uint8_t>& payload) {
  BITPUSH_CHECK(file_ != nullptr) << "journal not open";
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderSize + payload.size() + kFrameCrcSize);
  AppendJournalFrame(type, next_seq_, payload, &frame);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return false;
  }
  if (std::fflush(file_) != 0) return false;
  if (fsync_ && fsync(fileno(file_)) != 0) return false;
  ObserveJournalAppend(frame.size(), fsync_);
  ++next_seq_;
  ++appended_;
  if (crash_after_records_ > 0 && appended_ >= crash_after_records_) {
    // Crash harness: die the way SIGKILL would — no flushing, no handlers —
    // with exactly the records appended so far durable on disk.
    std::_Exit(137);
  }
  return true;
}

void JournalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool ReadJournal(const std::string& path, uint64_t expected_first_seq,
                 JournalReadResult* out, std::string* error) {
  BITPUSH_CHECK(out != nullptr);
  BITPUSH_CHECK(error != nullptr);
  JournalReadResult result;
  result.next_seq = expected_first_seq;

  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) {
      // No journal yet: an empty one.
      *out = std::move(result);
      return true;
    }
    *error = IoError("open journal", path);
    return false;
  }
  std::vector<uint8_t> data;
  uint8_t chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    data.insert(data.end(), chunk, chunk + n);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    *error = IoError("read journal", path);
    return false;
  }

  size_t offset = 0;
  uint64_t previous_seq = 0;
  bool have_previous = false;
  while (offset < data.size()) {
    if (data.size() - offset < kFrameHeaderSize) {
      result.torn_tail = true;  // file ends inside a frame header
      break;
    }
    size_t cursor = offset;
    uint8_t version = 0;
    uint8_t type = 0;
    uint64_t seq = 0;
    uint32_t length = 0;
    BITPUSH_CHECK(bytes::GetByte(data, &cursor, &version));
    BITPUSH_CHECK(bytes::GetByte(data, &cursor, &type));
    BITPUSH_CHECK(bytes::GetUint64(data, &cursor, &seq));
    BITPUSH_CHECK(bytes::GetUint32(data, &cursor, &length));
    if (version != kWireFormatVersion) {
      *error = "journal record with unknown format version";
      return false;
    }
    if (!ValidRecordType(type)) {
      *error = "journal record with unknown type";
      return false;
    }
    if (data.size() - cursor < static_cast<size_t>(length) + kFrameCrcSize) {
      result.torn_tail = true;  // file ends inside the payload or CRC
      break;
    }
    const uint32_t computed_crc =
        bytes::Crc32(data.data() + offset, kFrameHeaderSize + length);
    cursor += length;
    uint32_t stored_crc = 0;
    BITPUSH_CHECK(bytes::GetUint32(data, &cursor, &stored_crc));
    if (computed_crc != stored_crc) {
      // A complete frame with a bad CRC is real corruption, not a torn
      // write: fail closed.
      *error = "journal record failed CRC check";
      return false;
    }
    if (have_previous && seq != previous_seq + 1) {
      *error = "journal sequence gap or duplicate";
      return false;
    }
    have_previous = true;
    previous_seq = seq;
    if (seq >= expected_first_seq) {
      if (result.records.empty() && seq != expected_first_seq) {
        // Records between the snapshot and this one are missing entirely.
        *error = "journal starts past the snapshot sequence";
        return false;
      }
      JournalRecord record;
      record.seq = seq;
      record.type = static_cast<JournalRecordType>(type);
      record.payload.assign(
          data.begin() + static_cast<ptrdiff_t>(offset + kFrameHeaderSize),
          data.begin() +
              static_cast<ptrdiff_t>(offset + kFrameHeaderSize + length));
      result.records.push_back(std::move(record));
      result.next_seq = seq + 1;
    }
    offset = cursor;
    result.clean_length = offset;
  }
  *out = std::move(result);
  return true;
}

bool TruncateJournalToRecords(const std::string& path, size_t keep_records,
                              std::string* error) {
  BITPUSH_CHECK(error != nullptr);
  JournalReadResult journal;
  if (!ReadJournal(path, 0, &journal, error)) return false;
  std::vector<uint8_t> prefix;
  const size_t keep = std::min(keep_records, journal.records.size());
  for (size_t i = 0; i < keep; ++i) {
    AppendJournalFrame(journal.records[i].type, journal.records[i].seq,
                       journal.records[i].payload, &prefix);
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    *error = IoError("truncate journal", path);
    return false;
  }
  const bool wrote =
      prefix.empty() ||
      std::fwrite(prefix.data(), 1, prefix.size(), file) == prefix.size();
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed) {
    *error = IoError("truncate journal", path);
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Record payload codecs.

void EncodeQueryStartedRecord(const QueryStartedRecord& record,
                              std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutInt64(record.tick, out);
  bytes::PutInt64(record.query_index, out);
  bytes::PutInt64(record.value_id, out);
}

bool DecodeQueryStartedRecord(const std::vector<uint8_t>& payload,
                              QueryStartedRecord* out) {
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = 0;
  QueryStartedRecord record;
  if (!bytes::GetInt64(payload, &cursor, &record.tick) ||
      !bytes::GetInt64(payload, &cursor, &record.query_index) ||
      !bytes::GetInt64(payload, &cursor, &record.value_id) ||
      cursor != payload.size()) {
    return false;
  }
  if (record.tick < 0 || record.query_index < 0) return false;
  *out = record;
  return true;
}

void EncodeCohortAssignedRecord(const CohortAssignedRecord& record,
                                std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutInt64(record.round_id, out);
  bytes::PutInt64Vector(record.client_ids, out);
}

bool DecodeCohortAssignedRecord(const std::vector<uint8_t>& payload,
                                CohortAssignedRecord* out) {
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = 0;
  CohortAssignedRecord record;
  if (!bytes::GetInt64(payload, &cursor, &record.round_id) ||
      !bytes::GetInt64Vector(payload, &cursor, &record.client_ids) ||
      cursor != payload.size()) {
    return false;
  }
  if (record.round_id < 0) return false;
  *out = std::move(record);
  return true;
}

void EncodeMeterChargeRecord(const MeterChargeRecord& record,
                             std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutInt64(record.client_id, out);
  bytes::PutInt64(record.value_id, out);
  bytes::PutDouble(record.epsilon, out);
  bytes::PutByte(record.granted ? 1 : 0, out);
}

bool DecodeMeterChargeRecord(const std::vector<uint8_t>& payload,
                             MeterChargeRecord* out) {
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = 0;
  MeterChargeRecord record;
  uint8_t granted = 0;
  if (!bytes::GetInt64(payload, &cursor, &record.client_id) ||
      !bytes::GetInt64(payload, &cursor, &record.value_id) ||
      !bytes::GetDouble(payload, &cursor, &record.epsilon) ||
      !bytes::GetByte(payload, &cursor, &granted) ||
      cursor != payload.size()) {
    return false;
  }
  if (granted > 1) return false;
  record.granted = granted == 1;
  // A *granted* charge never carries an invalid epsilon — the meter denies
  // non-finite and negative values before journaling — so such a record is
  // corruption. A denied record keeps the offending epsilon verbatim so
  // replay can verify it bit-for-bit against the re-executed attempt.
  if (record.granted &&
      (!std::isfinite(record.epsilon) || record.epsilon < 0.0)) {
    return false;
  }
  *out = record;
  return true;
}

void EncodeReportAcceptedRecord(const ReportAcceptedRecord& record,
                                std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutInt64(record.round_id, out);
  bytes::PutInt64(record.report.client_id, out);
  bytes::PutInt64(record.report.bit_index, out);
  bytes::PutByte(static_cast<uint8_t>(record.report.bit), out);
}

bool DecodeReportAcceptedRecord(const std::vector<uint8_t>& payload,
                                ReportAcceptedRecord* out) {
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = 0;
  ReportAcceptedRecord record;
  int64_t bit_index = 0;
  uint8_t bit = 0;
  if (!bytes::GetInt64(payload, &cursor, &record.round_id) ||
      !bytes::GetInt64(payload, &cursor, &record.report.client_id) ||
      !bytes::GetInt64(payload, &cursor, &bit_index) ||
      !bytes::GetByte(payload, &cursor, &bit) || cursor != payload.size()) {
    return false;
  }
  if (record.round_id < 0 || bit_index < 0 || bit_index >= kMaxBits ||
      bit > 1) {
    return false;
  }
  record.report.bit_index = static_cast<int>(bit_index);
  record.report.bit = bit;
  *out = record;
  return true;
}

void EncodeRoundClosedRecord(const RoundClosedRecord& record,
                             std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutInt64(record.round_id, out);
  EncodeRoundOutcome(record.outcome, out);
}

bool DecodeRoundClosedRecord(const std::vector<uint8_t>& payload,
                             RoundClosedRecord* out) {
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = 0;
  RoundClosedRecord record;
  if (!bytes::GetInt64(payload, &cursor, &record.round_id) ||
      !DecodeRoundOutcome(payload, &cursor, &record.outcome) ||
      cursor != payload.size()) {
    return false;
  }
  if (record.round_id < 0) return false;
  *out = std::move(record);
  return true;
}

void EncodeQueryFinishedRecord(const QueryFinishedRecord& record,
                               std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutInt64(record.tick, out);
  bytes::PutInt64(record.query_index, out);
  EncodeCampaignTickResult(record.result, out);
  bytes::PutDoubleVector(record.final_bit_means, out);
}

bool DecodeQueryFinishedRecord(const std::vector<uint8_t>& payload,
                               QueryFinishedRecord* out) {
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = 0;
  QueryFinishedRecord record;
  if (!bytes::GetInt64(payload, &cursor, &record.tick) ||
      !bytes::GetInt64(payload, &cursor, &record.query_index) ||
      !DecodeCampaignTickResult(payload, &cursor, &record.result) ||
      !bytes::GetDoubleVector(payload, &cursor, &record.final_bit_means) ||
      cursor != payload.size()) {
    return false;
  }
  if (record.tick < 0 || record.query_index < 0 ||
      record.tick != record.result.tick) {
    return false;
  }
  for (const double mean : record.final_bit_means) {
    if (std::isnan(mean)) return false;
  }
  *out = std::move(record);
  return true;
}

void EncodeCampaignTickRecord(const CampaignTickRecord& record,
                              std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutInt64(record.tick, out);
}

bool DecodeCampaignTickRecord(const std::vector<uint8_t>& payload,
                              CampaignTickRecord* out) {
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = 0;
  CampaignTickRecord record;
  if (!bytes::GetInt64(payload, &cursor, &record.tick) ||
      cursor != payload.size()) {
    return false;
  }
  if (record.tick < 0) return false;
  *out = record;
  return true;
}

void EncodeResilienceEventRecord(const ResilienceEventRecord& record,
                                 std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  EncodeResilienceEvent(record.event, out);
}

bool DecodeResilienceEventRecord(const std::vector<uint8_t>& payload,
                                 ResilienceEventRecord* out) {
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = 0;
  ResilienceEventRecord record;
  if (!DecodeResilienceEvent(payload, &cursor, &record.event) ||
      cursor != payload.size()) {
    return false;
  }
  *out = record;
  return true;
}

}  // namespace bitpush
