// Write-ahead journal for the durable coordinator.
//
// Every state transition a crash must not lose — a query starting, a cohort
// assignment going out, a privacy-meter charge, a report landing in a
// tally, a round or a campaign tick closing — is appended here as one
// length-prefixed, CRC-protected record *before* the in-memory state
// changes. Recovery (src/persist/recovery.h) replays the journal on top of
// the latest snapshot.
//
// Frame layout (little-endian):
//
//   [version:1][type:1][seq:8][len:4][payload:len][crc32:4]
//
// `version` is kWireFormatVersion, shared with the network batch frames of
// federated/wire.h; `seq` numbers records contiguously across the life of
// the state directory (snapshots record where the journal resumes); the
// CRC covers version through payload.
//
// Read semantics distinguish the one corruption a crash legitimately
// produces from everything else. A file that *ends* mid-frame is a torn
// tail: the clean prefix is used and the torn bytes are truncated before
// the journal is appended to again. Any complete frame that fails
// validation — bad CRC, unknown version or type, out-of-order seq — is a
// hard error: recovery fails closed rather than guess, because a record
// silently dropped here could be a privacy-meter charge.

#ifndef BITPUSH_PERSIST_JOURNAL_H_
#define BITPUSH_PERSIST_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "federated/campaign.h"
#include "federated/report.h"
#include "federated/resilience.h"
#include "federated/server.h"

namespace bitpush {

enum class JournalRecordType : uint8_t {
  kQueryStarted = 1,
  kCohortAssigned = 2,
  kMeterCharge = 3,
  kReportAccepted = 4,
  kRoundClosed = 5,
  kQueryFinished = 6,
  kCampaignTick = 7,
  kResilienceEvent = 8,
};

struct JournalRecord {
  uint64_t seq = 0;
  JournalRecordType type = JournalRecordType::kQueryStarted;
  std::vector<uint8_t> payload;
};

// Appends one complete frame for (type, seq, payload) to `out`. Exposed so
// tests can build journals (including deliberately corrupted ones) without
// going through a writer.
void AppendJournalFrame(JournalRecordType type, uint64_t seq,
                        const std::vector<uint8_t>& payload,
                        std::vector<uint8_t>* out);

// Append-only journal writer. Append() makes the record durable (fwrite +
// fflush + fsync unless fsync is disabled for tests) before returning, so
// a caller that journals first and mutates second gets write-ahead
// semantics for free.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { Close(); }
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  // Opens `path` for appending (creating it if needed); new records are
  // numbered from `next_seq`. Returns false with `*error` set on I/O
  // failure.
  bool Open(const std::string& path, uint64_t next_seq, std::string* error);

  // Appends one record and makes it durable. Returns false on I/O failure.
  bool Append(JournalRecordType type, const std::vector<uint8_t>& payload);

  void Close();
  bool is_open() const { return file_ != nullptr; }
  uint64_t next_seq() const { return next_seq_; }
  int64_t appended_records() const { return appended_; }

  // Disables the per-record fsync (tests that write thousands of journals).
  void set_fsync(bool fsync) { fsync_ = fsync; }

  // Crash harness: after `n` successful appends the process exits
  // immediately with status 137 (the SIGKILL status), emulating a kill
  // with the first n records durable and everything after them lost.
  // 0 disables.
  void set_crash_after_records(int64_t n) { crash_after_records_ = n; }

 private:
  std::FILE* file_ = nullptr;
  uint64_t next_seq_ = 0;
  int64_t appended_ = 0;
  int64_t crash_after_records_ = 0;
  bool fsync_ = true;
};

struct JournalReadResult {
  // Valid records with seq >= expected_first_seq, in order. Records below
  // expected_first_seq (left behind when a crash lands between a snapshot
  // rename and the journal truncation that follows it) are dropped.
  std::vector<JournalRecord> records;
  // The file ended mid-frame (the expected crash artifact). The records
  // above are the clean prefix; re-open the journal only after truncating
  // the file to clean_length.
  bool torn_tail = false;
  // Byte length of the valid frame prefix.
  size_t clean_length = 0;
  // Sequence number the next appended record should carry.
  uint64_t next_seq = 0;
};

// Reads and validates a journal file. A missing file is an empty journal
// (success). Returns false with `*error` set on I/O failure or on any
// corruption that is not a torn tail: CRC mismatch, unknown version or
// record type, a duplicate / out-of-order / gapped sequence number.
bool ReadJournal(const std::string& path, uint64_t expected_first_seq,
                 JournalReadResult* out, std::string* error);

// Rewrites the journal at `path` so only its first `keep_records` records
// remain — the canonical way to simulate a crash that lost a durable
// suffix. Reads and validates the existing file first; keeping more records
// than exist keeps them all. Returns false with `*error` set on I/O failure
// or on pre-existing corruption.
bool TruncateJournalToRecords(const std::string& path, size_t keep_records,
                              std::string* error);

// ---------------------------------------------------------------------------
// Record payloads. Each Encode appends to `out`; each Decode consumes the
// *entire* payload buffer and returns false (leaving `*out` untouched) on
// truncation, trailing bytes, or invalid fields.

struct QueryStartedRecord {
  int64_t tick = 0;
  int64_t query_index = 0;
  int64_t value_id = 0;

  friend bool operator==(const QueryStartedRecord&,
                         const QueryStartedRecord&) = default;
};
void EncodeQueryStartedRecord(const QueryStartedRecord& record,
                              std::vector<uint8_t>* out);
bool DecodeQueryStartedRecord(const std::vector<uint8_t>& payload,
                              QueryStartedRecord* out);

struct CohortAssignedRecord {
  int64_t round_id = 0;
  std::vector<int64_t> client_ids;

  friend bool operator==(const CohortAssignedRecord&,
                         const CohortAssignedRecord&) = default;
};
void EncodeCohortAssignedRecord(const CohortAssignedRecord& record,
                                std::vector<uint8_t>* out);
bool DecodeCohortAssignedRecord(const std::vector<uint8_t>& payload,
                                CohortAssignedRecord* out);

struct MeterChargeRecord {
  int64_t client_id = 0;
  int64_t value_id = 0;
  double epsilon = 0.0;
  bool granted = false;

  friend bool operator==(const MeterChargeRecord&,
                         const MeterChargeRecord&) = default;
};
void EncodeMeterChargeRecord(const MeterChargeRecord& record,
                             std::vector<uint8_t>* out);
bool DecodeMeterChargeRecord(const std::vector<uint8_t>& payload,
                             MeterChargeRecord* out);

struct ReportAcceptedRecord {
  int64_t round_id = 0;
  BitReport report;

  friend bool operator==(const ReportAcceptedRecord& a,
                         const ReportAcceptedRecord& b) {
    return a.round_id == b.round_id &&
           a.report.client_id == b.report.client_id &&
           a.report.bit_index == b.report.bit_index &&
           a.report.bit == b.report.bit;
  }
};
void EncodeReportAcceptedRecord(const ReportAcceptedRecord& record,
                                std::vector<uint8_t>* out);
bool DecodeReportAcceptedRecord(const std::vector<uint8_t>& payload,
                                ReportAcceptedRecord* out);

struct RoundClosedRecord {
  int64_t round_id = 0;
  RoundOutcome outcome;
};
void EncodeRoundClosedRecord(const RoundClosedRecord& record,
                             std::vector<uint8_t>* out);
bool DecodeRoundClosedRecord(const std::vector<uint8_t>& payload,
                             RoundClosedRecord* out);

struct QueryFinishedRecord {
  int64_t tick = 0;
  int64_t query_index = 0;
  CampaignTickResult result;
  std::vector<double> final_bit_means;
};
void EncodeQueryFinishedRecord(const QueryFinishedRecord& record,
                               std::vector<uint8_t>* out);
bool DecodeQueryFinishedRecord(const std::vector<uint8_t>& payload,
                               QueryFinishedRecord* out);

struct CampaignTickRecord {
  int64_t tick = 0;

  friend bool operator==(const CampaignTickRecord&,
                         const CampaignTickRecord&) = default;
};
void EncodeCampaignTickRecord(const CampaignTickRecord& record,
                              std::vector<uint8_t>* out);
bool DecodeCampaignTickRecord(const std::vector<uint8_t>& payload,
                              CampaignTickRecord* out);

// One retry / hedge / breaker decision made by the resilience layer
// (federated/resilience.h) during a live round. Journaled in execution
// order so replay can verify the recovery layer re-derives the exact same
// decisions from the same seed.
struct ResilienceEventRecord {
  ResilienceEvent event;

  friend bool operator==(const ResilienceEventRecord&,
                         const ResilienceEventRecord&) = default;
};
void EncodeResilienceEventRecord(const ResilienceEventRecord& record,
                                 std::vector<uint8_t>* out);
bool DecodeResilienceEventRecord(const std::vector<uint8_t>& payload,
                                 ResilienceEventRecord* out);

}  // namespace bitpush

#endif  // BITPUSH_PERSIST_JOURNAL_H_
