// Fixed-point encoding and bit decomposition.
//
// Bit-pushing works on b-bit non-negative integers (Section 3.1): real
// inputs are approximated by fixed-point values, expanded in binary, and
// individual binary digits are sampled. The codec maps a real interval
// [low, high] onto {0, ..., 2^b - 1} with clipping (the winsorization of
// Section 4.3: "clipping the inputs to a fixed number of bits b ... so that
// large values are truncated to 2^b - 1").
//
// Decode accepts *fractional* codewords because the server reconstructs
// sum_j 2^j * m_j from estimated bit means m_j, which is a real number in
// codeword space.

#ifndef BITPUSH_CORE_FIXED_POINT_H_
#define BITPUSH_CORE_FIXED_POINT_H_

#include <cstdint>
#include <vector>

namespace bitpush {

// Maximum supported bit width. 52 keeps exact integer round-trips within
// double precision, which the estimators rely on.
inline constexpr int kMaxBits = 52;

class FixedPointCodec {
 public:
  // Maps [low, high] linearly onto {0, ..., 2^bits - 1}. Requires
  // 1 <= bits <= kMaxBits and low < high.
  FixedPointCodec(int bits, double low, double high);

  // Codec for values that are already non-negative integers below 2^bits
  // (unit scale, zero offset) — e.g. ages, counters, clipped telemetry.
  static FixedPointCodec Integer(int bits);

  // Encodes x: clip to [low, high], scale, round to nearest codeword.
  uint64_t Encode(double x) const;

  // Encodes a whole dataset.
  std::vector<uint64_t> EncodeAll(const std::vector<double>& values) const;

  // Decodes a (possibly fractional) codeword back to the value domain.
  double Decode(double codeword) const;

  // Value of bit j (0 = least significant) of codeword v; j in [0, bits).
  static int Bit(uint64_t v, int j);

  // Index of the highest set bit of v, or -1 if v == 0.
  static int HighestSetBit(uint64_t v);

  int bits() const { return bits_; }
  double low() const { return low_; }
  double high() const { return high_; }
  // Largest codeword, 2^bits - 1.
  uint64_t max_codeword() const { return max_codeword_; }
  // Value-domain width of one codeword step.
  double resolution() const { return 1.0 / scale_; }

 private:
  int bits_;
  double low_;
  double high_;
  uint64_t max_codeword_;
  double scale_;  // codewords per value unit: max_codeword / (high - low)
};

}  // namespace bitpush

#endif  // BITPUSH_CORE_FIXED_POINT_H_
