// Variance estimation via bit-pushing (Section 3.4, Lemma 3.5).
//
// The empirical variance reduces to mean estimations of derived values.
// Two estimators with different error behaviour:
//   * kCentered: a first phase estimates the mean mu_hat; the remaining
//     clients locally compute (x - mu_hat)^2 and bit-push those. Estimator
//     variance proportional to (sigma^2 + mean^2/n)^2 / n — the better
//     choice (used in Figures 1b and 2b).
//   * kMoments: the cohort is split between estimating E[X] and E[X^2];
//     variance = E[X^2] - E[X]^2. Estimator variance proportional to
//     (sigma^2 + mean^2)^2 / n.
// Squared derived values need up to twice the bit width of the inputs; the
// squared-domain codec is derived automatically (capped at kMaxBits).

#ifndef BITPUSH_CORE_VARIANCE_ESTIMATION_H_
#define BITPUSH_CORE_VARIANCE_ESTIMATION_H_

#include <vector>

#include "core/adaptive.h"
#include "core/fixed_point.h"
#include "rng/rng.h"

namespace bitpush {

enum class VarianceMethod {
  kCentered,  // E[(X - mu_hat)^2]
  kMoments,   // E[X^2] - (E[X])^2
};

struct VarianceConfig {
  VarianceMethod method = VarianceMethod::kCentered;
  // Fraction of clients assigned to the mean phase/half.
  double mean_fraction = 0.5;
  // Protocol settings shared by both phases. The `bits` field is overridden
  // per phase (input width for means, doubled width for squares).
  AdaptiveConfig protocol;
  // When false, each phase runs single-round weighted bit-pushing with
  // p_j proportional to 2^{gamma j} (protocol.gamma) instead of the
  // two-round adaptive protocol — the "weighted" baseline of Figure 1b.
  bool adaptive = true;
};

struct VarianceResult {
  double variance = 0.0;       // clamped to >= 0
  double mean_estimate = 0.0;  // the mean-phase estimate (value domain)
  // Second-moment or centered-second-moment estimate, value domain.
  double second_moment_estimate = 0.0;
};

// Estimates the population variance of `values`. `codec` describes the
// input domain; requires at least 4 values so every phase has clients.
VarianceResult EstimateVariance(const std::vector<double>& values,
                                const FixedPointCodec& codec,
                                const VarianceConfig& config, Rng& rng);

}  // namespace bitpush

#endif  // BITPUSH_CORE_VARIANCE_ESTIMATION_H_
