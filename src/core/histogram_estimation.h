// Federated histogram (and quantile) estimation under the one-bit
// discipline.
//
// The deployment section argues that for heavy-tailed data "robust
// statistics are more appropriate, such as the median and percentiles"
// (Section 4.3), and Section 3.3 observes that bit-pushing's server-side
// data is "essentially a collection of binary histograms". This module
// closes the loop: the server assigns each client one histogram bucket
// (central randomness, QMC counts); the client reports the single bit
// 1{my value falls in that bucket}, optionally through randomized
// response. Bucket frequencies are unbiased means of those bits, and
// quantiles follow from the estimated CDF.

#ifndef BITPUSH_CORE_HISTOGRAM_ESTIMATION_H_
#define BITPUSH_CORE_HISTOGRAM_ESTIMATION_H_

#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace bitpush {

struct HistogramConfig {
  // Bucket boundaries: bucket i covers [edges[i], edges[i+1]); the last
  // bucket is closed on the right. Must be strictly increasing with at
  // least 2 entries.
  std::vector<double> edges;
  // Per-report randomized response budget; <= 0 disables.
  double epsilon = 0.0;
};

struct HistogramResult {
  // Estimated probability mass per bucket (unbiased; may be slightly
  // negative under DP noise).
  std::vector<double> fractions;
  // Reports received per bucket.
  std::vector<int64_t> counts;

  // CDF-based quantile (q in [0, 1]) with linear interpolation inside the
  // winning bucket. Negative noisy masses are clipped for this query.
  double Quantile(const std::vector<double>& edges, double q) const;
};

// Runs the one-bit histogram protocol over the population.
HistogramResult EstimateHistogram(const std::vector<double>& values,
                                  const HistogramConfig& config, Rng& rng);

// Equal-width bucket edges over [low, high].
std::vector<double> UniformEdges(double low, double high, int buckets);

}  // namespace bitpush

#endif  // BITPUSH_CORE_HISTOGRAM_ESTIMATION_H_
