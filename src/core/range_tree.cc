#include "core/range_tree.h"

#include <algorithm>
#include <cmath>

#include "ldp/randomized_response.h"
#include "rng/qmc.h"
#include "util/check.h"

namespace bitpush {
namespace {

// Flattened cell layout: cells of level L (1-based) start at
// offset(L) = 2^1 + ... + 2^{L-1} = 2^L - 2.
int64_t LevelOffset(int level) { return (int64_t{1} << level) - 2; }

}  // namespace

RangeTreeResult::RangeTreeResult(
    int levels, std::vector<std::vector<double>> fractions,
    std::vector<std::vector<int64_t>> counts)
    : levels_(levels),
      fractions_(std::move(fractions)),
      counts_(std::move(counts)) {
  BITPUSH_CHECK_EQ(fractions_.size(), static_cast<size_t>(levels_));
  BITPUSH_CHECK_EQ(counts_.size(), static_cast<size_t>(levels_));
}

double RangeTreeResult::NodeFraction(int level, uint64_t v) const {
  BITPUSH_CHECK_GE(level, 1);
  BITPUSH_CHECK_LE(level, levels_);
  const std::vector<double>& level_fractions =
      fractions_[static_cast<size_t>(level - 1)];
  BITPUSH_CHECK_LT(v, level_fractions.size());
  return level_fractions[v];
}

int64_t RangeTreeResult::NodeReports(int level, uint64_t v) const {
  BITPUSH_CHECK_GE(level, 1);
  BITPUSH_CHECK_LE(level, levels_);
  const std::vector<int64_t>& level_counts =
      counts_[static_cast<size_t>(level - 1)];
  BITPUSH_CHECK_LT(v, level_counts.size());
  return level_counts[v];
}

double RangeTreeResult::RangeFraction(uint64_t lo, uint64_t hi) const {
  const uint64_t domain = uint64_t{1} << levels_;
  BITPUSH_CHECK_LE(lo, hi);
  BITPUSH_CHECK_LT(hi, domain);
  double total = 0.0;
  uint64_t cursor = lo;
  while (cursor <= hi) {
    // Largest aligned dyadic block starting at `cursor` that fits in
    // [cursor, hi]. Blocks are at most half the domain (level >= 1, the
    // shallowest level the tree stores).
    int block_log = levels_ - 1;
    while (block_log > 0) {
      const uint64_t size = uint64_t{1} << block_log;
      if (cursor % size == 0 && cursor + size - 1 <= hi) break;
      --block_log;
    }
    const uint64_t size = uint64_t{1} << block_log;
    total += NodeFraction(levels_ - block_log, cursor / size);
    if (hi - cursor < size) break;  // guard overflow at domain edge
    cursor += size;
  }
  return total;
}

double RangeTreeResult::Quantile(double q) const {
  BITPUSH_CHECK_GE(q, 0.0);
  BITPUSH_CHECK_LE(q, 1.0);
  double target = q;
  uint64_t node = 0;
  for (int level = 1; level <= levels_; ++level) {
    const double left = std::max(0.0, NodeFraction(level, node * 2));
    const double right = std::max(0.0, NodeFraction(level, node * 2 + 1));
    const double mass = left + right;
    const double p_left = mass > 0.0 ? left / mass : 0.5;
    if (target <= p_left || p_left >= 1.0) {
      target = p_left > 0.0 ? target / p_left : 0.0;
      node = node * 2;
    } else {
      target = (target - p_left) / (1.0 - p_left);
      node = node * 2 + 1;
    }
    target = std::clamp(target, 0.0, 1.0);
  }
  // Interpolate within the leaf codeword.
  return static_cast<double>(node) + target;
}

RangeTreeResult EstimateRangeTree(const std::vector<uint64_t>& codewords,
                                  const RangeTreeConfig& config, Rng& rng) {
  BITPUSH_CHECK_GE(config.levels, 1);
  BITPUSH_CHECK_LE(config.levels, 20);
  BITPUSH_CHECK(!codewords.empty());
  const uint64_t domain = uint64_t{1} << config.levels;
  for (const uint64_t c : codewords) {
    BITPUSH_CHECK_LT(c, domain) << "codeword outside the tree domain";
  }
  const RandomizedResponse rr =
      RandomizedResponse::FromEpsilon(config.epsilon);

  // Uniform probability over levels, uniform over nodes within a level.
  const int64_t total_cells = LevelOffset(config.levels + 1);
  std::vector<double> cell_probabilities(
      static_cast<size_t>(total_cells), 0.0);
  for (int level = 1; level <= config.levels; ++level) {
    const int64_t nodes = int64_t{1} << level;
    const double per_cell =
        1.0 / (static_cast<double>(config.levels) *
               static_cast<double>(nodes));
    for (int64_t v = 0; v < nodes; ++v) {
      cell_probabilities[static_cast<size_t>(LevelOffset(level) + v)] =
          per_cell;
    }
  }

  const std::vector<int> assignment = AssignBitsCentral(
      static_cast<int64_t>(codewords.size()), cell_probabilities, rng);

  std::vector<std::vector<int64_t>> ones(
      static_cast<size_t>(config.levels));
  std::vector<std::vector<int64_t>> totals(
      static_cast<size_t>(config.levels));
  for (int level = 1; level <= config.levels; ++level) {
    ones[static_cast<size_t>(level - 1)].assign(
        static_cast<size_t>(int64_t{1} << level), 0);
    totals[static_cast<size_t>(level - 1)].assign(
        static_cast<size_t>(int64_t{1} << level), 0);
  }

  for (size_t i = 0; i < codewords.size(); ++i) {
    const int64_t cell = assignment[i];
    // Recover (level, node) from the flat cell index.
    int level = 1;
    while (LevelOffset(level + 1) <= cell) ++level;
    const uint64_t node = static_cast<uint64_t>(cell - LevelOffset(level));
    // Membership bit: does my value fall in this node's interval?
    const uint64_t member_node = codewords[i] >> (config.levels - level);
    const int bit = member_node == node ? 1 : 0;
    ones[static_cast<size_t>(level - 1)][node] += rr.Apply(bit, rng);
    ++totals[static_cast<size_t>(level - 1)][node];
  }

  std::vector<std::vector<double>> fractions(
      static_cast<size_t>(config.levels));
  for (int level = 1; level <= config.levels; ++level) {
    const size_t index = static_cast<size_t>(level - 1);
    fractions[index].assign(totals[index].size(), 0.0);
    for (size_t v = 0; v < totals[index].size(); ++v) {
      if (totals[index][v] == 0) continue;
      fractions[index][v] =
          rr.Unbias(static_cast<double>(ones[index][v]) /
                    static_cast<double>(totals[index][v]));
    }
  }
  return RangeTreeResult(config.levels, std::move(fractions),
                         std::move(totals));
}

}  // namespace bitpush
