// Privacy metering (Section 1.1): private data is metered at the *bit*
// level rather than the value level. The meter is the auditable ledger
// behind the paper's headline promise — "for each private value, at most
// one bit is used" — and behind platform-level disclosure caps ("limit
// subsequent bits per value and per client").
//
// Protocol code must obtain permission from the meter before a private bit
// leaves a client; a denied charge means the client skips the round.

#ifndef BITPUSH_CORE_PRIVACY_METER_H_
#define BITPUSH_CORE_PRIVACY_METER_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

namespace bitpush {

struct MeterPolicy {
  // Maximum bits that may ever be disclosed about one (client, value) pair.
  // 1 is the paper's worst-case guarantee.
  int64_t max_bits_per_value = 1;
  // Cap on total bits disclosed by one client across all values/rounds.
  int64_t max_bits_per_client = std::numeric_limits<int64_t>::max();
  // Cap on accumulated randomized-response epsilon per client (basic
  // composition across that client's reports).
  double max_epsilon_per_client = std::numeric_limits<double>::infinity();
};

class PrivacyMeter {
 public:
  explicit PrivacyMeter(MeterPolicy policy);

  // Attempts to charge one disclosed bit about `value_id` from `client_id`
  // at randomized-response cost `epsilon` (0 for a noiseless bit). Returns
  // true and records the charge if all caps allow it; returns false and
  // records nothing otherwise.
  bool TryChargeBit(int64_t client_id, int64_t value_id, double epsilon);

  // Total bits disclosed across all clients.
  int64_t total_bits() const { return total_bits_; }
  // Bits disclosed by one client so far.
  int64_t ClientBits(int64_t client_id) const;
  // Accumulated epsilon for one client.
  double ClientEpsilon(int64_t client_id) const;
  // Bits disclosed about one specific (client, value) pair.
  int64_t ValueBits(int64_t client_id, int64_t value_id) const;
  // Number of charges rejected by a cap.
  int64_t denied_charges() const { return denied_charges_; }

  const MeterPolicy& policy() const { return policy_; }

 private:
  struct ClientLedger {
    int64_t bits = 0;
    double epsilon = 0.0;
    std::unordered_map<int64_t, int64_t> bits_per_value;
  };

  MeterPolicy policy_;
  std::unordered_map<int64_t, ClientLedger> ledgers_;
  int64_t total_bits_ = 0;
  int64_t denied_charges_ = 0;
};

}  // namespace bitpush

#endif  // BITPUSH_CORE_PRIVACY_METER_H_
