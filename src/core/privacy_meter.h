// Privacy metering (Section 1.1): private data is metered at the *bit*
// level rather than the value level. The meter is the auditable ledger
// behind the paper's headline promise — "for each private value, at most
// one bit is used" — and behind platform-level disclosure caps ("limit
// subsequent bits per value and per client").
//
// Protocol code must obtain permission from the meter before a private bit
// leaves a client; a denied charge means the client skips the round.
//
// Durability: the ledger is exactly the state a coordinator must not lose
// across a crash — a recovering server that forgot a charge could let a
// second bit of the same value leave a client. The meter therefore supports
// (a) a Journal hook through which every charge attempt is write-ahead
// logged (and replayed exactly-once on recovery), and (b) canonical
// EncodeTo/DecodeFrom serialization for snapshots (src/persist/).

#ifndef BITPUSH_CORE_PRIVACY_METER_H_
#define BITPUSH_CORE_PRIVACY_METER_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

namespace bitpush {

struct MeterPolicy {
  // Maximum bits that may ever be disclosed about one (client, value) pair.
  // 1 is the paper's worst-case guarantee.
  int64_t max_bits_per_value = 1;
  // Cap on total bits disclosed by one client across all values/rounds.
  int64_t max_bits_per_client = std::numeric_limits<int64_t>::max();
  // Cap on accumulated randomized-response epsilon per client (basic
  // composition across that client's reports).
  double max_epsilon_per_client = std::numeric_limits<double>::infinity();

  friend bool operator==(const MeterPolicy&, const MeterPolicy&) = default;
};

class PrivacyMeter {
 public:
  // Write-ahead journal hook. A durable coordinator installs one so every
  // charge decision is persisted before it takes effect, and so a recovery
  // replay can serve the recorded outcomes back without double-charging.
  class Journal {
   public:
    virtual ~Journal() = default;

    // Consulted before a charge is evaluated. Returning an outcome means
    // this attempt was already journaled (and already applied to the
    // restored ledger): the meter returns it verbatim and mutates nothing.
    // Returning nullopt lets the charge proceed normally.
    virtual std::optional<bool> OnChargeAttempt(int64_t client_id,
                                                int64_t value_id,
                                                double epsilon) = 0;

    // Called with the decision of a live (non-replayed) charge attempt,
    // before the ledger mutation is applied — the write-ahead discipline:
    // a crash after this call but before the in-memory update is recovered
    // by replaying the record.
    virtual void OnCharge(int64_t client_id, int64_t value_id, double epsilon,
                          bool granted) = 0;
  };

  explicit PrivacyMeter(MeterPolicy policy);

  // Installs (or clears, with nullptr) the write-ahead journal hook.
  void set_journal(Journal* journal) { journal_ = journal; }

  // Recovery-replay suppression for the flight recorder. While set, charge
  // decisions mutate the ledger but emit no events and advance no
  // first-grant/first-denial latches — used by recovery for the replay
  // *prefix* (the in-flight query's charges), whose events are instead
  // emitted when the re-execution is served the journaled outcomes, i.e.
  // at the same logical position as in an uninterrupted run.
  void set_replay_quiet(bool quiet) { replay_quiet_ = quiet; }

  // Attempts to charge one disclosed bit about `value_id` from `client_id`
  // at randomized-response cost `epsilon` (0 for a noiseless bit). Returns
  // true and records the charge if all caps allow it; returns false and
  // records nothing otherwise. A negative or non-finite epsilon is invalid
  // and is always denied (it would corrupt the per-client composition
  // total).
  bool TryChargeBit(int64_t client_id, int64_t value_id, double epsilon);

  // Total bits disclosed across all clients.
  int64_t total_bits() const { return total_bits_; }
  // Total randomized-response epsilon granted across all clients (basic
  // composition; the cumulative privacy spend the observability layer
  // publishes).
  double total_epsilon() const { return total_epsilon_; }
  // Bits disclosed by one client so far.
  int64_t ClientBits(int64_t client_id) const;
  // Accumulated epsilon for one client.
  double ClientEpsilon(int64_t client_id) const;
  // Bits disclosed about one specific (client, value) pair.
  int64_t ValueBits(int64_t client_id, int64_t value_id) const;
  // Number of charges rejected by a cap (or by an invalid epsilon).
  int64_t denied_charges() const { return denied_charges_; }

  const MeterPolicy& policy() const { return policy_; }

  // Canonical serialization of policy + full ledger (clients and values in
  // sorted order, so equal meters encode to equal bytes). DecodeFrom
  // overwrites `*out` entirely; it returns false on truncated input or on
  // any internally inconsistent ledger (negative counts, per-value bits
  // that do not sum to the client total, non-finite epsilon, ...) without
  // touching `*out`.
  void EncodeTo(std::vector<uint8_t>* out) const;
  static bool DecodeFrom(const std::vector<uint8_t>& buffer, size_t* offset,
                         PrivacyMeter* out);

 private:
  struct ClientLedger {
    int64_t bits = 0;
    double epsilon = 0.0;
    std::unordered_map<int64_t, int64_t> bits_per_value;
  };

  // Publishes the ledger totals as obs gauges (core/privacy_meter.cc);
  // called after every ledger mutation and after DecodeFrom so live,
  // replayed, and snapshot-restored meters all report the same spend.
  void RefreshObsGauges() const;

  // Flight-recorder hook: emits a kMeterCharge / kMeterDenial event the
  // *first* time a value id sees a grant (resp. a denial). Latching per
  // (value, outcome) keeps the stable event stream bounded — a campaign
  // charging thousands of clients produces at most two meter events per
  // value — while still marking the privacy-relevant transitions: "bits
  // started flowing for this value" and "the budget wall was hit".
  void NoteChargeOutcome(int64_t value_id, bool granted);

  MeterPolicy policy_;
  std::unordered_map<int64_t, ClientLedger> ledgers_;
  int64_t total_bits_ = 0;
  double total_epsilon_ = 0.0;
  int64_t denied_charges_ = 0;
  Journal* journal_ = nullptr;
  bool replay_quiet_ = false;
  // Per-value announcement latches: bit 0 = grant announced, bit 1 =
  // denial announced. Not serialized — DecodeFrom conservatively marks
  // restored values fully announced (snapshot-restored history is outside
  // the stable-event replay contract anyway).
  std::unordered_map<int64_t, uint8_t> announced_;
};

}  // namespace bitpush

#endif  // BITPUSH_CORE_PRIVACY_METER_H_
