// Basic bit-pushing (Algorithm 1 of the paper).
//
// Each client holds a b-bit codeword. The server assigns each participating
// client one bit index (drawn with probability p_j, by default via the
// deterministic central/QMC assignment of rng/qmc.h), the client reports
// that single bit — optionally perturbed by randomized response for an
// epsilon-LDP guarantee — and the server recombines the per-bit means:
//
//   estimate = sum_j 2^j * mean_j,   mean_j unbiased for the true bit mean.
//
// The raw material collected by the server is a pair of binary histograms
// per bit index (count of reports, count of 1-reports); those integer
// counts are exactly what the secure-aggregation and distributed-DP layers
// operate on (Section 3.3).

#ifndef BITPUSH_CORE_BIT_PUSHING_H_
#define BITPUSH_CORE_BIT_PUSHING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ldp/randomized_response.h"
#include "rng/rng.h"

namespace bitpush {

// Per-bit report tallies: the "collection of binary histograms" of
// Section 3.3. Counts are raw (pre-unbiasing) so they compose with secure
// aggregation and count-level DP mechanisms.
class BitHistogram {
 public:
  // An empty histogram (0 bits); reassign before use.
  BitHistogram() = default;
  explicit BitHistogram(int bits);

  // Records one reported bit (0 or 1) for `bit_index`.
  void Add(int bit_index, int reported_bit);
  // Records `reports` reports for `bit_index`, `ones` of which were 1 —
  // the bulk form used by the columnar batch path and secure-aggregation
  // reconstruction (which learns only the pair (count, sum)). Requires
  // 0 <= ones <= reports.
  void Accumulate(int bit_index, int64_t reports, int64_t ones);
  // Pools another histogram (the "caching" combiner of Section 3.2).
  void Merge(const BitHistogram& other);

  // Rebuilds a histogram from raw per-bit counts (snapshot/journal
  // recovery). CHECK-fails on inconsistent inputs (mismatched lengths,
  // negative counts, ones > total) — callers decode through
  // DecodeBitHistogram, which validates first.
  static BitHistogram FromCounts(std::vector<int64_t> totals,
                                 std::vector<int64_t> ones);

  int bits() const { return static_cast<int>(total_.size()); }
  int64_t total(int bit_index) const;
  int64_t ones(int bit_index) const;
  const std::vector<int64_t>& totals() const { return total_; }
  const std::vector<int64_t>& one_counts() const { return ones_; }
  // Sum of report counts across bits (= number of disclosed bits).
  int64_t TotalReports() const;

  // Per-bit means, unbiased through `rr`. Bits with no reports get 0 and
  // are flagged in `*observed` if non-null. DP-unbiased means may fall
  // outside [0, 1]; they are returned unclamped (Figure 4b relies on that).
  std::vector<double> UnbiasedMeans(const RandomizedResponse& rr,
                                    std::vector<bool>* observed = nullptr)
      const;

 private:
  std::vector<int64_t> total_;
  std::vector<int64_t> ones_;
};

// Serialization of the raw tallies (vector lengths + counts), used by the
// durable-state layer (src/persist/). Decoding validates the counts
// (non-negative, ones <= total, matching lengths) and returns false on any
// violation without touching `*out`.
void EncodeBitHistogram(const BitHistogram& histogram,
                        std::vector<uint8_t>* out);
bool DecodeBitHistogram(const std::vector<uint8_t>& buffer, size_t* offset,
                        BitHistogram* out);

// Recombines bit means into a codeword-space estimate, optionally masking
// bits out (bit squashing): sum over kept j of 2^j * means[j].
double RecombineBitMeans(const std::vector<double>& means);
double RecombineBitMeans(const std::vector<double>& means,
                         const std::vector<bool>& keep);

// Client-side primitive: extracts bit `bit_index` of `codeword` and applies
// randomized response. This is the *only* place a private bit leaves a
// client, which is what makes the one-bit disclosure guarantee auditable.
int MakeBitReport(uint64_t codeword, int bit_index,
                  const RandomizedResponse& rr, Rng& rng);

struct BitPushingConfig {
  // Per-bit sampling probabilities; must be non-negative and sum to 1.
  // Its length defines the bit width b.
  std::vector<double> probabilities;
  // Per-report randomized response budget; <= 0 disables DP noise. When a
  // client sends multiple bits each report is separately perturbed at this
  // epsilon (the per-value budget is bits_per_client * epsilon under basic
  // composition).
  double epsilon = 0.0;
  // b_send of Corollary 3.2: number of (independently assigned) bits each
  // client reports. 1 preserves the headline one-bit guarantee.
  int bits_per_client = 1;
  // Central randomness (server-chosen bits, QMC counts) vs local randomness
  // (client-chosen bits). Central is the paper's default (Section 3.1).
  bool central_randomness = true;
};

struct BitPushingResult {
  // Estimate in codeword space (decode with the FixedPointCodec in use).
  double estimate_codeword = 0.0;
  // Unbiased per-bit means (unclamped).
  std::vector<double> bit_means;
  // Which bits received at least one report.
  std::vector<bool> observed;
  // Raw tallies, for pooling/caching and DP post-processing.
  BitHistogram histogram;
  // Plug-in evaluation of the Lemma 3.1 / Section 3.3 variance expression
  // at the estimated means (codeword space): sum_j 4^j (v_j + rr_var) /
  // (p_j * n), where v_j = clamp(m_j)(1 - clamp(m_j)).
  double variance_bound = 0.0;
};

// Runs Algorithm 1 over the whole `codewords` population.
BitPushingResult RunBasicBitPushing(const std::vector<uint64_t>& codewords,
                                    const BitPushingConfig& config, Rng& rng);

// Plug-in variance of a completed collection (used for both fresh and
// pooled histograms): sum_j 4^j (v_j + rr_var) / count_j over observed
// bits with positive estimated variance.
double PluginVariance(const BitHistogram& histogram,
                      const std::vector<double>& means,
                      const RandomizedResponse& rr);

}  // namespace bitpush

#endif  // BITPUSH_CORE_BIT_PUSHING_H_
