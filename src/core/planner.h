// Cohort planning: inverting the paper's variance expressions to answer
// the deployment questions of Section 4.3 — "how many clients do we need
// for this accuracy target?" and "what accuracy will this cohort give?".
//
// The plan evaluates the Lemma 3.1 plug-in variance (plus the Section 3.3
// randomized-response term when epsilon > 0) at a caller-supplied guess of
// the bit means; absent a guess, the worst case m_j = 1/2 is assumed.

#ifndef BITPUSH_CORE_PLANNER_H_
#define BITPUSH_CORE_PLANNER_H_

#include <cstdint>
#include <vector>

#include "core/fixed_point.h"

namespace bitpush {

struct CohortPlan {
  // Clients needed to hit the target (rounded up).
  int64_t required_clients = 0;
  // Predicted estimator standard deviation in codeword space for that
  // cohort.
  double predicted_stderr_codewords = 0.0;
  // Single-client variance V1 (variance = V1 / n).
  double unit_variance = 0.0;
};

// Single-client variance V1 of the bit-pushing estimator in codeword
// space: sum_j 4^j (m_j (1 - m_j) + rr_var) / p_j. `bit_means` may be
// empty (worst case 1/2 for every bit) and is clamped to [0, 1].
double UnitVariance(const std::vector<double>& probabilities,
                    const std::vector<double>& bit_means, double epsilon);

// Clients needed so that the estimator's standard error (codeword space)
// is at most `target_stderr`.
CohortPlan PlanForStdError(const std::vector<double>& probabilities,
                           const std::vector<double>& bit_means,
                           double epsilon, double target_stderr);

// Convenience: clients needed for a target NRMSE of the value-domain mean
// `expected_mean` (which must be nonzero and inside the codec range).
CohortPlan PlanForNrmse(const FixedPointCodec& codec,
                        const std::vector<double>& probabilities,
                        const std::vector<double>& bit_means, double epsilon,
                        double expected_mean, double target_nrmse);

// Predicted standard error for a given cohort size (codeword space).
double PredictedStdError(const std::vector<double>& probabilities,
                         const std::vector<double>& bit_means,
                         double epsilon, int64_t clients);

}  // namespace bitpush

#endif  // BITPUSH_CORE_PLANNER_H_
