#include "core/variance_estimation.h"

#include <algorithm>
#include <cmath>

#include "core/bit_probabilities.h"
#include "util/check.h"

namespace bitpush {
namespace {

// Runs the configured protocol on `values` under `codec` and returns the
// estimate decoded into the value domain.
double EstimateMeanPhase(const std::vector<double>& values,
                         const FixedPointCodec& codec,
                         const VarianceConfig& outer, Rng& rng) {
  const std::vector<uint64_t> codewords = codec.EncodeAll(values);
  if (!outer.adaptive) {
    BitPushingConfig config;
    config.probabilities =
        GeometricProbabilities(codec.bits(), outer.protocol.gamma);
    config.epsilon = outer.protocol.epsilon;
    config.bits_per_client = outer.protocol.bits_per_client;
    config.central_randomness = outer.protocol.central_randomness;
    return codec.Decode(
        RunBasicBitPushing(codewords, config, rng).estimate_codeword);
  }
  AdaptiveConfig config = outer.protocol;
  config.bits = codec.bits();
  const AdaptiveResult result =
      RunAdaptiveBitPushing(codewords, config, rng);
  return codec.Decode(result.estimate_codeword);
}

// Codec for squared deviations/values: domain [0, width^2], doubled bit
// budget capped at kMaxBits.
FixedPointCodec SquaredCodec(const FixedPointCodec& codec, double high) {
  const int bits = std::min(2 * codec.bits(), kMaxBits);
  return FixedPointCodec(bits, 0.0, std::max(high, 1.0));
}

}  // namespace

VarianceResult EstimateVariance(const std::vector<double>& values,
                                const FixedPointCodec& codec,
                                const VarianceConfig& config, Rng& rng) {
  BITPUSH_CHECK_GE(values.size(), 4u);
  BITPUSH_CHECK_GT(config.mean_fraction, 0.0);
  BITPUSH_CHECK_LT(config.mean_fraction, 1.0);

  const int64_t n = static_cast<int64_t>(values.size());
  int64_t n_mean = static_cast<int64_t>(
      std::llround(config.mean_fraction * static_cast<double>(n)));
  n_mean = std::clamp<int64_t>(n_mean, 2, n - 2);

  const std::vector<double> mean_cohort(values.begin(),
                                        values.begin() + n_mean);
  const std::vector<double> second_cohort(values.begin() + n_mean,
                                          values.end());

  VarianceResult result;
  result.mean_estimate =
      EstimateMeanPhase(mean_cohort, codec, config, rng);

  const double width = codec.high() - codec.low();
  switch (config.method) {
    case VarianceMethod::kCentered: {
      // Clients compute (x - mu_hat)^2 locally; deviations are bounded by
      // the input width.
      std::vector<double> deviations;
      deviations.reserve(second_cohort.size());
      for (const double x : second_cohort) {
        const double d = x - result.mean_estimate;
        deviations.push_back(d * d);
      }
      const FixedPointCodec sq_codec = SquaredCodec(codec, width * width);
      result.second_moment_estimate =
          EstimateMeanPhase(deviations, sq_codec, config, rng);
      result.variance = std::max(0.0, result.second_moment_estimate);
      break;
    }
    case VarianceMethod::kMoments: {
      std::vector<double> squares;
      squares.reserve(second_cohort.size());
      for (const double x : second_cohort) squares.push_back(x * x);
      const FixedPointCodec sq_codec =
          SquaredCodec(codec, codec.high() * codec.high());
      result.second_moment_estimate =
          EstimateMeanPhase(squares, sq_codec, config, rng);
      result.variance =
          std::max(0.0, result.second_moment_estimate -
                            result.mean_estimate * result.mean_estimate);
      break;
    }
  }
  return result;
}

}  // namespace bitpush
