#include "core/weighted.h"

#include "core/bit_pushing.h"
#include "ldp/randomized_response.h"
#include "rng/qmc.h"
#include "util/check.h"

namespace bitpush {

WeightedMeanResult EstimateWeightedMean(
    const std::vector<WeightedValue>& values, const FixedPointCodec& codec,
    const WeightedMeanConfig& config, Rng& rng) {
  const int bits = codec.bits();
  BITPUSH_CHECK_EQ(static_cast<int>(config.probabilities.size()), bits);
  BITPUSH_CHECK(!values.empty());
  const RandomizedResponse rr =
      RandomizedResponse::FromEpsilon(config.epsilon);
  const int64_t n = static_cast<int64_t>(values.size());

  const std::vector<int> assignment =
      config.central_randomness
          ? AssignBitsCentral(n, config.probabilities, rng)
          : AssignBitsLocal(n, config.probabilities, rng);

  WeightedMeanResult result;
  result.bit_means.assign(static_cast<size_t>(bits), 0.0);
  result.bit_weights.assign(static_cast<size_t>(bits), 0.0);
  std::vector<double> unbiased_weighted_ones(static_cast<size_t>(bits),
                                             0.0);
  std::vector<int64_t> group_sizes(static_cast<size_t>(bits), 0);
  double total_weight = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const WeightedValue& wv = values[static_cast<size_t>(i)];
    BITPUSH_CHECK_GT(wv.weight, 0.0) << "weights must be positive";
    total_weight += wv.weight;
    const int bit_index = assignment[static_cast<size_t>(i)];
    const int report =
        MakeBitReport(codec.Encode(wv.value), bit_index, rr, rng);
    // Per-report RR unbiasing keeps the weighted sum unbiased by
    // linearity.
    unbiased_weighted_ones[static_cast<size_t>(bit_index)] +=
        wv.weight * rr.Unbias(static_cast<double>(report));
    result.bit_weights[static_cast<size_t>(bit_index)] += wv.weight;
    ++group_sizes[static_cast<size_t>(bit_index)];
  }

  // Horvitz-Thompson: scale each group's weighted sum by the inverse
  // inclusion probability n/n_j, normalize by the known total weight.
  for (int j = 0; j < bits; ++j) {
    const size_t index = static_cast<size_t>(j);
    if (group_sizes[index] == 0) continue;
    const double inclusion = static_cast<double>(group_sizes[index]) /
                             static_cast<double>(n);
    result.bit_means[index] =
        unbiased_weighted_ones[index] / (inclusion * total_weight);
  }
  result.estimate = codec.Decode(RecombineBitMeans(result.bit_means));
  return result;
}

}  // namespace bitpush
