// Bit squashing (Section 3.3): under DP noise the means of unused
// high-order bits are no longer exactly zero, so bits whose estimated mean
// is below a threshold are assumed to be "capturing noise" and are squashed
// (given zero weight in the recombination and in the adaptive second round).
// Figure 4 shows this recovering almost two orders of magnitude of accuracy
// at bit depths far beyond b_max.

#ifndef BITPUSH_CORE_BIT_SQUASHING_H_
#define BITPUSH_CORE_BIT_SQUASHING_H_

#include <cstdint>
#include <vector>

#include "ldp/randomized_response.h"

namespace bitpush {

struct SquashPolicy {
  enum class Mode {
    kOff,            // keep every bit
    kAbsolute,       // squash bits with mean below `value` (Figure 4b's 0.05)
    kNoiseMultiple,  // squash bits below value * (per-bit DP noise stddev),
                     // the x-axis of Figure 4a
  };

  Mode mode = Mode::kOff;
  double value = 0.0;

  static SquashPolicy Off() { return SquashPolicy{Mode::kOff, 0.0}; }
  static SquashPolicy Absolute(double threshold) {
    return SquashPolicy{Mode::kAbsolute, threshold};
  }
  static SquashPolicy NoiseMultiple(double multiple) {
    return SquashPolicy{Mode::kNoiseMultiple, multiple};
  }

  bool enabled() const { return mode != Mode::kOff; }
};

// Returns the per-bit keep mask. A bit is squashed when its estimated mean
// (which may be negative under DP unbiasing) falls below the policy's
// threshold, or when it received no reports at all (counts[j] == 0) while
// squashing is enabled. For kNoiseMultiple the per-bit threshold is
// value * sqrt(rr.ReportVariance() / counts[j]): the standard deviation of
// the DP noise on that bit's estimated mean.
std::vector<bool> ComputeSquashMask(const std::vector<double>& means,
                                    const std::vector<int64_t>& counts,
                                    const RandomizedResponse& rr,
                                    const SquashPolicy& policy);

}  // namespace bitpush

#endif  // BITPUSH_CORE_BIT_SQUASHING_H_
