#include "core/bit_squashing.h"

#include <cmath>

#include "util/check.h"

namespace bitpush {

std::vector<bool> ComputeSquashMask(const std::vector<double>& means,
                                    const std::vector<int64_t>& counts,
                                    const RandomizedResponse& rr,
                                    const SquashPolicy& policy) {
  BITPUSH_CHECK_EQ(means.size(), counts.size());
  std::vector<bool> keep(means.size(), true);
  if (!policy.enabled()) return keep;

  for (size_t j = 0; j < means.size(); ++j) {
    if (counts[j] == 0) {
      keep[j] = false;  // no information: treat as noise
      continue;
    }
    double threshold = 0.0;
    switch (policy.mode) {
      case SquashPolicy::Mode::kAbsolute:
        threshold = policy.value;
        break;
      case SquashPolicy::Mode::kNoiseMultiple:
        threshold = policy.value * std::sqrt(rr.ReportVariance() /
                                             static_cast<double>(counts[j]));
        break;
      case SquashPolicy::Mode::kOff:
        break;
    }
    if (means[j] < threshold) keep[j] = false;
  }
  return keep;
}

}  // namespace bitpush
