// Bit-sampling probability policies (Section 3.1).
//
// The quality of bit-pushing depends on the probability p_j with which bit
// index j is sampled. The paper considers:
//   * uniform:   p_j = 1/b (suboptimal, shown for contrast),
//   * weighted:  p_j proportional to (2^j)^gamma (the principled geometric
//                family; gamma = 1 is the "pessimistic optimal"
//                p_j = 2^j / (2^b - 1) from Equation (7)),
//   * optimal:   p_j proportional to sqrt(beta_j) with
//                beta_j = 4^j m_j (1 - m_j) (Lemma 3.3), used by the
//                adaptive protocol's second round with an exponent alpha.

#ifndef BITPUSH_CORE_BIT_PROBABILITIES_H_
#define BITPUSH_CORE_BIT_PROBABILITIES_H_

#include <vector>

namespace bitpush {

// In-place L1 normalization. The entries must be non-negative with a
// positive sum.
void NormalizeProbabilities(std::vector<double>& probabilities);

// p_j = 1/bits for all j.
std::vector<double> UniformProbabilities(int bits);

// p_j proportional to (2^j)^gamma = 2^{gamma j}. gamma = 0 reduces to
// uniform; gamma = 1 is Equation (7)'s allocation.
std::vector<double> GeometricProbabilities(int bits, double gamma);

// Lemma 3.3: the variance-minimizing allocation given per-bit means,
// p_j proportional to sqrt(4^j m_j (1 - m_j)). Bits whose mean is exactly 0
// or 1 (no variance) get probability 0. If every bit is degenerate the
// allocation falls back to GeometricProbabilities(bits, 1).
std::vector<double> OptimalProbabilities(const std::vector<double>& bit_means);

// The adaptive second-round family (Algorithm 2, line 6):
// p_j proportional to (4^j m_j (1 - m_j))^alpha. Noisy means outside [0, 1]
// are clamped before use. alpha = 0.5 recovers OptimalProbabilities.
// Falls back to GeometricProbabilities(bits, 1) when all weights vanish.
std::vector<double> AdaptiveProbabilities(const std::vector<double>& bit_means,
                                          double alpha);

// AdaptiveProbabilities with a keep-mask: squashed bits (keep[j] == false)
// get zero probability before normalization. Returns `fallback` when every
// weight vanishes. Used by the adaptive second round (with squashing) and
// by the federated query pipeline.
std::vector<double> AdaptiveProbabilitiesMasked(
    const std::vector<double>& bit_means, const std::vector<bool>& keep,
    double alpha, const std::vector<double>& fallback);

// Plug-in evaluation of the Lemma 3.1 variance expression
//   (1/n) * sum_j 4^j m_j (1 - m_j) / p_j
// for a given allocation. Terms with m_j(1-m_j) == 0 contribute 0 even if
// p_j == 0; a zero p_j with positive bit variance yields +infinity.
double VarianceBound(const std::vector<double>& bit_means,
                     const std::vector<double>& probabilities, double n);

// The per-bit variance coefficients beta_j = 4^j m_j (1 - m_j).
std::vector<double> BetaCoefficients(const std::vector<double>& bit_means);

}  // namespace bitpush

#endif  // BITPUSH_CORE_BIT_PROBABILITIES_H_
