#include "core/streaming.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace bitpush {

StreamingMeanEstimator::StreamingMeanEstimator(
    const FixedPointCodec& codec, std::vector<double> probabilities,
    double epsilon)
    : codec_(codec),
      probabilities_(std::move(probabilities)),
      rr_(RandomizedResponse::FromEpsilon(epsilon)),
      histogram_(codec.bits()) {
  BITPUSH_CHECK_EQ(static_cast<int>(probabilities_.size()), codec_.bits());
}

void StreamingMeanEstimator::Observe(int bit_index, int reported_bit) {
  histogram_.Add(bit_index, reported_bit);
}

double StreamingMeanEstimator::Estimate() const {
  return codec_.Decode(RecombineBitMeans(histogram_.UnbiasedMeans(rr_)));
}

double StreamingMeanEstimator::StdError() const {
  if (!AllBitsObserved()) {
    return std::numeric_limits<double>::infinity();
  }
  const double codeword_variance =
      PluginVariance(histogram_, histogram_.UnbiasedMeans(rr_), rr_);
  return std::sqrt(codeword_variance) * codec_.resolution();
}

StreamingMeanEstimator::Interval
StreamingMeanEstimator::ConfidenceInterval95() const {
  const double estimate = Estimate();
  const double margin = 1.96 * StdError();
  return Interval{estimate - margin, estimate + margin};
}

bool StreamingMeanEstimator::AllBitsObserved(int64_t min_reports) const {
  for (int j = 0; j < histogram_.bits(); ++j) {
    if (probabilities_[static_cast<size_t>(j)] > 0.0 &&
        histogram_.total(j) < min_reports) {
      return false;
    }
  }
  return true;
}

}  // namespace bitpush
