// Multi-dimensional mean estimation under the one-bit discipline.
//
// Federated learning "computes sample means for gradient updates"
// (Section 1), and the paper notes the communication benefits of
// bit-pushing grow "in settings where each client ... reveals information
// about multiple features" (Section 5). Here each client holds a vector in
// [codec.low(), codec.high()]^d; the server assigns every client a single
// (dimension, bit) cell — dimensions uniformly, bits by the usual
// geometric/adaptive allocation — and the client reports that one bit,
// optionally through randomized response.
//
// Signed domains work through the codec's affine offset encoding (e.g.
// FixedPointCodec(b, -R, +R)); the recombined codeword mean decodes to a
// signed mean without any sign-bit special cases (cf. footnote 1 of the
// paper, which warns against *two's-complement* style sign bits).

#ifndef BITPUSH_CORE_VECTOR_AGGREGATION_H_
#define BITPUSH_CORE_VECTOR_AGGREGATION_H_

#include <cstdint>
#include <vector>

#include "core/bit_pushing.h"
#include "core/fixed_point.h"
#include "rng/rng.h"

namespace bitpush {

struct VectorAggregationConfig {
  // Per-report randomized response budget; <= 0 disables.
  double epsilon = 0.0;
  // Within-dimension bit allocation exponent (p_j proportional to
  // 2^{gamma j}).
  double gamma = 0.5;
  // Two-round adaptation: learn per-(dimension, bit) weights from a probe
  // round, exactly like scalar adaptive bit-pushing.
  bool adaptive = true;
  double delta = 1.0 / 3.0;  // probe fraction when adaptive
  double alpha = 0.5;        // round-2 exponent when adaptive
  bool central_randomness = true;
};

struct VectorAggregationResult {
  // Estimated mean per dimension, decoded into the value domain.
  std::vector<double> means;
  // Per-dimension bit histograms (pooled across rounds when adaptive).
  std::vector<BitHistogram> histograms;
  // Total private bits disclosed (== number of clients).
  int64_t bits_disclosed = 0;
};

// Estimates the per-dimension means of `rows` (each row one client's
// vector; all rows must share the same dimension d >= 1). Requires at
// least 2 clients. Every client contributes exactly one bit of one
// coordinate.
VectorAggregationResult EstimateVectorMean(
    const std::vector<std::vector<double>>& rows,
    const FixedPointCodec& codec, const VectorAggregationConfig& config,
    Rng& rng);

}  // namespace bitpush

#endif  // BITPUSH_CORE_VECTOR_AGGREGATION_H_
