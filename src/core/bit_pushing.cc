#include "core/bit_pushing.h"

#include <algorithm>
#include <cmath>

#include "batch/batch.h"
#include "core/fixed_point.h"
#include "obs/metrics.h"
#include "rng/qmc.h"
#include "util/bytes.h"
#include "util/check.h"

namespace bitpush {

BitHistogram::BitHistogram(int bits)
    : total_(static_cast<size_t>(bits), 0),
      ones_(static_cast<size_t>(bits), 0) {
  BITPUSH_CHECK_GE(bits, 1);
}

void BitHistogram::Add(int bit_index, int reported_bit) {
  BITPUSH_CHECK_GE(bit_index, 0);
  BITPUSH_CHECK_LT(bit_index, bits());
  BITPUSH_CHECK(reported_bit == 0 || reported_bit == 1);
  ++total_[static_cast<size_t>(bit_index)];
  ones_[static_cast<size_t>(bit_index)] += reported_bit;
}

void BitHistogram::Accumulate(int bit_index, int64_t reports, int64_t ones) {
  BITPUSH_CHECK_GE(bit_index, 0);
  BITPUSH_CHECK_LT(bit_index, bits());
  BITPUSH_CHECK_GE(ones, 0);
  BITPUSH_CHECK_GE(reports, ones);
  total_[static_cast<size_t>(bit_index)] += reports;
  ones_[static_cast<size_t>(bit_index)] += ones;
}

void BitHistogram::Merge(const BitHistogram& other) {
  BITPUSH_CHECK_EQ(bits(), other.bits());
  for (size_t j = 0; j < total_.size(); ++j) {
    total_[j] += other.total_[j];
    ones_[j] += other.ones_[j];
  }
}

BitHistogram BitHistogram::FromCounts(std::vector<int64_t> totals,
                                      std::vector<int64_t> ones) {
  BITPUSH_CHECK_EQ(totals.size(), ones.size());
  for (size_t j = 0; j < totals.size(); ++j) {
    BITPUSH_CHECK_GE(ones[j], 0);
    BITPUSH_CHECK_GE(totals[j], ones[j]);
  }
  BitHistogram histogram;
  histogram.total_ = std::move(totals);
  histogram.ones_ = std::move(ones);
  return histogram;
}

int64_t BitHistogram::total(int bit_index) const {
  return total_[static_cast<size_t>(bit_index)];
}

int64_t BitHistogram::ones(int bit_index) const {
  return ones_[static_cast<size_t>(bit_index)];
}

int64_t BitHistogram::TotalReports() const {
  int64_t sum = 0;
  for (const int64_t t : total_) sum += t;
  return sum;
}

void EncodeBitHistogram(const BitHistogram& histogram,
                        std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutInt64Vector(histogram.totals(), out);
  bytes::PutInt64Vector(histogram.one_counts(), out);
}

bool DecodeBitHistogram(const std::vector<uint8_t>& buffer, size_t* offset,
                        BitHistogram* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = *offset;
  std::vector<int64_t> totals;
  std::vector<int64_t> ones;
  if (!bytes::GetInt64Vector(buffer, &cursor, &totals) ||
      !bytes::GetInt64Vector(buffer, &cursor, &ones)) {
    return false;
  }
  if (totals.size() != ones.size()) return false;
  for (size_t j = 0; j < totals.size(); ++j) {
    if (ones[j] < 0 || totals[j] < ones[j]) return false;
  }
  *out = BitHistogram::FromCounts(std::move(totals), std::move(ones));
  *offset = cursor;
  return true;
}

std::vector<double> BitHistogram::UnbiasedMeans(
    const RandomizedResponse& rr, std::vector<bool>* observed) const {
  std::vector<double> means(total_.size(), 0.0);
  if (observed != nullptr) observed->assign(total_.size(), false);
  for (size_t j = 0; j < total_.size(); ++j) {
    if (total_[j] == 0) continue;
    if (observed != nullptr) (*observed)[j] = true;
    const double raw_mean = static_cast<double>(ones_[j]) /
                            static_cast<double>(total_[j]);
    means[j] = rr.Unbias(raw_mean);
  }
  return means;
}

double RecombineBitMeans(const std::vector<double>& means) {
  double estimate = 0.0;
  for (size_t j = 0; j < means.size(); ++j) {
    estimate += std::exp2(static_cast<double>(j)) * means[j];
  }
  return estimate;
}

double RecombineBitMeans(const std::vector<double>& means,
                         const std::vector<bool>& keep) {
  BITPUSH_CHECK_EQ(means.size(), keep.size());
  double estimate = 0.0;
  for (size_t j = 0; j < means.size(); ++j) {
    if (keep[j]) estimate += std::exp2(static_cast<double>(j)) * means[j];
  }
  return estimate;
}

int MakeBitReport(uint64_t codeword, int bit_index,
                  const RandomizedResponse& rr, Rng& rng) {
  return rr.Apply(FixedPointCodec::Bit(codeword, bit_index), rng);
}

double PluginVariance(const BitHistogram& histogram,
                      const std::vector<double>& means,
                      const RandomizedResponse& rr) {
  BITPUSH_CHECK_EQ(static_cast<size_t>(histogram.bits()), means.size());
  const double rr_var = rr.ReportVariance();
  double variance = 0.0;
  for (int j = 0; j < histogram.bits(); ++j) {
    const int64_t count = histogram.total(j);
    if (count == 0) continue;
    const double m = std::clamp(means[static_cast<size_t>(j)], 0.0, 1.0);
    const double per_report = m * (1.0 - m) + rr_var;
    variance += std::exp2(2.0 * j) * per_report / static_cast<double>(count);
  }
  return variance;
}

BitPushingResult RunBasicBitPushing(const std::vector<uint64_t>& codewords,
                                    const BitPushingConfig& config,
                                    Rng& rng) {
  const int bits = static_cast<int>(config.probabilities.size());
  BITPUSH_CHECK_GE(bits, 1);
  BITPUSH_CHECK_GE(config.bits_per_client, 1);
  BITPUSH_CHECK(!codewords.empty());

  const RandomizedResponse rr =
      RandomizedResponse::FromEpsilon(config.epsilon);
  const int64_t n = static_cast<int64_t>(codewords.size());

  static obs::Histogram* aggregation_seconds =
      obs::Registry::Default().GetHistogram(
          "bitpush_bit_aggregation_seconds",
          "Wall-clock time of one RunBasicBitPushing aggregation.",
          obs::LatencySecondsBounds(), obs::Determinism::kVolatile);
  const obs::ScopedTimer timer(aggregation_seconds);

  BitPushingResult result;
  result.histogram = BitHistogram(bits);
  // Each pass assigns every client one bit; Corollary 3.2's b_send > 1 is
  // realized as independent passes. Each pass runs columnarly: split the
  // codewords into bit planes plus selection masks, flip the assigned bits
  // with one bulk Bernoulli mask, and tally by popcount (src/batch/).
  // PerturbBatch draws its flip mask slot-by-slot from the same stream the
  // per-report rr.Apply path consumed, so the resulting histogram is
  // bit-identical to the pre-columnar loop's — with or without DP.
  for (int pass = 0; pass < config.bits_per_client; ++pass) {
    const std::vector<int> assignment =
        config.central_randomness
            ? AssignBitsCentral(n, config.probabilities, rng)
            : AssignBitsLocal(n, config.probabilities, rng);
    ReportBatch batch = BuildReportBatch(codewords, assignment, bits);
    PerturbBatch(&batch, rr, rng);
    AggregateBatch(batch).AccumulateInto(&result.histogram);
  }

  result.bit_means = result.histogram.UnbiasedMeans(rr, &result.observed);
  result.estimate_codeword = RecombineBitMeans(result.bit_means);
  result.variance_bound = PluginVariance(result.histogram, result.bit_means,
                                         rr);
  return result;
}

}  // namespace bitpush
