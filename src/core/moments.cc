#include "core/moments.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace bitpush {
namespace {

// Runs the adaptive protocol on derived values under `codec` and decodes.
double PushMean(const std::vector<double>& values,
                const FixedPointCodec& codec, const MomentConfig& config,
                Rng& rng) {
  AdaptiveConfig protocol = config.protocol;
  protocol.bits = codec.bits();
  return codec.Decode(
      RunAdaptiveBitPushing(codec.EncodeAll(values), protocol, rng)
          .estimate_codeword);
}

// Codec for the k-th power of a non-negative domain bounded by `high`.
FixedPointCodec PowerCodec(const FixedPointCodec& codec, int k,
                           double high) {
  const int bits = std::min(k * codec.bits(), kMaxBits);
  return FixedPointCodec(bits, 0.0, std::max(std::pow(high, k), 1.0));
}

double IntPow(double base, int k) {
  double result = 1.0;
  for (int i = 0; i < k; ++i) result *= base;
  return result;
}

}  // namespace

double EstimateRawMoment(const std::vector<double>& values,
                         const FixedPointCodec& codec, int k,
                         const MomentConfig& config, Rng& rng) {
  BITPUSH_CHECK_GE(k, 1);
  BITPUSH_CHECK_GE(values.size(), 2u);
  std::vector<double> powers;
  powers.reserve(values.size());
  for (const double x : values) {
    powers.push_back(IntPow(std::clamp(x, codec.low(), codec.high()), k));
  }
  return PushMean(powers, PowerCodec(codec, k, codec.high()), config, rng);
}

double EstimateCentralMoment(const std::vector<double>& values,
                             const FixedPointCodec& codec, int k,
                             const MomentConfig& config, Rng& rng) {
  BITPUSH_CHECK_GE(k, 1);
  BITPUSH_CHECK_GE(values.size(), 6u);
  BITPUSH_CHECK_GT(config.mean_fraction, 0.0);
  BITPUSH_CHECK_LT(config.mean_fraction, 1.0);

  const int64_t n = static_cast<int64_t>(values.size());
  int64_t n_mean = static_cast<int64_t>(
      std::llround(config.mean_fraction * static_cast<double>(n)));
  n_mean = std::clamp<int64_t>(n_mean, 2, n - 4);

  const std::vector<double> mean_cohort(values.begin(),
                                        values.begin() + n_mean);
  const double mu = PushMean(mean_cohort, codec, config, rng);

  const double width = codec.high() - codec.low();
  const FixedPointCodec moment_codec = PowerCodec(codec, k, width);

  if (k % 2 == 0) {
    std::vector<double> derived;
    derived.reserve(static_cast<size_t>(n - n_mean));
    for (int64_t i = n_mean; i < n; ++i) {
      derived.push_back(IntPow(values[static_cast<size_t>(i)] - mu, k));
    }
    return PushMean(derived, moment_codec, config, rng);
  }

  // Odd k: signed expansions are not linear in the sign bit, so the
  // positive and negative parts are pushed as two separate non-negative
  // aggregations over disjoint halves and recombined. Each half estimates
  // the population mean of its one-sided magnitude.
  std::vector<double> positive;
  std::vector<double> negative;
  const int64_t n_rest = n - n_mean;
  const int64_t split = n_mean + n_rest / 2;
  for (int64_t i = n_mean; i < n; ++i) {
    const double d = values[static_cast<size_t>(i)] - mu;
    if (i < split) {
      positive.push_back(d > 0 ? IntPow(d, k) : 0.0);
    } else {
      negative.push_back(d < 0 ? IntPow(-d, k) : 0.0);
    }
  }
  const double pos = PushMean(positive, moment_codec, config, rng);
  const double neg = PushMean(negative, moment_codec, config, rng);
  return pos - neg;
}

namespace {

// Shared scaffolding for the standardized shape statistics: estimates the
// second and k-th central moments on disjoint thirds of the cohort and
// returns m_k / sigma^k. Returns 0 for (near-)degenerate populations.
double StandardizedCentralMoment(const std::vector<double>& values,
                                 const FixedPointCodec& codec, int k,
                                 const MomentConfig& config, Rng& rng) {
  BITPUSH_CHECK_GE(values.size(), 18u);
  const int64_t n = static_cast<int64_t>(values.size());
  const int64_t third = n / 3;
  // Phase A estimates sigma^2, phases B (mean) + C (deviation powers) run
  // inside EstimateCentralMoment on the remaining clients.
  const std::vector<double> variance_cohort(values.begin(),
                                            values.begin() + third);
  const std::vector<double> moment_cohort(values.begin() + third,
                                          values.end());
  const double m2 = EstimateCentralMoment(variance_cohort, codec, 2,
                                          config, rng);
  const double sigma = std::sqrt(std::max(0.0, m2));
  if (sigma < codec.resolution() / 2.0) return 0.0;  // degenerate
  const double mk =
      EstimateCentralMoment(moment_cohort, codec, k, config, rng);
  return mk / IntPow(sigma, k);
}

}  // namespace

double EstimateSkewness(const std::vector<double>& values,
                        const FixedPointCodec& codec,
                        const MomentConfig& config, Rng& rng) {
  return StandardizedCentralMoment(values, codec, 3, config, rng);
}

double EstimateKurtosis(const std::vector<double>& values,
                        const FixedPointCodec& codec,
                        const MomentConfig& config, Rng& rng) {
  return StandardizedCentralMoment(values, codec, 4, config, rng);
}

double EstimateGeometricMean(const std::vector<double>& values,
                             const FixedPointCodec& codec,
                             double positive_floor, int log_bits,
                             const MomentConfig& config, Rng& rng) {
  return std::exp(EstimateLogProduct(values, codec, positive_floor,
                                     log_bits, config, rng) /
                  static_cast<double>(values.size()));
}

double EstimateLogProduct(const std::vector<double>& values,
                          const FixedPointCodec& codec,
                          double positive_floor, int log_bits,
                          const MomentConfig& config, Rng& rng) {
  BITPUSH_CHECK_GE(values.size(), 2u);
  BITPUSH_CHECK_GT(positive_floor, 0.0);
  BITPUSH_CHECK_LT(positive_floor, codec.high());
  std::vector<double> logs;
  logs.reserve(values.size());
  for (const double x : values) {
    logs.push_back(std::log(std::clamp(x, positive_floor, codec.high())));
  }
  const FixedPointCodec log_codec(log_bits, std::log(positive_floor),
                                  std::log(codec.high()));
  const double mean_log = PushMean(logs, log_codec, config, rng);
  return mean_log * static_cast<double>(values.size());
}

}  // namespace bitpush
