#include "core/histogram_estimation.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "kernels/kernels.h"
#include "ldp/randomized_response.h"
#include "rng/qmc.h"
#include "util/check.h"

namespace bitpush {
namespace {

// Index of the bucket containing x (values outside the range clamp to the
// first/last bucket).
size_t BucketOf(const std::vector<double>& edges, double x) {
  const auto it = std::upper_bound(edges.begin(), edges.end(), x);
  const ptrdiff_t raw = it - edges.begin() - 1;
  const ptrdiff_t last = static_cast<ptrdiff_t>(edges.size()) - 2;
  return static_cast<size_t>(std::clamp<ptrdiff_t>(raw, 0, last));
}

}  // namespace

HistogramResult EstimateHistogram(const std::vector<double>& values,
                                  const HistogramConfig& config, Rng& rng) {
  BITPUSH_CHECK_GE(config.edges.size(), 2u);
  for (size_t i = 1; i < config.edges.size(); ++i) {
    BITPUSH_CHECK_LT(config.edges[i - 1], config.edges[i])
        << "edges must be strictly increasing";
  }
  BITPUSH_CHECK(!values.empty());

  const size_t buckets = config.edges.size() - 1;
  const RandomizedResponse rr =
      RandomizedResponse::FromEpsilon(config.epsilon);

  // Server-side central assignment: every bucket is probed by an equal
  // share of the cohort.
  const std::vector<double> probabilities(
      buckets, 1.0 / static_cast<double>(buckets));
  const std::vector<int> assignment = AssignBitsCentral(
      static_cast<int64_t>(values.size()), probabilities, rng);

  // Columnar tally (src/kernels/): pack "value i falls in its probed
  // bucket" into a membership bit vector, scatter per-bucket selection
  // masks, perturb the membership bits in bulk, and count with the shared
  // popcount kernel instead of a hand-rolled per-value loop.
  const int64_t n = static_cast<int64_t>(values.size());
  const int64_t stride = kernels::WordsForBits(n);
  std::vector<uint64_t> membership(static_cast<size_t>(stride), 0);
  std::vector<uint64_t> selection(buckets * static_cast<size_t>(stride), 0);
  for (int64_t i = 0; i < n; ++i) {
    const size_t bucket = static_cast<size_t>(assignment[i]);
    const int64_t word = i / 64;
    const uint64_t mask = uint64_t{1} << (i % 64);
    selection[bucket * static_cast<size_t>(stride) + word] |= mask;
    if (BucketOf(config.edges, values[i]) == bucket) {
      membership[word] |= mask;
    }
  }
  rr.ApplyToWords(membership.data(), /*gate=*/nullptr, n, rng);
  const kernels::KernelOps& ops = kernels::ActiveKernel();
  std::vector<int64_t> ones(buckets, 0);
  std::vector<int64_t> totals(buckets, 0);
  for (size_t b = 0; b < buckets; ++b) {
    const uint64_t* sel = selection.data() + b * static_cast<size_t>(stride);
    totals[b] = ops.popcount_words(sel, stride);
    ones[b] = ops.popcount_and_words(membership.data(), sel, stride);
  }

  HistogramResult result;
  result.counts = totals;
  result.fractions.assign(buckets, 0.0);
  for (size_t b = 0; b < buckets; ++b) {
    if (totals[b] == 0) continue;
    result.fractions[b] = rr.Unbias(static_cast<double>(ones[b]) /
                                    static_cast<double>(totals[b]));
  }
  return result;
}

double HistogramResult::Quantile(const std::vector<double>& edges,
                                 double q) const {
  BITPUSH_CHECK_EQ(edges.size(), fractions.size() + 1);
  BITPUSH_CHECK_GE(q, 0.0);
  BITPUSH_CHECK_LE(q, 1.0);
  // Clip DP-noise negatives and renormalize for the CDF walk.
  std::vector<double> mass(fractions.size());
  double total = 0.0;
  for (size_t b = 0; b < fractions.size(); ++b) {
    mass[b] = std::max(0.0, fractions[b]);
    total += mass[b];
  }
  BITPUSH_CHECK_GT(total, 0.0) << "histogram carries no mass";
  double target = q * total;
  for (size_t b = 0; b < mass.size(); ++b) {
    if (target <= mass[b] || b + 1 == mass.size()) {
      const double inside = mass[b] > 0.0 ? target / mass[b] : 0.0;
      return edges[b] + std::clamp(inside, 0.0, 1.0) *
                            (edges[b + 1] - edges[b]);
    }
    target -= mass[b];
  }
  return edges.back();
}

std::vector<double> UniformEdges(double low, double high, int buckets) {
  BITPUSH_CHECK_LT(low, high);
  BITPUSH_CHECK_GE(buckets, 1);
  std::vector<double> edges;
  edges.reserve(static_cast<size_t>(buckets) + 1);
  for (int b = 0; b <= buckets; ++b) {
    edges.push_back(low + (high - low) * static_cast<double>(b) /
                              static_cast<double>(buckets));
  }
  return edges;
}

}  // namespace bitpush
