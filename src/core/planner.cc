#include "core/planner.h"

#include <algorithm>
#include <cmath>

#include "ldp/randomized_response.h"
#include "util/check.h"

namespace bitpush {

double UnitVariance(const std::vector<double>& probabilities,
                    const std::vector<double>& bit_means, double epsilon) {
  BITPUSH_CHECK(!probabilities.empty());
  BITPUSH_CHECK(bit_means.empty() ||
                bit_means.size() == probabilities.size());
  const double rr_var =
      RandomizedResponse::FromEpsilon(epsilon).ReportVariance();
  double v1 = 0.0;
  for (size_t j = 0; j < probabilities.size(); ++j) {
    const double m =
        bit_means.empty() ? 0.5 : std::clamp(bit_means[j], 0.0, 1.0);
    const double per_report = m * (1.0 - m) + rr_var;
    if (per_report == 0.0) continue;
    BITPUSH_CHECK_GT(probabilities[j], 0.0)
        << "bit " << j << " has variance but zero sampling probability";
    v1 += std::exp2(2.0 * static_cast<double>(j)) * per_report /
          probabilities[j];
  }
  return v1;
}

CohortPlan PlanForStdError(const std::vector<double>& probabilities,
                           const std::vector<double>& bit_means,
                           double epsilon, double target_stderr) {
  BITPUSH_CHECK_GT(target_stderr, 0.0);
  CohortPlan plan;
  plan.unit_variance = UnitVariance(probabilities, bit_means, epsilon);
  plan.required_clients = static_cast<int64_t>(
      std::ceil(plan.unit_variance / (target_stderr * target_stderr)));
  plan.required_clients = std::max<int64_t>(plan.required_clients, 1);
  plan.predicted_stderr_codewords = std::sqrt(
      plan.unit_variance / static_cast<double>(plan.required_clients));
  return plan;
}

CohortPlan PlanForNrmse(const FixedPointCodec& codec,
                        const std::vector<double>& probabilities,
                        const std::vector<double>& bit_means, double epsilon,
                        double expected_mean, double target_nrmse) {
  BITPUSH_CHECK_EQ(static_cast<int>(probabilities.size()), codec.bits());
  BITPUSH_CHECK_GT(target_nrmse, 0.0);
  BITPUSH_CHECK_NE(expected_mean, 0.0);
  // Convert the value-domain NRMSE target into a codeword-space standard
  // error: the decode map is affine with slope resolution().
  const double target_value_stderr =
      target_nrmse * std::abs(expected_mean);
  const double target_codeword_stderr =
      target_value_stderr / codec.resolution();
  return PlanForStdError(probabilities, bit_means, epsilon,
                         target_codeword_stderr);
}

double PredictedStdError(const std::vector<double>& probabilities,
                         const std::vector<double>& bit_means,
                         double epsilon, int64_t clients) {
  BITPUSH_CHECK_GT(clients, 0);
  return std::sqrt(UnitVariance(probabilities, bit_means, epsilon) /
                   static_cast<double>(clients));
}

}  // namespace bitpush
