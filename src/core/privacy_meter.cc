#include "core/privacy_meter.h"

#include <algorithm>
#include <cmath>

#include "obs/events.h"
#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/check.h"

namespace bitpush {

void PrivacyMeter::RefreshObsGauges() const {
  if (!obs::Enabled()) return;
  obs::Registry& registry = obs::Registry::Default();
  static obs::Gauge* bits = registry.GetGauge(
      "bitpush_meter_bits_spent", "Total private bits disclosed.",
      obs::Determinism::kStable);
  static obs::Gauge* epsilon = registry.GetGauge(
      "bitpush_meter_epsilon_spent",
      "Cumulative randomized-response epsilon granted (basic composition).",
      obs::Determinism::kStable);
  static obs::Gauge* denied = registry.GetGauge(
      "bitpush_meter_denied_charges",
      "Charges denied by a cap or an invalid epsilon.",
      obs::Determinism::kStable);
  bits->Set(static_cast<double>(total_bits_));
  epsilon->Set(total_epsilon_);
  denied->Set(static_cast<double>(denied_charges_));
}

void PrivacyMeter::NoteChargeOutcome(int64_t value_id, bool granted) {
  if (!obs::Enabled()) return;
  uint8_t& mask = announced_[value_id];
  const uint8_t bit = granted ? 1 : 2;
  if ((mask & bit) != 0) return;
  mask |= bit;
  // Deliberately no ledger totals in the detail: at the moment a recovered
  // run re-serves a journaled prefix charge, the ledger already holds the
  // whole prefix (ApplyJournal applied it), so totals here would not be
  // replay-invariant. The (value, outcome) transition itself is.
  obs::EventArgs args;
  args.detail = "value=" + std::to_string(value_id) +
                (granted ? " first grant" : " first denial");
  obs::EmitEvent(granted ? obs::EventType::kMeterCharge
                         : obs::EventType::kMeterDenial,
                 obs::Determinism::kStable, std::move(args));
}

PrivacyMeter::PrivacyMeter(MeterPolicy policy) : policy_(policy) {
  BITPUSH_CHECK_GE(policy_.max_bits_per_value, 1);
  BITPUSH_CHECK_GE(policy_.max_bits_per_client, 1);
  BITPUSH_CHECK_GT(policy_.max_epsilon_per_client, 0.0);
}

bool PrivacyMeter::TryChargeBit(int64_t client_id, int64_t value_id,
                                double epsilon) {
  // An invalid epsilon is denied rather than CHECKed: the value can
  // originate from an untrusted request, and accepting a non-finite
  // epsilon (infinity passes a >= 0 check) would permanently corrupt the
  // per-client composition total. The denial still flows through the
  // journal hooks below like a cap denial, so a recovered ledger counts it
  // exactly once and stays byte-identical to an uninterrupted run.
  const bool valid_epsilon = std::isfinite(epsilon) && epsilon >= 0.0;
  if (journal_ != nullptr) {
    // Recovery replay: the decision was journaled before the crash and the
    // restored ledger already reflects it — return it without re-charging.
    const std::optional<bool> replayed =
        journal_->OnChargeAttempt(client_id, value_id, epsilon);
    if (replayed.has_value()) {
      // Re-served prefix charge: the ledger already reflects it, but its
      // flight-recorder announcement was suppressed during replay — emit it
      // here, at the same logical position a live run would have.
      NoteChargeOutcome(value_id, *replayed);
      return *replayed;
    }
  }
  ClientLedger* ledger = nullptr;
  bool granted = false;
  if (valid_epsilon) {
    ledger = &ledgers_[client_id];
    const int64_t value_bits = ledger->bits_per_value[value_id];
    granted = value_bits + 1 <= policy_.max_bits_per_value &&
              ledger->bits + 1 <= policy_.max_bits_per_client &&
              ledger->epsilon + epsilon <= policy_.max_epsilon_per_client;
  }
  if (journal_ != nullptr) {
    // Write-ahead: persist the decision before applying it, so a crash
    // between the two is recovered by replaying the record (exactly once).
    journal_->OnCharge(client_id, value_id, epsilon, granted);
  }
  if (!granted) {
    ++denied_charges_;
    RefreshObsGauges();
    if (!replay_quiet_) NoteChargeOutcome(value_id, false);
    return false;
  }
  ++ledger->bits_per_value[value_id];
  ++ledger->bits;
  ledger->epsilon += epsilon;
  ++total_bits_;
  total_epsilon_ += epsilon;
  RefreshObsGauges();
  if (!replay_quiet_) NoteChargeOutcome(value_id, true);
  return true;
}

int64_t PrivacyMeter::ClientBits(int64_t client_id) const {
  const auto it = ledgers_.find(client_id);
  return it == ledgers_.end() ? 0 : it->second.bits;
}

double PrivacyMeter::ClientEpsilon(int64_t client_id) const {
  const auto it = ledgers_.find(client_id);
  return it == ledgers_.end() ? 0.0 : it->second.epsilon;
}

int64_t PrivacyMeter::ValueBits(int64_t client_id, int64_t value_id) const {
  const auto it = ledgers_.find(client_id);
  if (it == ledgers_.end()) return 0;
  const auto vit = it->second.bits_per_value.find(value_id);
  return vit == it->second.bits_per_value.end() ? 0 : vit->second;
}

void PrivacyMeter::EncodeTo(std::vector<uint8_t>* out) const {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutInt64(policy_.max_bits_per_value, out);
  bytes::PutInt64(policy_.max_bits_per_client, out);
  bytes::PutDouble(policy_.max_epsilon_per_client, out);
  bytes::PutInt64(total_bits_, out);
  bytes::PutInt64(denied_charges_, out);

  // Canonical form: sorted ids, zero entries omitted. Denied attempts leave
  // behind zero-count map entries in memory; dropping them here makes
  // "same ledger" mean "same bytes" regardless of how the state was reached
  // (live run, journal replay, or snapshot restore).
  std::vector<int64_t> client_ids;
  client_ids.reserve(ledgers_.size());
  for (const auto& [client_id, ledger] : ledgers_) {
    if (ledger.bits > 0 || ledger.epsilon > 0.0) client_ids.push_back(client_id);
  }
  std::sort(client_ids.begin(), client_ids.end());
  bytes::PutUint32(static_cast<uint32_t>(client_ids.size()), out);
  for (const int64_t client_id : client_ids) {
    const ClientLedger& ledger = ledgers_.at(client_id);
    bytes::PutInt64(client_id, out);
    bytes::PutInt64(ledger.bits, out);
    bytes::PutDouble(ledger.epsilon, out);
    std::vector<int64_t> value_ids;
    value_ids.reserve(ledger.bits_per_value.size());
    for (const auto& [value_id, bits] : ledger.bits_per_value) {
      if (bits > 0) value_ids.push_back(value_id);
    }
    std::sort(value_ids.begin(), value_ids.end());
    bytes::PutUint32(static_cast<uint32_t>(value_ids.size()), out);
    for (const int64_t value_id : value_ids) {
      bytes::PutInt64(value_id, out);
      bytes::PutInt64(ledger.bits_per_value.at(value_id), out);
    }
  }
}

bool PrivacyMeter::DecodeFrom(const std::vector<uint8_t>& buffer,
                              size_t* offset, PrivacyMeter* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = *offset;
  MeterPolicy policy;
  int64_t total_bits = 0;
  int64_t denied_charges = 0;
  uint32_t client_count = 0;
  if (!bytes::GetInt64(buffer, &cursor, &policy.max_bits_per_value) ||
      !bytes::GetInt64(buffer, &cursor, &policy.max_bits_per_client) ||
      !bytes::GetDouble(buffer, &cursor, &policy.max_epsilon_per_client) ||
      !bytes::GetInt64(buffer, &cursor, &total_bits) ||
      !bytes::GetInt64(buffer, &cursor, &denied_charges) ||
      !bytes::GetUint32(buffer, &cursor, &client_count)) {
    return false;
  }
  if (policy.max_bits_per_value < 1 || policy.max_bits_per_client < 1 ||
      std::isnan(policy.max_epsilon_per_client) ||
      policy.max_epsilon_per_client <= 0.0 || total_bits < 0 ||
      denied_charges < 0) {
    return false;
  }
  std::unordered_map<int64_t, ClientLedger> ledgers;
  ledgers.reserve(client_count);
  int64_t ledger_bit_sum = 0;
  double ledger_epsilon_sum = 0.0;
  for (uint32_t c = 0; c < client_count; ++c) {
    int64_t client_id = 0;
    ClientLedger ledger;
    uint32_t value_count = 0;
    if (!bytes::GetInt64(buffer, &cursor, &client_id) ||
        !bytes::GetInt64(buffer, &cursor, &ledger.bits) ||
        !bytes::GetDouble(buffer, &cursor, &ledger.epsilon) ||
        !bytes::GetUint32(buffer, &cursor, &value_count)) {
      return false;
    }
    if (ledger.bits < 0 || !std::isfinite(ledger.epsilon) ||
        ledger.epsilon < 0.0) {
      return false;
    }
    int64_t value_bit_sum = 0;
    ledger.bits_per_value.reserve(value_count);
    for (uint32_t v = 0; v < value_count; ++v) {
      int64_t value_id = 0;
      int64_t bits = 0;
      if (!bytes::GetInt64(buffer, &cursor, &value_id) ||
          !bytes::GetInt64(buffer, &cursor, &bits)) {
        return false;
      }
      if (bits < 0 || !ledger.bits_per_value.emplace(value_id, bits).second) {
        return false;  // negative count or duplicate value entry
      }
      value_bit_sum += bits;
    }
    // Consistency: per-value bits must account for the client total.
    if (value_bit_sum != ledger.bits) return false;
    ledger_bit_sum += ledger.bits;
    ledger_epsilon_sum += ledger.epsilon;
    if (!ledgers.emplace(client_id, std::move(ledger)).second) {
      return false;  // duplicate client entry
    }
  }
  if (ledger_bit_sum != total_bits) return false;

  out->policy_ = policy;
  out->ledgers_ = std::move(ledgers);
  out->total_bits_ = total_bits;
  // Recomputed in the canonical (sorted-client) encoding order; may differ
  // from a live run's charge-order sum by FP rounding, which is why the
  // deterministic-metrics contract is scoped to journal-only recovery
  // (replay re-charges in the original order).
  out->total_epsilon_ = ledger_epsilon_sum;
  out->denied_charges_ = denied_charges;
  // Values restored from a snapshot are marked fully announced: their
  // first grant / first denial happened before the snapshot, and
  // re-announcing them would fabricate flight-recorder events the
  // original run never emitted.
  out->announced_.clear();
  for (const auto& [client_id, ledger] : out->ledgers_) {
    for (const auto& [value_id, bits] : ledger.bits_per_value) {
      if (bits > 0) out->announced_[value_id] = 3;
    }
  }
  out->RefreshObsGauges();
  *offset = cursor;
  return true;
}

}  // namespace bitpush
