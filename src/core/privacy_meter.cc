#include "core/privacy_meter.h"

#include "util/check.h"

namespace bitpush {

PrivacyMeter::PrivacyMeter(MeterPolicy policy) : policy_(policy) {
  BITPUSH_CHECK_GE(policy_.max_bits_per_value, 1);
  BITPUSH_CHECK_GE(policy_.max_bits_per_client, 1);
  BITPUSH_CHECK_GT(policy_.max_epsilon_per_client, 0.0);
}

bool PrivacyMeter::TryChargeBit(int64_t client_id, int64_t value_id,
                                double epsilon) {
  BITPUSH_CHECK_GE(epsilon, 0.0);
  ClientLedger& ledger = ledgers_[client_id];
  const int64_t value_bits = ledger.bits_per_value[value_id];
  if (value_bits + 1 > policy_.max_bits_per_value ||
      ledger.bits + 1 > policy_.max_bits_per_client ||
      ledger.epsilon + epsilon > policy_.max_epsilon_per_client) {
    ++denied_charges_;
    return false;
  }
  ++ledger.bits_per_value[value_id];
  ++ledger.bits;
  ledger.epsilon += epsilon;
  ++total_bits_;
  return true;
}

int64_t PrivacyMeter::ClientBits(int64_t client_id) const {
  const auto it = ledgers_.find(client_id);
  return it == ledgers_.end() ? 0 : it->second.bits;
}

double PrivacyMeter::ClientEpsilon(int64_t client_id) const {
  const auto it = ledgers_.find(client_id);
  return it == ledgers_.end() ? 0.0 : it->second.epsilon;
}

int64_t PrivacyMeter::ValueBits(int64_t client_id, int64_t value_id) const {
  const auto it = ledgers_.find(client_id);
  if (it == ledgers_.end()) return 0;
  const auto vit = it->second.bits_per_value.find(value_id);
  return vit == it->second.bits_per_value.end() ? 0 : vit->second;
}

}  // namespace bitpush
