// Proportion and count estimation — the degenerate (and most common)
// one-bit aggregate: each client reports the single bit
// 1{predicate(my value)}, optionally through randomized response, and the
// server estimates the population fraction and count. This is the
// primitive behind eligibility-rate measurement, feature-flag rollout
// checks, and the binary histograms every other protocol in this library
// reduces to.

#ifndef BITPUSH_CORE_PROPORTION_H_
#define BITPUSH_CORE_PROPORTION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "rng/rng.h"

namespace bitpush {

struct ProportionResult {
  // Unbiased estimate of the population fraction (may fall outside [0, 1]
  // under DP noise; clamped_fraction is the usable point estimate).
  double fraction = 0.0;
  double clamped_fraction = 0.0;
  // fraction * population size.
  double count = 0.0;
  int64_t reports = 0;
  // Plug-in standard error of `fraction` (includes the RR term).
  double stderr_fraction = 0.0;
};

// Estimates the fraction of `values` satisfying `predicate`, with each
// client disclosing exactly the one predicate bit at `epsilon` (<= 0
// disables noise).
ProportionResult EstimateProportion(
    const std::vector<double>& values,
    const std::function<bool(double)>& predicate, double epsilon, Rng& rng);

// Convenience: the fraction of values in [low, high].
ProportionResult EstimateRangeProportion(const std::vector<double>& values,
                                         double low, double high,
                                         double epsilon, Rng& rng);

}  // namespace bitpush

#endif  // BITPUSH_CORE_PROPORTION_H_
