#include "core/proportion.h"

#include <algorithm>
#include <cmath>

#include "ldp/randomized_response.h"
#include "util/check.h"

namespace bitpush {

ProportionResult EstimateProportion(
    const std::vector<double>& values,
    const std::function<bool(double)>& predicate, double epsilon,
    Rng& rng) {
  BITPUSH_CHECK(!values.empty());
  BITPUSH_CHECK(predicate != nullptr);
  const RandomizedResponse rr = RandomizedResponse::FromEpsilon(epsilon);

  int64_t ones = 0;
  for (const double value : values) {
    ones += rr.Apply(predicate(value) ? 1 : 0, rng);
  }
  const double n = static_cast<double>(values.size());
  const double raw_mean = static_cast<double>(ones) / n;

  ProportionResult result;
  result.reports = static_cast<int64_t>(values.size());
  result.fraction = rr.Unbias(raw_mean);
  result.clamped_fraction = std::clamp(result.fraction, 0.0, 1.0);
  result.count = result.fraction * n;
  const double m = result.clamped_fraction;
  result.stderr_fraction =
      std::sqrt((m * (1.0 - m) + rr.ReportVariance()) / n);
  return result;
}

ProportionResult EstimateRangeProportion(const std::vector<double>& values,
                                         double low, double high,
                                         double epsilon, Rng& rng) {
  BITPUSH_CHECK_LE(low, high);
  return EstimateProportion(
      values, [low, high](double v) { return v >= low && v <= high; },
      epsilon, rng);
}

}  // namespace bitpush
