#include "core/vector_aggregation.h"

#include <algorithm>
#include <cmath>

#include "core/bit_probabilities.h"
#include "ldp/randomized_response.h"
#include "rng/qmc.h"
#include "util/check.h"

namespace bitpush {
namespace {

// Flattened (dimension, bit) cell helpers.
int CellIndex(int dim, int bit, int bits) { return dim * bits + bit; }

// Runs one collection pass over rows[first..last), tallying into
// per-dimension histograms.
void CollectPass(const std::vector<std::vector<double>>& rows, int64_t first,
                 int64_t last, const std::vector<double>& cell_probs,
                 const FixedPointCodec& codec,
                 const VectorAggregationConfig& config,
                 const RandomizedResponse& rr,
                 std::vector<BitHistogram>* histograms, Rng& rng) {
  const int bits = codec.bits();
  const int64_t n = last - first;
  const std::vector<int> assignment =
      config.central_randomness ? AssignBitsCentral(n, cell_probs, rng)
                                : AssignBitsLocal(n, cell_probs, rng);
  for (int64_t i = 0; i < n; ++i) {
    const int cell = assignment[static_cast<size_t>(i)];
    const int dim = cell / bits;
    const int bit_index = cell % bits;
    const uint64_t codeword = codec.Encode(
        rows[static_cast<size_t>(first + i)][static_cast<size_t>(dim)]);
    (*histograms)[static_cast<size_t>(dim)].Add(
        bit_index, MakeBitReport(codeword, bit_index, rr, rng));
  }
}

// Round-1 cell probabilities: uniform across dimensions, geometric within.
std::vector<double> ProbeProbabilities(int dims, int bits, double gamma) {
  const std::vector<double> per_bit = GeometricProbabilities(bits, gamma);
  std::vector<double> cells(static_cast<size_t>(dims * bits));
  for (int d = 0; d < dims; ++d) {
    for (int j = 0; j < bits; ++j) {
      cells[static_cast<size_t>(CellIndex(d, j, bits))] =
          per_bit[static_cast<size_t>(j)] / static_cast<double>(dims);
    }
  }
  return cells;
}

// Learned cell weights: beta_{d,j}^alpha normalized across all cells, so
// sampling budget flows toward informative coordinates and bits.
std::vector<double> LearnedProbabilities(
    const std::vector<BitHistogram>& histograms,
    const RandomizedResponse& rr, int bits, double alpha,
    const std::vector<double>& fallback) {
  std::vector<double> weights(fallback.size(), 0.0);
  double max_beta = 0.0;
  std::vector<std::vector<double>> betas;
  betas.reserve(histograms.size());
  for (const BitHistogram& histogram : histograms) {
    std::vector<double> means = histogram.UnbiasedMeans(rr);
    for (double& m : means) m = std::clamp(m, 0.0, 1.0);
    betas.push_back(BetaCoefficients(means));
    for (const double b : betas.back()) max_beta = std::max(max_beta, b);
  }
  if (max_beta <= 0.0) return fallback;
  double total = 0.0;
  for (size_t d = 0; d < betas.size(); ++d) {
    for (int j = 0; j < bits; ++j) {
      const double w =
          std::pow(betas[d][static_cast<size_t>(j)] / max_beta, alpha);
      weights[static_cast<size_t>(
          CellIndex(static_cast<int>(d), j, bits))] = w;
      total += w;
    }
  }
  if (total <= 0.0) return fallback;
  for (double& w : weights) w /= total;
  return weights;
}

}  // namespace

VectorAggregationResult EstimateVectorMean(
    const std::vector<std::vector<double>>& rows,
    const FixedPointCodec& codec, const VectorAggregationConfig& config,
    Rng& rng) {
  BITPUSH_CHECK_GE(rows.size(), 2u);
  const int dims = static_cast<int>(rows.front().size());
  BITPUSH_CHECK_GE(dims, 1);
  for (const std::vector<double>& row : rows) {
    BITPUSH_CHECK_EQ(static_cast<int>(row.size()), dims)
        << "ragged client vectors";
  }
  const int bits = codec.bits();
  const int64_t n = static_cast<int64_t>(rows.size());
  const RandomizedResponse rr =
      RandomizedResponse::FromEpsilon(config.epsilon);

  VectorAggregationResult result;
  result.histograms.assign(static_cast<size_t>(dims), BitHistogram(bits));

  const std::vector<double> probe =
      ProbeProbabilities(dims, bits, config.gamma);
  if (!config.adaptive) {
    CollectPass(rows, 0, n, probe, codec, config, rr, &result.histograms,
                rng);
  } else {
    BITPUSH_CHECK_GT(config.delta, 0.0);
    BITPUSH_CHECK_LT(config.delta, 1.0);
    int64_t n1 = static_cast<int64_t>(
        std::llround(config.delta * static_cast<double>(n)));
    n1 = std::clamp<int64_t>(n1, 1, n - 1);
    std::vector<BitHistogram> probe_histograms(
        static_cast<size_t>(dims), BitHistogram(bits));
    CollectPass(rows, 0, n1, probe, codec, config, rr, &probe_histograms,
                rng);
    const std::vector<double> learned = LearnedProbabilities(
        probe_histograms, rr, bits, config.alpha, probe);
    CollectPass(rows, n1, n, learned, codec, config, rr,
                &result.histograms, rng);
    // Pool the probe reports (caching).
    for (int d = 0; d < dims; ++d) {
      result.histograms[static_cast<size_t>(d)].Merge(
          probe_histograms[static_cast<size_t>(d)]);
    }
  }

  result.means.reserve(static_cast<size_t>(dims));
  for (int d = 0; d < dims; ++d) {
    const std::vector<double> means =
        result.histograms[static_cast<size_t>(d)].UnbiasedMeans(rr);
    result.means.push_back(codec.Decode(RecombineBitMeans(means)));
    result.bits_disclosed +=
        result.histograms[static_cast<size_t>(d)].TotalReports();
  }
  return result;
}

}  // namespace bitpush
