// Nonlinear aggregates via bit-pushing (the Section 3.4 extensions:
// "higher moments, products and geometric means can also be approximated
// via bit-pushing").
//
// Every estimator reduces to mean estimation of a locally computed derived
// value, so each client still discloses at most one bit:
//   * raw moment E[X^k]: clients push bits of x^k (k-fold wider codec),
//   * central moment E[(X - mu)^k]: a first phase estimates mu, the
//     remaining clients push bits of (x - mu_hat)^k,
//   * geometric mean exp(E[ln X]): clients push bits of ln(x) over a
//     log-domain codec,
//   * product over the population: exp(n * E[ln X]), reported in log space
//     to avoid overflow.

#ifndef BITPUSH_CORE_MOMENTS_H_
#define BITPUSH_CORE_MOMENTS_H_

#include <vector>

#include "core/adaptive.h"
#include "core/fixed_point.h"
#include "rng/rng.h"

namespace bitpush {

struct MomentConfig {
  // Protocol parameters for each phase; `bits` is the *input* width and is
  // widened automatically for powers (capped at kMaxBits).
  AdaptiveConfig protocol;
  // For central moments: fraction of clients used to estimate the mean.
  double mean_fraction = 0.5;
};

// Estimates E[X^k] for k >= 1 over `values` described by `codec`.
// Requires at least 2 clients (4 for k >= 2 central moments).
double EstimateRawMoment(const std::vector<double>& values,
                         const FixedPointCodec& codec, int k,
                         const MomentConfig& config, Rng& rng);

// Estimates E[(X - mu)^k]; odd k uses a signed split (positive and
// negative parts pushed separately, since signed binary expansions are not
// linear in the sign bit — footnote 1 of the paper).
double EstimateCentralMoment(const std::vector<double>& values,
                             const FixedPointCodec& codec, int k,
                             const MomentConfig& config, Rng& rng);

// Geometric mean exp(mean of ln x). Values are clamped to
// [positive_floor, codec.high()] so the log transform is defined;
// `log_bits` is the codec width used in log space.
double EstimateGeometricMean(const std::vector<double>& values,
                             const FixedPointCodec& codec,
                             double positive_floor, int log_bits,
                             const MomentConfig& config, Rng& rng);

// Natural log of the product of all values (clamped as above):
// n * E[ln X]. The product itself usually overflows; callers exponentiate
// if they know it is safe.
double EstimateLogProduct(const std::vector<double>& values,
                          const FixedPointCodec& codec,
                          double positive_floor, int log_bits,
                          const MomentConfig& config, Rng& rng);

// Standardized shape statistics, composed from central-moment estimates
// over disjoint sub-cohorts (each client still contributes one bit total):
//   skewness = E[(X-mu)^3] / sigma^3,  kurtosis = E[(X-mu)^4] / sigma^4.
// Requires at least 18 clients (three phases of >= 6). The variance phase
// result is clamped away from zero; a degenerate (constant) population
// returns 0 skewness and kurtosis.
double EstimateSkewness(const std::vector<double>& values,
                        const FixedPointCodec& codec,
                        const MomentConfig& config, Rng& rng);
double EstimateKurtosis(const std::vector<double>& values,
                        const FixedPointCodec& codec,
                        const MomentConfig& config, Rng& rng);

}  // namespace bitpush

#endif  // BITPUSH_CORE_MOMENTS_H_
