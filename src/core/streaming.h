// Streaming (asynchronous) aggregation.
//
// Section 1.1: bit-pushing "naturally accommodates asynchronous updates,
// whereas secure aggregation can require batching a sufficient number of
// updates". Reports arrive one at a time as devices come online; the server
// keeps a running unbiased estimate with a plug-in confidence interval, so
// a query can stop collecting as soon as the interval is tight enough
// (Section 4.3: "achieve good accuracy as a function of number of
// participants").

#ifndef BITPUSH_CORE_STREAMING_H_
#define BITPUSH_CORE_STREAMING_H_

#include <cstdint>
#include <vector>

#include "core/bit_pushing.h"
#include "core/fixed_point.h"
#include "ldp/randomized_response.h"

namespace bitpush {

class StreamingMeanEstimator {
 public:
  // `probabilities` is the allocation reports are being collected under
  // (length = codec bits); `epsilon` the per-report randomized-response
  // budget (<= 0 disables unbiasing).
  StreamingMeanEstimator(const FixedPointCodec& codec,
                         std::vector<double> probabilities, double epsilon);

  // Ingests one (possibly RR-perturbed) report for `bit_index`.
  void Observe(int bit_index, int reported_bit);

  int64_t reports() const { return histogram_.TotalReports(); }

  // Current estimate in the value domain. Bits without reports contribute
  // mean 0 — the estimate is usable (if coarse) from the first report.
  double Estimate() const;

  // Plug-in standard error of Estimate() in the value domain; infinity
  // until every bit with positive allocation has at least one report.
  double StdError() const;

  struct Interval {
    double low = 0.0;
    double high = 0.0;
  };
  // Estimate() +/- 1.96 standard errors.
  Interval ConfidenceInterval95() const;

  // True when every bit with positive allocation has >= min_reports.
  bool AllBitsObserved(int64_t min_reports = 1) const;

  const BitHistogram& histogram() const { return histogram_; }

 private:
  FixedPointCodec codec_;
  std::vector<double> probabilities_;
  RandomizedResponse rr_;
  BitHistogram histogram_;
};

}  // namespace bitpush

#endif  // BITPUSH_CORE_STREAMING_H_
