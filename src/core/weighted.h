// Weighted mean estimation.
//
// Section 4.3 ("Aggregating multiple local values per feature"): when
// clients hold different numbers of observations, one semantics is "a
// multiset or weighted response" — the population mean weighted by each
// client's (public, non-private) weight, e.g. its local observation count.
// The bit discipline is unchanged: every client reports one bit of its
// (locally aggregated) value; the server weights the tallies.
//
// Per bit j the server uses a Horvitz-Thompson-style estimator: the
// weighted sum of the group's reported bits is divided by the group's
// inclusion probability n_j/n and by the known total weight W,
//
//   m_hat_j = (n / n_j) * sum_{i in G_j} w_i * unbias(r_i) / W,
//
// which is exactly unbiased for the weighted bit mean sum_i w_i q_i^(j) / W
// for *any* weight skew (a naive per-group ratio estimator is biased when a
// single heavy client dominates, because it lands in only one group).

#ifndef BITPUSH_CORE_WEIGHTED_H_
#define BITPUSH_CORE_WEIGHTED_H_

#include <cstdint>
#include <vector>

#include "core/fixed_point.h"
#include "rng/rng.h"

namespace bitpush {

struct WeightedValue {
  double value = 0.0;
  // Public weight, > 0 (e.g. the client's local observation count).
  double weight = 1.0;
};

struct WeightedMeanConfig {
  // Per-bit sampling probabilities (length = codec bits).
  std::vector<double> probabilities;
  double epsilon = 0.0;  // per-report randomized response; <= 0 disables
  bool central_randomness = true;
};

struct WeightedMeanResult {
  // Weighted mean estimate in the value domain.
  double estimate = 0.0;
  // Per-bit Horvitz-Thompson estimates of the weighted bit means. Unlike
  // plain bit means these can exceed [0, 1] in any single run (they are
  // unbiased, not bounded).
  std::vector<double> bit_means;
  // Per-bit total weight of reporting clients.
  std::vector<double> bit_weights;
};

// Estimates sum(w_i x_i) / sum(w_i) with one disclosed bit per client.
WeightedMeanResult EstimateWeightedMean(
    const std::vector<WeightedValue>& values, const FixedPointCodec& codec,
    const WeightedMeanConfig& config, Rng& rng);

}  // namespace bitpush

#endif  // BITPUSH_CORE_WEIGHTED_H_
