#include "core/bit_probabilities.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace bitpush {

void NormalizeProbabilities(std::vector<double>& probabilities) {
  BITPUSH_CHECK(!probabilities.empty());
  double total = 0.0;
  for (const double p : probabilities) {
    BITPUSH_CHECK_GE(p, 0.0);
    total += p;
  }
  BITPUSH_CHECK_GT(total, 0.0);
  for (double& p : probabilities) p /= total;
}

std::vector<double> UniformProbabilities(int bits) {
  BITPUSH_CHECK_GE(bits, 1);
  return std::vector<double>(static_cast<size_t>(bits),
                             1.0 / static_cast<double>(bits));
}

std::vector<double> GeometricProbabilities(int bits, double gamma) {
  BITPUSH_CHECK_GE(bits, 1);
  std::vector<double> p(static_cast<size_t>(bits));
  // Compute 2^{gamma (j - (bits-1))} so the largest term is 1 and the sum
  // cannot overflow for large bit widths before normalization.
  for (int j = 0; j < bits; ++j) {
    p[static_cast<size_t>(j)] =
        std::exp2(gamma * static_cast<double>(j - (bits - 1)));
  }
  NormalizeProbabilities(p);
  return p;
}

std::vector<double> BetaCoefficients(const std::vector<double>& bit_means) {
  BITPUSH_CHECK(!bit_means.empty());
  std::vector<double> beta(bit_means.size());
  for (size_t j = 0; j < bit_means.size(); ++j) {
    const double m = std::clamp(bit_means[j], 0.0, 1.0);
    beta[j] = std::exp2(2.0 * static_cast<double>(j)) * m * (1.0 - m);
  }
  return beta;
}

std::vector<double> AdaptiveProbabilities(const std::vector<double>& bit_means,
                                          double alpha) {
  BITPUSH_CHECK_GE(alpha, 0.0);
  const std::vector<double> beta = BetaCoefficients(bit_means);
  std::vector<double> p(beta.size());
  // Scale relative to the largest beta so beta^alpha stays finite for wide
  // codewords.
  const double max_beta = *std::max_element(beta.begin(), beta.end());
  if (max_beta <= 0.0) {
    return GeometricProbabilities(static_cast<int>(bit_means.size()), 1.0);
  }
  for (size_t j = 0; j < beta.size(); ++j) {
    p[j] = std::pow(beta[j] / max_beta, alpha);
  }
  NormalizeProbabilities(p);
  return p;
}

std::vector<double> AdaptiveProbabilitiesMasked(
    const std::vector<double>& bit_means, const std::vector<bool>& keep,
    double alpha, const std::vector<double>& fallback) {
  BITPUSH_CHECK_EQ(bit_means.size(), keep.size());
  BITPUSH_CHECK_EQ(bit_means.size(), fallback.size());
  const std::vector<double> beta = BetaCoefficients(bit_means);
  const double max_beta = *std::max_element(beta.begin(), beta.end());
  std::vector<double> weights(beta.size(), 0.0);
  if (max_beta > 0.0) {
    for (size_t j = 0; j < beta.size(); ++j) {
      if (!keep[j]) continue;
      weights[j] = std::pow(beta[j] / max_beta, alpha);
    }
  }
  double total = 0.0;
  for (const double w : weights) total += w;
  if (total <= 0.0) return fallback;
  for (double& w : weights) w /= total;
  return weights;
}

std::vector<double> OptimalProbabilities(
    const std::vector<double>& bit_means) {
  return AdaptiveProbabilities(bit_means, 0.5);
}

double VarianceBound(const std::vector<double>& bit_means,
                     const std::vector<double>& probabilities, double n) {
  BITPUSH_CHECK_EQ(bit_means.size(), probabilities.size());
  BITPUSH_CHECK_GT(n, 0.0);
  const std::vector<double> beta = BetaCoefficients(bit_means);
  double total = 0.0;
  for (size_t j = 0; j < beta.size(); ++j) {
    if (beta[j] == 0.0) continue;
    if (probabilities[j] <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    total += beta[j] / probabilities[j];
  }
  return total / n;
}

}  // namespace bitpush
