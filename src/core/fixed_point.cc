#include "core/fixed_point.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace bitpush {

namespace {

obs::Histogram* EncodeAllHistogram() {
  static obs::Histogram* histogram = obs::Registry::Default().GetHistogram(
      "bitpush_encode_all_seconds",
      "Wall-clock time of FixedPointCodec::EncodeAll.",
      obs::LatencySecondsBounds(), obs::Determinism::kVolatile);
  return histogram;
}

}  // namespace

FixedPointCodec::FixedPointCodec(int bits, double low, double high)
    : bits_(bits), low_(low), high_(high) {
  BITPUSH_CHECK_GE(bits, 1);
  BITPUSH_CHECK_LE(bits, kMaxBits);
  BITPUSH_CHECK_LT(low, high);
  max_codeword_ = (uint64_t{1} << bits) - 1;
  scale_ = static_cast<double>(max_codeword_) / (high - low);
}

FixedPointCodec FixedPointCodec::Integer(int bits) {
  BITPUSH_CHECK_GE(bits, 1);
  BITPUSH_CHECK_LE(bits, kMaxBits);
  const double max_value =
      static_cast<double>((uint64_t{1} << bits) - 1);
  return FixedPointCodec(bits, 0.0, max_value);
}

uint64_t FixedPointCodec::Encode(double x) const {
  const double clipped = std::clamp(x, low_, high_);
  const double scaled = (clipped - low_) * scale_;
  const uint64_t codeword = static_cast<uint64_t>(std::llround(scaled));
  return std::min(codeword, max_codeword_);
}

std::vector<uint64_t> FixedPointCodec::EncodeAll(
    const std::vector<double>& values) const {
  const obs::ScopedTimer timer(EncodeAllHistogram());
  std::vector<uint64_t> encoded(values.size());
  // The kernel encode is bit-identical to Encode() by contract (the AVX2
  // leg emulates llround exactly; see kernels.h), so dispatching here is
  // invisible to everything downstream, including the golden campaign
  // snapshots.
  const kernels::EncodeParams params{low_, high_, scale_, max_codeword_};
  kernels::ActiveKernel().encode_codewords(
      values.data(), static_cast<int64_t>(values.size()), params,
      encoded.data());
  return encoded;
}

double FixedPointCodec::Decode(double codeword) const {
  return low_ + codeword / scale_;
}

int FixedPointCodec::Bit(uint64_t v, int j) {
  BITPUSH_CHECK_GE(j, 0);
  BITPUSH_CHECK_LT(j, 64);
  return static_cast<int>((v >> j) & 1u);
}

int FixedPointCodec::HighestSetBit(uint64_t v) {
  if (v == 0) return -1;
  return 63 - std::countl_zero(v);
}

}  // namespace bitpush
