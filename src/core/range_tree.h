// Hierarchical (dyadic) one-bit range queries.
//
// The flat histogram of core/histogram_estimation.h answers fixed-bucket
// queries; arbitrary range counts and smoother quantile descent need the
// classic dyadic decomposition: every level L splits the codeword domain
// [0, 2^levels) into 2^L aligned nodes, any range is covered by at most
// 2*levels nodes, and each client still reveals exactly one bit — the
// server assigns it one (level, node) cell and it reports
// 1{my value falls inside that node}.

#ifndef BITPUSH_CORE_RANGE_TREE_H_
#define BITPUSH_CORE_RANGE_TREE_H_

#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace bitpush {

struct RangeTreeConfig {
  // Depth of the tree: the domain is codewords [0, 2^levels). Cell count
  // grows as 2^levels; keep levels <= ~12 for 10^4-10^5 cohorts.
  int levels = 8;
  // Per-report randomized response budget; <= 0 disables.
  double epsilon = 0.0;
};

class RangeTreeResult {
 public:
  RangeTreeResult(int levels, std::vector<std::vector<double>> fractions,
                  std::vector<std::vector<int64_t>> counts);

  int levels() const { return levels_; }
  // Estimated probability mass of node `v` at level `level`
  // (level in [1, levels], v in [0, 2^level)). Unbiased; may be slightly
  // negative under DP noise.
  double NodeFraction(int level, uint64_t v) const;
  int64_t NodeReports(int level, uint64_t v) const;

  // Estimated fraction of values in [lo, hi] (inclusive, codeword space),
  // via the minimal dyadic cover. Negative node estimates are used as-is
  // so the result stays unbiased.
  double RangeFraction(uint64_t lo, uint64_t hi) const;

  // q-quantile (q in [0, 1]) in codeword space by hierarchical descent,
  // clipping negative masses and renormalizing per node.
  double Quantile(double q) const;

 private:
  int levels_;
  // fractions_[L-1][v] for levels 1..levels.
  std::vector<std::vector<double>> fractions_;
  std::vector<std::vector<int64_t>> counts_;
};

// Runs the one-bit dyadic protocol over the population. Codewords must be
// < 2^levels. Cells are sampled uniformly across levels and uniformly
// within a level.
RangeTreeResult EstimateRangeTree(const std::vector<uint64_t>& codewords,
                                  const RangeTreeConfig& config, Rng& rng);

}  // namespace bitpush

#endif  // BITPUSH_CORE_RANGE_TREE_H_
