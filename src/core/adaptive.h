// Adaptive two-round bit-pushing (Algorithm 2 of the paper).
//
// Round 1 probes a delta fraction of the population with input-independent
// geometric probabilities p1_j proportional to (2^j)^gamma, yielding
// estimated bit means m1. Round 2 queries the remaining clients with the
// learned allocation p2_j proportional to (4^j m1_j (1 - m1_j))^alpha
// (Lemma 3.3 at alpha = 0.5). With caching enabled (the paper's default,
// Section 3.2) the reports of both rounds are pooled per bit before the
// final recombination; otherwise the estimate uses round-2 reports, falling
// back to round-1 means for bits round 2 did not sample.
//
// Paper defaults: gamma = 0.5, alpha = 0.5, delta = 1/3, caching on.
// Under DP noise, bit squashing (Section 3.3) zeroes the weight of bits
// whose round-1 mean looks like pure noise and masks them out of the final
// estimate.

#ifndef BITPUSH_CORE_ADAPTIVE_H_
#define BITPUSH_CORE_ADAPTIVE_H_

#include <cstdint>
#include <vector>

#include "core/bit_pushing.h"
#include "core/bit_squashing.h"
#include "rng/rng.h"

namespace bitpush {

struct AdaptiveConfig {
  int bits = 16;
  double gamma = 0.5;        // round-1 exponent: p1_j propto 2^{gamma j}
  double alpha = 0.5;        // round-2 exponent on beta_j
  double delta = 1.0 / 3.0;  // fraction of clients probed in round 1
  bool caching = true;       // pool rounds (Section 3.2 "Caching")
  double epsilon = 0.0;      // per-report RR budget; <= 0 disables DP
  int bits_per_client = 1;   // b_send per round
  bool central_randomness = true;
  SquashPolicy squash = SquashPolicy::Off();
};

struct AdaptiveResult {
  // Final estimate in codeword space.
  double estimate_codeword = 0.0;
  // The two per-round results (round2 may have zero reports for bits whose
  // learned probability collapsed to 0).
  BitPushingResult round1;
  BitPushingResult round2;
  // The probabilities used in each round.
  std::vector<double> round1_probabilities;
  std::vector<double> round2_probabilities;
  // Means entering the final recombination (pooled if caching).
  std::vector<double> final_means;
  // Post-squash keep mask applied to final_means.
  std::vector<bool> kept;
  // Plug-in variance of the final estimate.
  double variance_bound = 0.0;
};

// Runs Algorithm 2 over the whole codeword population. Requires
// codewords.size() >= 2 so both rounds have at least one client, and
// 0 < delta < 1.
AdaptiveResult RunAdaptiveBitPushing(const std::vector<uint64_t>& codewords,
                                     const AdaptiveConfig& config, Rng& rng);

}  // namespace bitpush

#endif  // BITPUSH_CORE_ADAPTIVE_H_
