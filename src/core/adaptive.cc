#include "core/adaptive.h"

#include <algorithm>
#include <cmath>

#include "core/bit_probabilities.h"
#include "util/check.h"

namespace bitpush {

AdaptiveResult RunAdaptiveBitPushing(const std::vector<uint64_t>& codewords,
                                     const AdaptiveConfig& config, Rng& rng) {
  BITPUSH_CHECK_GE(config.bits, 1);
  BITPUSH_CHECK_GT(config.delta, 0.0);
  BITPUSH_CHECK_LT(config.delta, 1.0);
  BITPUSH_CHECK_GE(codewords.size(), 2u);

  const RandomizedResponse rr =
      RandomizedResponse::FromEpsilon(config.epsilon);
  const int64_t n = static_cast<int64_t>(codewords.size());
  int64_t n1 = static_cast<int64_t>(
      std::llround(config.delta * static_cast<double>(n)));
  n1 = std::clamp<int64_t>(n1, 1, n - 1);

  // Round 1: input-independent geometric probe over a delta fraction.
  AdaptiveResult result;
  result.round1_probabilities =
      GeometricProbabilities(config.bits, config.gamma);
  BitPushingConfig round1_config{
      .probabilities = result.round1_probabilities,
      .epsilon = config.epsilon,
      .bits_per_client = config.bits_per_client,
      .central_randomness = config.central_randomness};
  const std::vector<uint64_t> cohort1(codewords.begin(),
                                      codewords.begin() + n1);
  result.round1 = RunBasicBitPushing(cohort1, round1_config, rng);

  // Learn the round-2 allocation from the probe; squashed bits get zero
  // sampling weight (Section 3.3).
  const std::vector<bool> round1_keep =
      ComputeSquashMask(result.round1.bit_means,
                        result.round1.histogram.totals(), rr, config.squash);
  result.round2_probabilities = AdaptiveProbabilitiesMasked(
      result.round1.bit_means, round1_keep, config.alpha,
      result.round1_probabilities);

  // Round 2 over the remaining clients.
  BitPushingConfig round2_config{
      .probabilities = result.round2_probabilities,
      .epsilon = config.epsilon,
      .bits_per_client = config.bits_per_client,
      .central_randomness = config.central_randomness};
  const std::vector<uint64_t> cohort2(codewords.begin() + n1,
                                      codewords.end());
  result.round2 = RunBasicBitPushing(cohort2, round2_config, rng);

  // Final aggregation (Algorithm 2, lines 9-11).
  BitHistogram pooled = result.round1.histogram;
  pooled.Merge(result.round2.histogram);
  std::vector<int64_t> final_counts;
  if (config.caching) {
    result.final_means = pooled.UnbiasedMeans(rr);
    final_counts = pooled.totals();
  } else {
    // Round-2-only estimate; bits the learned allocation skipped fall back
    // to their round-1 means (the only information available for them).
    result.final_means = result.round2.bit_means;
    final_counts = result.round2.histogram.totals();
    for (size_t j = 0; j < result.final_means.size(); ++j) {
      if (!result.round2.observed[j]) {
        result.final_means[j] = result.round1.bit_means[j];
        final_counts[j] = result.round1.histogram.totals()[j];
      }
    }
  }

  result.kept = ComputeSquashMask(result.final_means, final_counts, rr,
                                  config.squash);
  result.estimate_codeword =
      RecombineBitMeans(result.final_means, result.kept);

  // Plug-in variance over the kept bits.
  const double rr_var = rr.ReportVariance();
  double variance = 0.0;
  for (size_t j = 0; j < result.final_means.size(); ++j) {
    if (!result.kept[j] || final_counts[j] == 0) continue;
    const double m = std::clamp(result.final_means[j], 0.0, 1.0);
    variance += std::exp2(2.0 * static_cast<double>(j)) *
                (m * (1.0 - m) + rr_var) /
                static_cast<double>(final_counts[j]);
  }
  result.variance_bound = variance;
  return result;
}

}  // namespace bitpush
