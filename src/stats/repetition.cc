#include "stats/repetition.h"

#include "util/check.h"

namespace bitpush {

std::vector<double> CollectRepetitions(
    int64_t repetitions, uint64_t base_seed,
    const std::function<double(Rng&)>& estimator) {
  BITPUSH_CHECK_GT(repetitions, 0);
  Rng base(base_seed);
  std::vector<double> estimates;
  estimates.reserve(static_cast<size_t>(repetitions));
  for (int64_t r = 0; r < repetitions; ++r) {
    Rng run = base.Fork();
    estimates.push_back(estimator(run));
  }
  return estimates;
}

ErrorStats RunRepetitions(int64_t repetitions, uint64_t base_seed,
                          double truth,
                          const std::function<double(Rng&)>& estimator) {
  return ComputeErrorStats(
      CollectRepetitions(repetitions, base_seed, estimator), truth);
}

}  // namespace bitpush
