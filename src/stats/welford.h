// Numerically stable running moments (Welford's online algorithm).

#ifndef BITPUSH_STATS_WELFORD_H_
#define BITPUSH_STATS_WELFORD_H_

#include <cstdint>

namespace bitpush {

class Welford {
 public:
  Welford() = default;

  // Adds one observation.
  void Add(double x);
  // Merges another accumulator (parallel Welford / Chan et al.).
  void Merge(const Welford& other);

  int64_t count() const { return count_; }
  // Mean of observations so far; 0 for an empty accumulator.
  double mean() const { return mean_; }
  // Population variance (divide by n); 0 when count < 1.
  double population_variance() const;
  // Sample variance (divide by n-1); 0 when count < 2.
  double sample_variance() const;
  double population_stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace bitpush

#endif  // BITPUSH_STATS_WELFORD_H_
