// Error metrics used throughout the evaluation.
//
// The paper's headline metric is the normalized root-mean-squared error
// (NRMSE): "we compare the true (empirical) value of the mean mu to the
// estimate, and compute the mean of the squared difference over 100
// independent repetitions, then divide by the true mean mu for
// normalization" (Section 4). Error bars are the standard error over the
// repetitions.

#ifndef BITPUSH_STATS_METRICS_H_
#define BITPUSH_STATS_METRICS_H_

#include <cstdint>
#include <vector>

namespace bitpush {

// Summary of estimation error over repeated runs against a fixed truth.
struct ErrorStats {
  double truth = 0.0;
  int64_t repetitions = 0;
  double mean_estimate = 0.0;
  double bias = 0.0;   // mean_estimate - truth
  double rmse = 0.0;   // sqrt(mean squared error)
  double nrmse = 0.0;  // rmse / |truth| (0 when truth == 0)
  // Standard error of the per-repetition absolute normalized error,
  // matching the paper's error bars.
  double stderr_nrmse = 0.0;
};

// Computes ErrorStats from the raw per-repetition estimates.
ErrorStats ComputeErrorStats(const std::vector<double>& estimates,
                             double truth);

// Root mean squared error of `estimates` around `truth`.
double Rmse(const std::vector<double>& estimates, double truth);

// Mean of a vector (0 for empty input).
double Mean(const std::vector<double>& values);

// Population variance of a vector (0 for fewer than one element).
double PopulationVariance(const std::vector<double>& values);

}  // namespace bitpush

#endif  // BITPUSH_STATS_METRICS_H_
