// Exact quantiles over in-memory data. Used for ground truth and for the
// robust-statistics discussion of the deployment section (winsorization
// thresholds, percentile checks on heavy-tailed telemetry).

#ifndef BITPUSH_STATS_QUANTILES_H_
#define BITPUSH_STATS_QUANTILES_H_

#include <vector>

namespace bitpush {

// Returns the q-quantile (q in [0, 1]) of `values` with linear
// interpolation between order statistics. `values` must be non-empty; the
// input is copied, not mutated.
double Quantile(const std::vector<double>& values, double q);

// Returns several quantiles in one sort. `qs` entries must be in [0, 1].
std::vector<double> Quantiles(const std::vector<double>& values,
                              const std::vector<double>& qs);

// Winsorizes a copy of `values`: entries below the q_low quantile are raised
// to it and entries above the q_high quantile lowered to it.
std::vector<double> Winsorize(const std::vector<double>& values, double q_low,
                              double q_high);

}  // namespace bitpush

#endif  // BITPUSH_STATS_QUANTILES_H_
