#include "stats/welford.h"

#include <algorithm>
#include <cmath>

namespace bitpush {

void Welford::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Welford::Merge(const Welford& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double total = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Welford::population_variance() const {
  if (count_ < 1) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double Welford::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Welford::population_stddev() const {
  return std::sqrt(population_variance());
}

}  // namespace bitpush
