#include "stats/metrics.h"

#include <cmath>

#include "stats/welford.h"
#include "util/check.h"

namespace bitpush {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  Welford acc;
  for (const double v : values) acc.Add(v);
  return acc.mean();
}

double PopulationVariance(const std::vector<double>& values) {
  Welford acc;
  for (const double v : values) acc.Add(v);
  return acc.population_variance();
}

double Rmse(const std::vector<double>& estimates, double truth) {
  BITPUSH_CHECK(!estimates.empty());
  double sum_sq = 0.0;
  for (const double e : estimates) {
    const double d = e - truth;
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq / static_cast<double>(estimates.size()));
}

ErrorStats ComputeErrorStats(const std::vector<double>& estimates,
                             double truth) {
  BITPUSH_CHECK(!estimates.empty());
  ErrorStats stats;
  stats.truth = truth;
  stats.repetitions = static_cast<int64_t>(estimates.size());
  stats.mean_estimate = Mean(estimates);
  stats.bias = stats.mean_estimate - truth;
  stats.rmse = Rmse(estimates, truth);
  const double denom = std::abs(truth);
  stats.nrmse = denom > 0.0 ? stats.rmse / denom : 0.0;

  // Standard error of the normalized absolute error across repetitions.
  if (denom > 0.0 && estimates.size() > 1) {
    Welford abs_err;
    for (const double e : estimates) abs_err.Add(std::abs(e - truth) / denom);
    stats.stderr_nrmse = std::sqrt(abs_err.sample_variance() /
                                   static_cast<double>(estimates.size()));
  }
  return stats;
}

}  // namespace bitpush
