#include "stats/quantiles.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace bitpush {
namespace {

double QuantileOfSorted(const std::vector<double>& sorted, double q) {
  BITPUSH_CHECK(!sorted.empty());
  BITPUSH_CHECK_GE(q, 0.0);
  BITPUSH_CHECK_LE(q, 1.0);
  const double position = q * static_cast<double>(sorted.size() - 1);
  const size_t lower = static_cast<size_t>(std::floor(position));
  const size_t upper = static_cast<size_t>(std::ceil(position));
  const double fraction = position - static_cast<double>(lower);
  return sorted[lower] + fraction * (sorted[upper] - sorted[lower]);
}

}  // namespace

double Quantile(const std::vector<double>& values, double q) {
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  return QuantileOfSorted(sorted, q);
}

std::vector<double> Quantiles(const std::vector<double>& values,
                              const std::vector<double>& qs) {
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) out.push_back(QuantileOfSorted(sorted, q));
  return out;
}

std::vector<double> Winsorize(const std::vector<double>& values, double q_low,
                              double q_high) {
  BITPUSH_CHECK_LE(q_low, q_high);
  const std::vector<double> bounds = Quantiles(values, {q_low, q_high});
  std::vector<double> out = values;
  for (double& v : out) v = std::clamp(v, bounds[0], bounds[1]);
  return out;
}

}  // namespace bitpush
