// Repetition harness for the accuracy experiments.
//
// Every figure in the paper averages over independent repetitions (100 by
// default). RunRepetitions forks a fresh Rng per repetition from a base seed
// so (a) repetitions are independent and (b) the whole sweep is reproducible
// from one seed.

#ifndef BITPUSH_STATS_REPETITION_H_
#define BITPUSH_STATS_REPETITION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "rng/rng.h"
#include "stats/metrics.h"

namespace bitpush {

// Runs `estimator` `repetitions` times, each with an independent Rng, and
// summarizes the error against `truth`.
ErrorStats RunRepetitions(int64_t repetitions, uint64_t base_seed,
                          double truth,
                          const std::function<double(Rng&)>& estimator);

// As above but returns the raw estimates (for callers that need the full
// distribution, e.g. the bit-mean histogram of Figure 4b).
std::vector<double> CollectRepetitions(
    int64_t repetitions, uint64_t base_seed,
    const std::function<double(Rng&)>& estimator);

}  // namespace bitpush

#endif  // BITPUSH_STATS_REPETITION_H_
