// Memoized (permanent) randomized response for longitudinal collection.
//
// Plain randomized response composes: querying the same private bit every
// day at epsilon leaks k*epsilon after k rounds. RAPPOR's fix (Erlingsson
// et al., cited in Section 1 of the paper) is memoization: the client
// derives a *permanent* noisy copy of the bit once — deterministically
// from a client-held secret, so it never changes — and applies only
// fresh *instantaneous* noise per round. Total disclosure about the true
// bit is then bounded by the permanent epsilon regardless of how many
// rounds run, while per-round reports still satisfy instantaneous-epsilon
// LDP against the collector.
//
// The server unbiases with the composed truth probability
// p_eff = p1*p2 + (1-p1)(1-p2).

#ifndef BITPUSH_LDP_MEMOIZATION_H_
#define BITPUSH_LDP_MEMOIZATION_H_

#include <cstdint>

#include "ldp/randomized_response.h"
#include "rng/rng.h"

namespace bitpush {

class MemoizedResponder {
 public:
  // `permanent_epsilon` bounds lifetime disclosure per (value, bit);
  // `instantaneous_epsilon` is the per-round layer (<= 0 disables it —
  // then repeated reports are identical). `client_secret` must be private
  // to the client and stable across rounds.
  MemoizedResponder(double permanent_epsilon, double instantaneous_epsilon,
                    uint64_t client_secret);

  // The per-round report for the true bit of (value_id, bit_index). The
  // permanent layer is derived deterministically; the instantaneous layer
  // draws from `rng`.
  int Report(int64_t value_id, int bit_index, int true_bit, Rng& rng) const;

  // The permanent noisy bit itself (what an adversary could learn at most,
  // ever). Exposed for tests and privacy audits.
  int PermanentBit(int64_t value_id, int bit_index, int true_bit) const;

  // Composed probability that a report equals the true bit.
  double EffectiveTruthProbability() const;
  // Unbiases a mean of memoized reports back to the true bit mean.
  double Unbias(double reported_mean) const;

  // Lifetime disclosure bound about the true bit (the permanent epsilon),
  // independent of the number of rounds.
  double LongitudinalEpsilonBound() const;

 private:
  RandomizedResponse permanent_;
  RandomizedResponse instantaneous_;
  uint64_t client_secret_;
};

}  // namespace bitpush

#endif  // BITPUSH_LDP_MEMOIZATION_H_
