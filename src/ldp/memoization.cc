#include "ldp/memoization.h"

#include "util/check.h"

namespace bitpush {
namespace {

// Mixes the identifying tuple into a single 64-bit seed (SplitMix-style
// avalanche via Rng's seeding).
uint64_t MixSeed(uint64_t secret, int64_t value_id, int bit_index) {
  uint64_t h = secret;
  h ^= static_cast<uint64_t>(value_id) * 0x9e3779b97f4a7c15ULL;
  h ^= (static_cast<uint64_t>(bit_index) + 1) * 0xbf58476d1ce4e5b9ULL;
  return h;
}

}  // namespace

MemoizedResponder::MemoizedResponder(double permanent_epsilon,
                                     double instantaneous_epsilon,
                                     uint64_t client_secret)
    : permanent_(RandomizedResponse::FromEpsilon(permanent_epsilon)),
      instantaneous_(RandomizedResponse::FromEpsilon(instantaneous_epsilon)),
      client_secret_(client_secret) {
  BITPUSH_CHECK(permanent_.enabled())
      << "memoization without a permanent layer is plain RR";
}

int MemoizedResponder::PermanentBit(int64_t value_id, int bit_index,
                                    int true_bit) const {
  BITPUSH_CHECK(true_bit == 0 || true_bit == 1);
  // The permanent draw is a pure function of (secret, value, bit index):
  // re-deriving it in any round yields the same noisy bit, so nothing new
  // leaks on repetition.
  Rng derivation(MixSeed(client_secret_, value_id, bit_index));
  return permanent_.Apply(true_bit, derivation);
}

int MemoizedResponder::Report(int64_t value_id, int bit_index, int true_bit,
                              Rng& rng) const {
  return instantaneous_.Apply(PermanentBit(value_id, bit_index, true_bit),
                              rng);
}

double MemoizedResponder::EffectiveTruthProbability() const {
  const double p1 = permanent_.truth_probability();
  const double p2 = instantaneous_.truth_probability();
  return p1 * p2 + (1.0 - p1) * (1.0 - p2);
}

double MemoizedResponder::Unbias(double reported_mean) const {
  const double p = EffectiveTruthProbability();
  return (reported_mean - (1.0 - p)) / (2.0 * p - 1.0);
}

double MemoizedResponder::LongitudinalEpsilonBound() const {
  return permanent_.epsilon();
}

}  // namespace bitpush
