#include "ldp/ding.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace bitpush {

DingMechanism::DingMechanism(double epsilon, double low, double high)
    : epsilon_(epsilon),
      low_(low),
      high_(high),
      exp_eps_(std::exp(epsilon)) {
  BITPUSH_CHECK_GT(epsilon, 0.0);
  BITPUSH_CHECK_LT(low, high);
}

double DingMechanism::ReportProbability(double x) const {
  const double scaled = (std::clamp(x, low_, high_) - low_) / (high_ - low_);
  return 1.0 / (exp_eps_ + 1.0) +
         scaled * (exp_eps_ - 1.0) / (exp_eps_ + 1.0);
}

double DingMechanism::Privatize(double x, Rng& rng) const {
  const double report =
      rng.NextBernoulli(ReportProbability(x)) ? 1.0 : 0.0;
  const double unbiased_scaled =
      (report * (exp_eps_ + 1.0) - 1.0) / (exp_eps_ - 1.0);
  return low_ + unbiased_scaled * (high_ - low_);
}

}  // namespace bitpush
