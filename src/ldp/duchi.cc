#include "ldp/duchi.h"

#include <algorithm>

#include "util/check.h"

namespace bitpush {

DuchiMechanism::DuchiMechanism(double epsilon, double low, double high)
    : rr_(RandomizedResponse::FromEpsilon(epsilon)), low_(low), high_(high) {
  BITPUSH_CHECK_LT(low, high);
}

double DuchiMechanism::Privatize(double x, Rng& rng) const {
  const double scaled =
      (std::clamp(x, low_, high_) - low_) / (high_ - low_);
  const int bit = rng.NextBernoulli(scaled) ? 1 : 0;
  const double unbiased = rr_.Unbias(rr_.Apply(bit, rng));
  return low_ + unbiased * (high_ - low_);
}

std::string DuchiMechanism::name() const {
  return rr_.enabled() ? "duchi" : "randomized_rounding";
}

}  // namespace bitpush
