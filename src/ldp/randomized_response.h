// Binary randomized response (Warner 1965), the building block that gives
// bit-pushing its epsilon-LDP guarantee (Section 3.3): a private bit y is
// reported truthfully with probability p = exp(eps) / (1 + exp(eps)) and
// flipped otherwise; the server unbiases a report r as (r - (1-p)) / (2p-1).

#ifndef BITPUSH_LDP_RANDOMIZED_RESPONSE_H_
#define BITPUSH_LDP_RANDOMIZED_RESPONSE_H_

#include <cstdint>

#include "rng/rng.h"

namespace bitpush {

class RandomizedResponse {
 public:
  // Creates an epsilon-LDP randomized response; `epsilon` must be > 0.
  explicit RandomizedResponse(double epsilon);

  // A pass-through instance (p = 1, no noise, Unbias is the identity).
  // Used when the protocol runs without a DP guarantee.
  static RandomizedResponse Disabled();

  // Creates from epsilon, treating epsilon <= 0 as Disabled(). This matches
  // the convention used by the protocol configs ("epsilon = 0 turns DP
  // off").
  static RandomizedResponse FromEpsilon(double epsilon);

  // Perturbs one bit (bit must be 0 or 1).
  int Apply(int bit, Rng& rng) const;

  // Draws one keep/flip decision, consuming exactly the randomness Apply
  // consumes for one report (none when disabled). Returns true when the
  // report should be flipped. Lets columnar callers reproduce the
  // per-report stream bit-for-bit: drawing DrawFlip in report order and
  // XOR-ing the resulting mask is identical to calling Apply per report.
  bool DrawFlip(Rng& rng) const {
    return enabled_ && !rng.NextBernoulli(p_);
  }

  // Bulk form of Apply over a packed bit vector (layout of
  // src/kernels/kernels.h): flips each of the n_bits bits of `words`
  // independently with probability flip_probability(), restricted to
  // positions whose `gate` bit is set (pass nullptr to flip every
  // position). The flip mask is drawn from `rng` by
  // kernels::FillBernoulliWords, so the outcome does not depend on the
  // dispatched kernel. No-op (and no rng consumption) when disabled.
  void ApplyToWords(uint64_t* words, const uint64_t* gate, int64_t n_bits,
                    Rng& rng) const;

  // Probability a reported bit is flipped: 1 - p = 1 / (1 + e^eps), in
  // (0, 1/2] when enabled; 0.0 when disabled.
  double flip_probability() const { return enabled_ ? 1.0 - p_ : 0.0; }

  // Unbiases a reported bit — or, by linearity, a mean of reported bits.
  double Unbias(double reported) const;

  bool enabled() const { return enabled_; }
  double epsilon() const { return epsilon_; }
  // Probability of reporting the bit truthfully.
  double truth_probability() const { return p_; }

  // Variance of one unbiased report around the true bit:
  // p(1-p)/(2p-1)^2 = exp(eps)/(exp(eps)-1)^2, independent of the bit value
  // (Section 3.3). Zero when disabled.
  double ReportVariance() const;

 private:
  RandomizedResponse(double epsilon, double p, bool enabled);

  double epsilon_;
  double p_;
  bool enabled_;
};

}  // namespace bitpush

#endif  // BITPUSH_LDP_RANDOMIZED_RESPONSE_H_
