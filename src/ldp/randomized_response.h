// Binary randomized response (Warner 1965), the building block that gives
// bit-pushing its epsilon-LDP guarantee (Section 3.3): a private bit y is
// reported truthfully with probability p = exp(eps) / (1 + exp(eps)) and
// flipped otherwise; the server unbiases a report r as (r - (1-p)) / (2p-1).

#ifndef BITPUSH_LDP_RANDOMIZED_RESPONSE_H_
#define BITPUSH_LDP_RANDOMIZED_RESPONSE_H_

#include "rng/rng.h"

namespace bitpush {

class RandomizedResponse {
 public:
  // Creates an epsilon-LDP randomized response; `epsilon` must be > 0.
  explicit RandomizedResponse(double epsilon);

  // A pass-through instance (p = 1, no noise, Unbias is the identity).
  // Used when the protocol runs without a DP guarantee.
  static RandomizedResponse Disabled();

  // Creates from epsilon, treating epsilon <= 0 as Disabled(). This matches
  // the convention used by the protocol configs ("epsilon = 0 turns DP
  // off").
  static RandomizedResponse FromEpsilon(double epsilon);

  // Perturbs one bit (bit must be 0 or 1).
  int Apply(int bit, Rng& rng) const;

  // Unbiases a reported bit — or, by linearity, a mean of reported bits.
  double Unbias(double reported) const;

  bool enabled() const { return enabled_; }
  double epsilon() const { return epsilon_; }
  // Probability of reporting the bit truthfully.
  double truth_probability() const { return p_; }

  // Variance of one unbiased report around the true bit:
  // p(1-p)/(2p-1)^2 = exp(eps)/(exp(eps)-1)^2, independent of the bit value
  // (Section 3.3). Zero when disabled.
  double ReportVariance() const;

 private:
  RandomizedResponse(double epsilon, double p, bool enabled);

  double epsilon_;
  double p_;
  bool enabled_;
};

}  // namespace bitpush

#endif  // BITPUSH_LDP_RANDOMIZED_RESPONSE_H_
