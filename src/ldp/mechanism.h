// Common interface for the value-level baselines the paper compares against
// (Section 2 and Section 4): each client privatizes its scalar, the server
// averages the unbiased reports.

#ifndef BITPUSH_LDP_MECHANISM_H_
#define BITPUSH_LDP_MECHANISM_H_

#include <string>
#include <vector>

#include "rng/rng.h"

namespace bitpush {

class ScalarMechanism {
 public:
  virtual ~ScalarMechanism() = default;

  // Produces this client's report for input `x`. Reports are constructed so
  // that E[Privatize(x)] = clamp(x, low, high); the server-side mean
  // estimator is simply the average of reports.
  virtual double Privatize(double x, Rng& rng) const = 0;

  // Human-readable label for experiment output.
  virtual std::string name() const = 0;

  // Averages Privatize over all values: the baseline mean estimator.
  double EstimateMean(const std::vector<double>& values, Rng& rng) const;
};

}  // namespace bitpush

#endif  // BITPUSH_LDP_MECHANISM_H_
