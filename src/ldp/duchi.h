// Duchi-style one-bit mean estimation (Section 2): the input is pre-scaled
// to [0, 1], randomized-rounded to a single bit (report 1 with probability
// equal to the scaled value), optionally passed through randomized response
// for an epsilon-LDP guarantee, then unbiased and rescaled at the server.

#ifndef BITPUSH_LDP_DUCHI_H_
#define BITPUSH_LDP_DUCHI_H_

#include <string>

#include "ldp/mechanism.h"
#include "ldp/randomized_response.h"

namespace bitpush {

class DuchiMechanism : public ScalarMechanism {
 public:
  // Values are clamped to [low, high] before scaling. epsilon <= 0 disables
  // the randomized-response stage (pure randomized rounding).
  DuchiMechanism(double epsilon, double low, double high);

  double Privatize(double x, Rng& rng) const override;
  std::string name() const override;

 private:
  RandomizedResponse rr_;
  double low_;
  double high_;
};

}  // namespace bitpush

#endif  // BITPUSH_LDP_DUCHI_H_
