#include "ldp/dithering.h"

#include <algorithm>

#include "util/check.h"

namespace bitpush {

SubtractiveDithering::SubtractiveDithering(double epsilon, double low,
                                           double high)
    : rr_(RandomizedResponse::FromEpsilon(epsilon)), low_(low), high_(high) {
  BITPUSH_CHECK_LT(low, high);
}

double SubtractiveDithering::Privatize(double x, Rng& rng) const {
  const double scaled = (std::clamp(x, low_, high_) - low_) / (high_ - low_);
  const double h = rng.NextDouble();  // shared randomness, known to server
  const int bit = scaled >= h ? 1 : 0;
  const double unbiased_bit = rr_.Unbias(rr_.Apply(bit, rng));
  const double estimate = unbiased_bit + h - 0.5;
  return low_ + estimate * (high_ - low_);
}

}  // namespace bitpush
