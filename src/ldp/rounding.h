// The other one-bit value encodings of Ben-Basat et al. (2020), besides
// subtractive dithering. Footnote 3 of the paper: "When we evaluated in our
// setting several approaches that were described in [3], subtractive
// dithering was a clear frontrunner." These two reproduce that comparison:
//
//   * DeterministicRounding — report 1{x >= midpoint}; the estimate is L or
//     H. Zero shared randomness, but *biased* for any input that is not an
//     endpoint.
//   * NonSubtractiveDithering — report b = 1{x_scaled >= h} for shared
//     h ~ U[0,1), estimate b (without subtracting the dither). Unbiased,
//     but per-report variance x(1-x) — up to 3x subtractive dithering's
//     constant 1/12, and maximal exactly in the middle of the range.

#ifndef BITPUSH_LDP_ROUNDING_H_
#define BITPUSH_LDP_ROUNDING_H_

#include <string>

#include "ldp/mechanism.h"
#include "ldp/randomized_response.h"

namespace bitpush {

class DeterministicRounding : public ScalarMechanism {
 public:
  // Values clamp to [low, high]; epsilon <= 0 disables randomized
  // response.
  DeterministicRounding(double epsilon, double low, double high);

  double Privatize(double x, Rng& rng) const override;
  std::string name() const override { return "deterministic_rounding"; }

 private:
  RandomizedResponse rr_;
  double low_;
  double high_;
};

class NonSubtractiveDithering : public ScalarMechanism {
 public:
  NonSubtractiveDithering(double epsilon, double low, double high);

  double Privatize(double x, Rng& rng) const override;
  std::string name() const override { return "nonsubtractive_dithering"; }

 private:
  RandomizedResponse rr_;
  double low_;
  double high_;
};

}  // namespace bitpush

#endif  // BITPUSH_LDP_ROUNDING_H_
