#include "ldp/randomized_response.h"

#include <cmath>
#include <limits>
#include <vector>

#include "kernels/kernels.h"
#include "util/check.h"

namespace bitpush {

RandomizedResponse::RandomizedResponse(double epsilon, double p, bool enabled)
    : epsilon_(epsilon), p_(p), enabled_(enabled) {}

RandomizedResponse::RandomizedResponse(double epsilon)
    : RandomizedResponse(epsilon, std::exp(epsilon) / (1.0 + std::exp(epsilon)),
                         /*enabled=*/true) {
  BITPUSH_CHECK_GT(epsilon, 0.0);
}

RandomizedResponse RandomizedResponse::Disabled() {
  return RandomizedResponse(std::numeric_limits<double>::infinity(), 1.0,
                            /*enabled=*/false);
}

RandomizedResponse RandomizedResponse::FromEpsilon(double epsilon) {
  if (epsilon <= 0.0) return Disabled();
  return RandomizedResponse(epsilon);
}

int RandomizedResponse::Apply(int bit, Rng& rng) const {
  BITPUSH_CHECK(bit == 0 || bit == 1);
  if (!enabled_) return bit;
  return rng.NextBernoulli(p_) ? bit : 1 - bit;
}

void RandomizedResponse::ApplyToWords(uint64_t* words, const uint64_t* gate,
                                      int64_t n_bits, Rng& rng) const {
  BITPUSH_CHECK(words != nullptr);
  BITPUSH_CHECK_GE(n_bits, 0);
  if (!enabled_ || n_bits == 0) return;
  const int64_t n_words = kernels::WordsForBits(n_bits);
  std::vector<uint64_t> mask(static_cast<size_t>(n_words));
  kernels::FillBernoulliWords(flip_probability(), n_bits, rng, mask.data());
  const kernels::KernelOps& ops = kernels::ActiveKernel();
  if (gate == nullptr) {
    ops.xor_words(words, mask.data(), n_words);
  } else {
    ops.xor_masked_words(words, mask.data(), gate, n_words);
  }
}

double RandomizedResponse::Unbias(double reported) const {
  if (!enabled_) return reported;
  return (reported - (1.0 - p_)) / (2.0 * p_ - 1.0);
}

double RandomizedResponse::ReportVariance() const {
  if (!enabled_) return 0.0;
  const double q = 2.0 * p_ - 1.0;
  return p_ * (1.0 - p_) / (q * q);
}

}  // namespace bitpush
