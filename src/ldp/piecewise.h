// The piecewise mechanism of Wang et al. (ICDE 2019), the "piecewise"
// baseline of Sections 2 and 4.2. The input is scaled to [-1, 1]; the output
// is drawn from a piecewise-constant density on [-C, C] concentrated around
// the input, where C = (exp(eps/2) + 1) / (exp(eps/2) - 1). The report is
// already an unbiased estimate of the scaled input.

#ifndef BITPUSH_LDP_PIECEWISE_H_
#define BITPUSH_LDP_PIECEWISE_H_

#include <string>

#include "ldp/mechanism.h"

namespace bitpush {

class PiecewiseMechanism : public ScalarMechanism {
 public:
  // `epsilon` must be > 0; values are clamped to [low, high].
  PiecewiseMechanism(double epsilon, double low, double high);

  double Privatize(double x, Rng& rng) const override;
  std::string name() const override { return "piecewise"; }

  // Half-width of the output domain for the scaled input.
  double output_bound() const { return c_; }

 private:
  double epsilon_;
  double low_;
  double high_;
  double c_;         // (e^{eps/2}+1)/(e^{eps/2}-1)
  double p_center_;  // probability of sampling inside [l(t), r(t)]
};

}  // namespace bitpush

#endif  // BITPUSH_LDP_PIECEWISE_H_
