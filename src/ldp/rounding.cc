#include "ldp/rounding.h"

#include <algorithm>

#include "util/check.h"

namespace bitpush {

DeterministicRounding::DeterministicRounding(double epsilon, double low,
                                             double high)
    : rr_(RandomizedResponse::FromEpsilon(epsilon)), low_(low), high_(high) {
  BITPUSH_CHECK_LT(low, high);
}

double DeterministicRounding::Privatize(double x, Rng& rng) const {
  const double midpoint = (low_ + high_) / 2.0;
  const int bit = std::clamp(x, low_, high_) >= midpoint ? 1 : 0;
  const double unbiased = rr_.Unbias(rr_.Apply(bit, rng));
  // The RR layer is unbiased for the *bit*; the rounding itself is not
  // unbiased for x — that is the point of this baseline.
  return low_ + unbiased * (high_ - low_);
}

NonSubtractiveDithering::NonSubtractiveDithering(double epsilon, double low,
                                                 double high)
    : rr_(RandomizedResponse::FromEpsilon(epsilon)), low_(low), high_(high) {
  BITPUSH_CHECK_LT(low, high);
}

double NonSubtractiveDithering::Privatize(double x, Rng& rng) const {
  const double scaled = (std::clamp(x, low_, high_) - low_) / (high_ - low_);
  const int bit = scaled >= rng.NextDouble() ? 1 : 0;
  const double unbiased = rr_.Unbias(rr_.Apply(bit, rng));
  return low_ + unbiased * (high_ - low_);
}

}  // namespace bitpush
