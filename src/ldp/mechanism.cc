#include "ldp/mechanism.h"

#include "stats/welford.h"
#include "util/check.h"

namespace bitpush {

double ScalarMechanism::EstimateMean(const std::vector<double>& values,
                                     Rng& rng) const {
  BITPUSH_CHECK(!values.empty());
  Welford acc;
  for (const double x : values) acc.Add(Privatize(x, rng));
  return acc.mean();
}

}  // namespace bitpush
