#include "ldp/laplace.h"

#include <algorithm>

#include "rng/distributions.h"
#include "util/check.h"

namespace bitpush {

LaplaceMechanism::LaplaceMechanism(double epsilon, double low, double high)
    : low_(low), high_(high), scale_((high - low) / epsilon) {
  BITPUSH_CHECK_GT(epsilon, 0.0);
  BITPUSH_CHECK_LT(low, high);
}

double LaplaceMechanism::Privatize(double x, Rng& rng) const {
  return std::clamp(x, low_, high_) + SampleLaplace(rng, 0.0, scale_);
}

}  // namespace bitpush
