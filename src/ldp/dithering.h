// Subtractive dithering (Ben-Basat, Mitzenmacher & Vargaftik 2020), the
// strongest one-bit baseline in the paper (Section 2): for input x scaled to
// [0, 1] the client samples shared randomness h ~ U[0, 1) and sends
// b = 1{x >= h}; the server, which knows h, estimates x as b + h - 0.5.
// To compare under LDP the output bit is wrapped in randomized response and
// unbiased before the dither offset is applied (Section 2: "we apply
// randomized response to the input-dependent output b to get an LDP
// guarantee").

#ifndef BITPUSH_LDP_DITHERING_H_
#define BITPUSH_LDP_DITHERING_H_

#include <string>

#include "ldp/mechanism.h"
#include "ldp/randomized_response.h"

namespace bitpush {

class SubtractiveDithering : public ScalarMechanism {
 public:
  // Values are clamped to [low, high]. epsilon <= 0 runs the plain
  // (non-private) dithering protocol.
  SubtractiveDithering(double epsilon, double low, double high);

  double Privatize(double x, Rng& rng) const override;
  std::string name() const override { return "dithering"; }

 private:
  RandomizedResponse rr_;
  double low_;
  double high_;
};

}  // namespace bitpush

#endif  // BITPUSH_LDP_DITHERING_H_
