#include "ldp/piecewise.h"

#include <algorithm>
#include <cmath>

#include "rng/distributions.h"
#include "util/check.h"

namespace bitpush {

PiecewiseMechanism::PiecewiseMechanism(double epsilon, double low, double high)
    : epsilon_(epsilon), low_(low), high_(high) {
  BITPUSH_CHECK_GT(epsilon, 0.0);
  BITPUSH_CHECK_LT(low, high);
  const double half = std::exp(epsilon_ / 2.0);
  c_ = (half + 1.0) / (half - 1.0);
  p_center_ = half / (half + 1.0);
}

double PiecewiseMechanism::Privatize(double x, Rng& rng) const {
  // Scale to t in [-1, 1].
  const double t =
      2.0 * (std::clamp(x, low_, high_) - low_) / (high_ - low_) - 1.0;
  // High-probability central interval [l, r] with r - l = C - 1.
  const double l = (c_ + 1.0) / 2.0 * t - (c_ - 1.0) / 2.0;
  const double r = l + c_ - 1.0;

  double report;
  if (rng.NextBernoulli(p_center_)) {
    report = SampleUniform(rng, l, r);
  } else {
    // Uniform over [-C, l) U (r, C]; the two side intervals have total
    // length (l + C) + (C - r) = C + 1.
    const double left_length = l + c_;
    const double right_length = c_ - r;
    const double u = rng.NextDouble() * (left_length + right_length);
    report = u < left_length ? -c_ + u : r + (u - left_length);
  }
  // Scale back to the value domain.
  return low_ + (report + 1.0) / 2.0 * (high_ - low_);
}

}  // namespace bitpush
