// The Laplace mechanism baseline: each client reports its (clamped) value
// plus Laplace((high - low) / eps) noise. The paper omits it from the plots
// because its error is uniformly 2-3x worse than the other baselines
// (Section 4); we include it so that claim is reproducible.

#ifndef BITPUSH_LDP_LAPLACE_H_
#define BITPUSH_LDP_LAPLACE_H_

#include <string>

#include "ldp/mechanism.h"

namespace bitpush {

class LaplaceMechanism : public ScalarMechanism {
 public:
  // `epsilon` must be > 0; values are clamped to [low, high], which fixes
  // the sensitivity at high - low.
  LaplaceMechanism(double epsilon, double low, double high);

  double Privatize(double x, Rng& rng) const override;
  std::string name() const override { return "laplace"; }

  double scale() const { return scale_; }

 private:
  double low_;
  double high_;
  double scale_;
};

}  // namespace bitpush

#endif  // BITPUSH_LDP_LAPLACE_H_
