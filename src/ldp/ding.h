// The 1-bit mean-estimation mechanism of Ding, Kulkarni & Yekhanin
// (NeurIPS 2017) — the mechanism behind Windows telemetry collection,
// cited by the paper as [10] ("Similar ideas have been deployed for
// Windows app usage-data collection"). For x in [0, m] the client reports
// one bit drawn as
//
//   P[report = 1] = 1/(e^eps + 1) + (x/m) * (e^eps - 1)/(e^eps + 1),
//
// which is eps-LDP by construction; the server's unbiased per-report
// estimate is m * (report * (e^eps + 1) - 1) / (e^eps - 1).

#ifndef BITPUSH_LDP_DING_H_
#define BITPUSH_LDP_DING_H_

#include <string>

#include "ldp/mechanism.h"

namespace bitpush {

class DingMechanism : public ScalarMechanism {
 public:
  // `epsilon` must be > 0; values are clamped to [low, high].
  DingMechanism(double epsilon, double low, double high);

  double Privatize(double x, Rng& rng) const override;
  std::string name() const override { return "ding"; }

  // Probability of reporting 1 for input x (exposed for the LDP test).
  double ReportProbability(double x) const;

 private:
  double epsilon_;
  double low_;
  double high_;
  double exp_eps_;
};

}  // namespace bitpush

#endif  // BITPUSH_LDP_DING_H_
