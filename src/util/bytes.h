// Shared byte-level encoding helpers and CRC32.
//
// One fixed-width little-endian vocabulary serves every serialized surface
// of the library: the network frames in federated/wire.h and the durable
// records of the persistence subsystem (src/persist/). Keeping the
// primitives in util/ lets core types (PrivacyMeter, BitHistogram) gain
// Encode/Decode without depending on the federated layer.
//
// Every Get* helper is bounds-checked and overflow-safe: on failure it
// returns false and leaves `*offset` and `*out` untouched, so decoders
// compose into all-or-nothing parses. Collection readers cap the declared
// element count against the bytes actually remaining, so a hostile length
// field cannot trigger a huge allocation.

#ifndef BITPUSH_UTIL_BYTES_H_
#define BITPUSH_UTIL_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bitpush {
namespace bytes {

void PutByte(uint8_t value, std::vector<uint8_t>* out);
void PutUint32(uint32_t value, std::vector<uint8_t>* out);
void PutUint64(uint64_t value, std::vector<uint8_t>* out);
void PutInt64(int64_t value, std::vector<uint8_t>* out);
// Raw IEEE-754 bits; NaN payloads round-trip exactly. Callers that must
// reject non-finite values validate after GetDouble.
void PutDouble(double value, std::vector<uint8_t>* out);
// 4-byte length prefix + raw bytes.
void PutString(const std::string& value, std::vector<uint8_t>* out);
// 4-byte count prefix + fixed-width elements.
void PutInt64Vector(const std::vector<int64_t>& values,
                    std::vector<uint8_t>* out);
void PutDoubleVector(const std::vector<double>& values,
                     std::vector<uint8_t>* out);

bool GetByte(const std::vector<uint8_t>& buffer, size_t* offset,
             uint8_t* out);
bool GetUint32(const std::vector<uint8_t>& buffer, size_t* offset,
               uint32_t* out);
bool GetUint64(const std::vector<uint8_t>& buffer, size_t* offset,
               uint64_t* out);
bool GetInt64(const std::vector<uint8_t>& buffer, size_t* offset,
              int64_t* out);
bool GetDouble(const std::vector<uint8_t>& buffer, size_t* offset,
               double* out);
bool GetString(const std::vector<uint8_t>& buffer, size_t* offset,
               std::string* out);
bool GetInt64Vector(const std::vector<uint8_t>& buffer, size_t* offset,
                    std::vector<int64_t>* out);
bool GetDoubleVector(const std::vector<uint8_t>& buffer, size_t* offset,
                     std::vector<double>* out);

// CRC-32 (IEEE 802.3 polynomial, reflected), the integrity check on every
// persisted journal record and snapshot payload.
uint32_t Crc32(const uint8_t* data, size_t size);
uint32_t Crc32(const std::vector<uint8_t>& data);

}  // namespace bytes
}  // namespace bitpush

#endif  // BITPUSH_UTIL_BYTES_H_
