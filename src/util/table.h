// Console table printing for experiment output.
//
// The figure-reproduction binaries in bench/ print the series the paper
// plots; Table keeps the columns aligned so the output is readable both by
// humans and by simple downstream plotting scripts (the format is also valid
// tab-less CSV when printed with Separator(",")).

#ifndef BITPUSH_UTIL_TABLE_H_
#define BITPUSH_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bitpush {

class Table {
 public:
  // Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  // Starts a new row. Subsequent Add* calls fill it left to right.
  Table& NewRow();
  Table& AddCell(const std::string& value);
  Table& AddInt(int64_t value);
  // `precision` is the number of significant digits (printf %.*g).
  Table& AddDouble(double value, int precision = 5);

  // Renders the table with space-padded, aligned columns.
  std::string ToString() const;
  // Renders as RFC-4180-style CSV (cells containing commas, quotes or
  // newlines are quoted; embedded quotes doubled).
  std::string ToCsv() const;
  // Writes ToString() to stdout.
  void Print() const;
  // Appends ToCsv() to `path`; returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

  // Raw cells, for exporters that re-serialize the table (see
  // bench/bench_common.h).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bitpush

#endif  // BITPUSH_UTIL_TABLE_H_
