#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace bitpush {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  BITPUSH_CHECK(!headers_.empty());
}

Table& Table::NewRow() {
  if (!rows_.empty()) {
    BITPUSH_CHECK_EQ(rows_.back().size(), headers_.size())
        << "previous row incomplete";
  }
  rows_.emplace_back();
  return *this;
}

Table& Table::AddCell(const std::string& value) {
  BITPUSH_CHECK(!rows_.empty()) << "call NewRow() first";
  BITPUSH_CHECK_LT(rows_.back().size(), headers_.size()) << "row overflow";
  rows_.back().push_back(value);
  return *this;
}

Table& Table::AddInt(int64_t value) { return AddCell(std::to_string(value)); }

Table& Table::AddDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
  return AddCell(buffer);
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << "  ";
      out << cells[c];
      for (size_t pad = cells[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      out << cell;
      return;
    }
    out << '"';
    for (const char c : cell) {
      if (c == '"') out << '"';
      out << c;
    }
    out << '"';
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      emit_cell(cells[c]);
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

bool Table::WriteCsv(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) return false;
  const std::string csv = ToCsv();
  const bool ok =
      std::fwrite(csv.data(), 1, csv.size(), file) == csv.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace bitpush
