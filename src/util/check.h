// Invariant-checking macros.
//
// The library does not use exceptions (see DESIGN.md); violated invariants
// are programming errors and abort the process with a location and message.
// BITPUSH_CHECK is always on (including release builds) because the cost of
// the checks is negligible next to the sampling loops they guard.

#ifndef BITPUSH_UTIL_CHECK_H_
#define BITPUSH_UTIL_CHECK_H_

#include <sstream>
#include <string>

namespace bitpush {
namespace internal {

// Aborts the process after printing `message` with its source location.
[[noreturn]] void CheckFailed(const char* file, int line,
                              const std::string& message);

// Accumulates a failure message via operator<< and aborts on destruction.
// Used as the right-hand side of the BITPUSH_CHECK macros so call sites can
// stream extra context: BITPUSH_CHECK(x > 0) << "x=" << x;
class CheckFailureStream {
 public:
  CheckFailureStream(const char* file, int line, const char* condition);
  [[noreturn]] ~CheckFailureStream();

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace bitpush

#define BITPUSH_CHECK(condition)                                       \
  if (condition) {                                                     \
  } else /* NOLINT */                                                  \
    ::bitpush::internal::CheckFailureStream(__FILE__, __LINE__,        \
                                            #condition)

#define BITPUSH_CHECK_EQ(a, b) BITPUSH_CHECK((a) == (b))
#define BITPUSH_CHECK_NE(a, b) BITPUSH_CHECK((a) != (b))
#define BITPUSH_CHECK_LT(a, b) BITPUSH_CHECK((a) < (b))
#define BITPUSH_CHECK_LE(a, b) BITPUSH_CHECK((a) <= (b))
#define BITPUSH_CHECK_GT(a, b) BITPUSH_CHECK((a) > (b))
#define BITPUSH_CHECK_GE(a, b) BITPUSH_CHECK((a) >= (b))

#endif  // BITPUSH_UTIL_CHECK_H_
