#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace bitpush {
namespace internal {

void CheckFailed(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "BITPUSH_CHECK failed at %s:%d: %s\n", file, line,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

CheckFailureStream::CheckFailureStream(const char* file, int line,
                                       const char* condition)
    : file_(file), line_(line) {
  stream_ << condition << " ";
}

CheckFailureStream::~CheckFailureStream() {
  CheckFailed(file_, line_, stream_.str());
}

}  // namespace internal
}  // namespace bitpush
