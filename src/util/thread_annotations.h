// Clang Thread Safety Analysis annotations (-Wthread-safety), compiled
// away under GCC and other compilers without the capability attributes.
//
// The analysis only follows lock acquisitions it can see, and std::mutex
// / std::lock_guard carry no annotations in libstdc++ — so this header
// also provides the thin annotated wrappers (util::Mutex, util::MutexLock)
// the concurrent classes hold instead of naked std types. Under GCC the
// wrappers compile to exactly a std::mutex and a lock_guard; under Clang
// the CI build promotes -Wthread-safety to an error, so a guarded member
// touched without its mutex fails the build.

#ifndef BITPUSH_UTIL_THREAD_ANNOTATIONS_H_
#define BITPUSH_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define BITPUSH_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef BITPUSH_THREAD_ANNOTATION
#define BITPUSH_THREAD_ANNOTATION(x)
#endif

#define BITPUSH_CAPABILITY(x) BITPUSH_THREAD_ANNOTATION(capability(x))
#define BITPUSH_SCOPED_CAPABILITY BITPUSH_THREAD_ANNOTATION(scoped_lockable)
#define BITPUSH_GUARDED_BY(x) BITPUSH_THREAD_ANNOTATION(guarded_by(x))
#define BITPUSH_PT_GUARDED_BY(x) BITPUSH_THREAD_ANNOTATION(pt_guarded_by(x))
#define BITPUSH_ACQUIRE(...) \
  BITPUSH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BITPUSH_RELEASE(...) \
  BITPUSH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BITPUSH_REQUIRES(...) \
  BITPUSH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BITPUSH_EXCLUDES(...) \
  BITPUSH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define BITPUSH_NO_THREAD_SAFETY_ANALYSIS \
  BITPUSH_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bitpush::util {

// std::mutex with the capability attribute the analysis needs.
class BITPUSH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() BITPUSH_ACQUIRE() { mutex_.lock(); }
  void Unlock() BITPUSH_RELEASE() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
};

// RAII lock over util::Mutex — the annotated twin of std::lock_guard.
class BITPUSH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) BITPUSH_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() BITPUSH_RELEASE() { mutex_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace bitpush::util

#endif  // BITPUSH_UTIL_THREAD_ANNOTATIONS_H_
