#include "util/bytes.h"

#include <array>
#include <bit>

#include "util/check.h"

namespace bitpush {
namespace bytes {

void PutByte(uint8_t value, std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  out->push_back(value);
}

void PutUint32(uint32_t value, std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<uint8_t>(value >> shift));
  }
}

void PutUint64(uint64_t value, std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<uint8_t>(value >> shift));
  }
}

void PutInt64(int64_t value, std::vector<uint8_t>* out) {
  PutUint64(static_cast<uint64_t>(value), out);
}

void PutDouble(double value, std::vector<uint8_t>* out) {
  PutUint64(std::bit_cast<uint64_t>(value), out);
}

void PutString(const std::string& value, std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  PutUint32(static_cast<uint32_t>(value.size()), out);
  out->insert(out->end(), value.begin(), value.end());
}

void PutInt64Vector(const std::vector<int64_t>& values,
                    std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  PutUint32(static_cast<uint32_t>(values.size()), out);
  for (const int64_t value : values) PutInt64(value, out);
}

void PutDoubleVector(const std::vector<double>& values,
                     std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  PutUint32(static_cast<uint32_t>(values.size()), out);
  for (const double value : values) PutDouble(value, out);
}

bool GetByte(const std::vector<uint8_t>& buffer, size_t* offset,
             uint8_t* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  if (*offset >= buffer.size()) return false;
  *out = buffer[*offset];
  *offset += 1;
  return true;
}

bool GetUint32(const std::vector<uint8_t>& buffer, size_t* offset,
               uint32_t* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  if (*offset > buffer.size() || buffer.size() - *offset < 4) return false;
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(buffer[*offset + static_cast<size_t>(i)])
             << (8 * i);
  }
  *offset += 4;
  *out = value;
  return true;
}

bool GetUint64(const std::vector<uint8_t>& buffer, size_t* offset,
               uint64_t* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  if (*offset > buffer.size() || buffer.size() - *offset < 8) return false;
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(buffer[*offset + static_cast<size_t>(i)])
             << (8 * i);
  }
  *offset += 8;
  *out = value;
  return true;
}

bool GetInt64(const std::vector<uint8_t>& buffer, size_t* offset,
              int64_t* out) {
  BITPUSH_CHECK(out != nullptr);
  uint64_t raw = 0;
  if (!GetUint64(buffer, offset, &raw)) return false;
  *out = static_cast<int64_t>(raw);
  return true;
}

bool GetDouble(const std::vector<uint8_t>& buffer, size_t* offset,
               double* out) {
  BITPUSH_CHECK(out != nullptr);
  uint64_t raw = 0;
  if (!GetUint64(buffer, offset, &raw)) return false;
  *out = std::bit_cast<double>(raw);
  return true;
}

bool GetString(const std::vector<uint8_t>& buffer, size_t* offset,
               std::string* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = *offset;
  uint32_t length = 0;
  if (!GetUint32(buffer, &cursor, &length)) return false;
  if (buffer.size() - cursor < static_cast<size_t>(length)) return false;
  out->assign(buffer.begin() + static_cast<ptrdiff_t>(cursor),
              buffer.begin() + static_cast<ptrdiff_t>(cursor + length));
  *offset = cursor + length;
  return true;
}

bool GetInt64Vector(const std::vector<uint8_t>& buffer, size_t* offset,
                    std::vector<int64_t>* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = *offset;
  uint32_t count = 0;
  if (!GetUint32(buffer, &cursor, &count)) return false;
  if ((buffer.size() - cursor) / 8 < static_cast<size_t>(count)) return false;
  std::vector<int64_t> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    int64_t value = 0;
    if (!GetInt64(buffer, &cursor, &value)) return false;
    values.push_back(value);
  }
  *out = std::move(values);
  *offset = cursor;
  return true;
}

bool GetDoubleVector(const std::vector<uint8_t>& buffer, size_t* offset,
                     std::vector<double>* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = *offset;
  uint32_t count = 0;
  if (!GetUint32(buffer, &cursor, &count)) return false;
  if ((buffer.size() - cursor) / 8 < static_cast<size_t>(count)) return false;
  std::vector<double> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    double value = 0.0;
    if (!GetDouble(buffer, &cursor, &value)) return false;
    values.push_back(value);
  }
  *out = std::move(values);
  *offset = cursor;
  return true;
}

namespace {

std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = MakeCrc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ data[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::vector<uint8_t>& data) {
  return Crc32(data.data(), data.size());
}

}  // namespace bytes
}  // namespace bitpush
