// Minimal command-line flag parsing for the benchmark and example binaries.
//
// Flags are written as --name=value. Unrecognized flags abort with a usage
// message so typos in experiment sweeps are caught rather than silently
// running the default configuration.
//
// Example:
//   FlagSet flags;
//   int64_t n = 10000;
//   double eps = 1.0;
//   flags.AddInt64("n", &n, "number of clients");
//   flags.AddDouble("epsilon", &eps, "LDP epsilon (0 disables noise)");
//   flags.Parse(argc, argv);

#ifndef BITPUSH_UTIL_FLAGS_H_
#define BITPUSH_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bitpush {

class FlagSet {
 public:
  FlagSet() = default;

  FlagSet(const FlagSet&) = delete;
  FlagSet& operator=(const FlagSet&) = delete;

  // Registers a flag bound to `target`, which must outlive Parse(). The
  // current value of `target` is the default.
  void AddInt64(const std::string& name, int64_t* target,
                const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);

  // Parses argv, writing values into the bound targets. Aborts with a usage
  // message on an unknown flag or a malformed value. `--help` prints usage
  // and exits successfully.
  void Parse(int argc, char** argv) const;

  // Renders the usage message (flag names, types, defaults, help strings).
  std::string Usage(const std::string& program_name) const;

 private:
  enum class Type { kInt64, kDouble, kBool, kString };

  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_value;
  };

  void Add(const std::string& name, Type type, void* target,
           const std::string& help, const std::string& default_value);

  std::vector<Flag> flags_;
};

}  // namespace bitpush

#endif  // BITPUSH_UTIL_FLAGS_H_
