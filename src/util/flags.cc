#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/check.h"

namespace bitpush {
namespace {

// Splits "--name=value" into (name, value). Returns false if `arg` is not of
// that shape.
bool SplitFlag(const std::string& arg, std::string* name, std::string* value) {
  if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') return false;
  const size_t eq = arg.find('=');
  if (eq == std::string::npos) {
    *name = arg.substr(2);
    value->clear();
    return true;
  }
  *name = arg.substr(2, eq - 2);
  *value = arg.substr(eq + 1);
  return true;
}

bool ParseBoolValue(const std::string& value, bool* out) {
  if (value.empty() || value == "true" || value == "1") {
    *out = true;
    return true;
  }
  if (value == "false" || value == "0") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

void FlagSet::Add(const std::string& name, Type type, void* target,
                  const std::string& help, const std::string& default_value) {
  BITPUSH_CHECK(target != nullptr);
  for (const Flag& flag : flags_) {
    BITPUSH_CHECK_NE(flag.name, name) << "duplicate flag";
  }
  flags_.push_back(Flag{name, type, target, help, default_value});
}

void FlagSet::AddInt64(const std::string& name, int64_t* target,
                       const std::string& help) {
  Add(name, Type::kInt64, target, help, std::to_string(*target));
}

void FlagSet::AddDouble(const std::string& name, double* target,
                        const std::string& help) {
  Add(name, Type::kDouble, target, help, std::to_string(*target));
}

void FlagSet::AddBool(const std::string& name, bool* target,
                      const std::string& help) {
  Add(name, Type::kBool, target, help, *target ? "true" : "false");
}

void FlagSet::AddString(const std::string& name, std::string* target,
                        const std::string& help) {
  Add(name, Type::kString, target, help, *target);
}

std::string FlagSet::Usage(const std::string& program_name) const {
  std::ostringstream out;
  out << "Usage: " << program_name << " [flags]\n";
  for (const Flag& flag : flags_) {
    out << "  --" << flag.name << " (default " << flag.default_value << "): "
        << flag.help << "\n";
  }
  return out.str();
}

void FlagSet::Parse(int argc, char** argv) const {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string name;
    std::string value;
    if (!SplitFlag(arg, &name, &value)) {
      std::fprintf(stderr, "Unexpected argument: %s\n%s", arg.c_str(),
                   Usage(argv[0]).c_str());
      std::exit(EXIT_FAILURE);
    }
    if (name == "help") {
      std::fprintf(stdout, "%s", Usage(argv[0]).c_str());
      std::exit(EXIT_SUCCESS);
    }
    const Flag* match = nullptr;
    for (const Flag& flag : flags_) {
      if (flag.name == name) {
        match = &flag;
        break;
      }
    }
    if (match == nullptr) {
      std::fprintf(stderr, "Unknown flag: --%s\n%s", name.c_str(),
                   Usage(argv[0]).c_str());
      std::exit(EXIT_FAILURE);
    }
    bool ok = true;
    switch (match->type) {
      case Type::kInt64: {
        char* end = nullptr;
        const long long parsed = std::strtoll(value.c_str(), &end, 10);
        ok = !value.empty() && end != nullptr && *end == '\0';
        if (ok) *static_cast<int64_t*>(match->target) = parsed;
        break;
      }
      case Type::kDouble: {
        char* end = nullptr;
        const double parsed = std::strtod(value.c_str(), &end);
        ok = !value.empty() && end != nullptr && *end == '\0';
        if (ok) *static_cast<double*>(match->target) = parsed;
        break;
      }
      case Type::kBool:
        ok = ParseBoolValue(value, static_cast<bool*>(match->target));
        break;
      case Type::kString:
        *static_cast<std::string*>(match->target) = value;
        break;
    }
    if (!ok) {
      std::fprintf(stderr, "Bad value for --%s: '%s'\n%s", name.c_str(),
                   value.c_str(), Usage(argv[0]).c_str());
      std::exit(EXIT_FAILURE);
    }
  }
}

}  // namespace bitpush
