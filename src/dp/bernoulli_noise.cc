#include "dp/bernoulli_noise.h"

#include <cmath>

#include "rng/distributions.h"
#include "util/check.h"

namespace bitpush {

int64_t NoiseBitsForBudget(double epsilon, double delta) {
  BITPUSH_CHECK_GT(epsilon, 0.0);
  BITPUSH_CHECK_GT(delta, 0.0);
  BITPUSH_CHECK_LT(delta, 1.0);
  const double m = 32.0 * std::log(2.0 / delta) / (epsilon * epsilon);
  return static_cast<int64_t>(std::ceil(m));
}

std::vector<double> AddBinomialNoise(const std::vector<int64_t>& counts,
                                     int64_t noise_bits, Rng& rng) {
  BITPUSH_CHECK_GE(noise_bits, 0);
  std::vector<double> noisy;
  noisy.reserve(counts.size());
  const double mean_noise = static_cast<double>(noise_bits) / 2.0;
  for (const int64_t count : counts) {
    const int64_t noise = SampleBinomial(rng, noise_bits, 0.5);
    noisy.push_back(static_cast<double>(count) +
                    static_cast<double>(noise) - mean_noise);
  }
  return noisy;
}

double BinomialNoiseStddev(int64_t noise_bits) {
  BITPUSH_CHECK_GE(noise_bits, 0);
  return std::sqrt(static_cast<double>(noise_bits)) / 2.0;
}

}  // namespace bitpush
