#include "dp/sample_threshold.h"

#include <cmath>

#include "rng/distributions.h"
#include "util/check.h"

namespace bitpush {

SampleThresholdConfig SampleThresholdForBudget(double epsilon, double delta,
                                               double sampling_rate) {
  BITPUSH_CHECK_GT(epsilon, 0.0);
  BITPUSH_CHECK_GT(delta, 0.0);
  BITPUSH_CHECK_LT(delta, 1.0);
  BITPUSH_CHECK_GT(sampling_rate, 0.0);
  BITPUSH_CHECK_LE(sampling_rate, 1.0);

  const double a = 1.0 - std::exp(-epsilon);
  const double keep = sampling_rate * a;
  BITPUSH_CHECK_LT(keep, 1.0)
      << "sampling_rate too high for this epsilon; reduce the rate";
  const double tail_rate = -std::log(1.0 - keep);  // ln(1/(1 - s*a)) > 0
  const double threshold = 1.0 + std::log(1.0 / delta) / tail_rate;
  return SampleThresholdConfig{sampling_rate,
                               static_cast<int64_t>(std::ceil(threshold))};
}

std::vector<int64_t> SampleAndThreshold(const std::vector<int64_t>& counts,
                                        const SampleThresholdConfig& config,
                                        Rng& rng) {
  BITPUSH_CHECK_GT(config.sampling_rate, 0.0);
  BITPUSH_CHECK_LE(config.sampling_rate, 1.0);
  std::vector<int64_t> sampled;
  sampled.reserve(counts.size());
  for (const int64_t count : counts) {
    BITPUSH_CHECK_GE(count, 0);
    int64_t kept = SampleBinomial(rng, count, config.sampling_rate);
    if (kept < config.threshold) kept = 0;
    sampled.push_back(kept);
  }
  return sampled;
}

std::vector<double> UnbiasSampledCounts(const std::vector<int64_t>& sampled,
                                        double sampling_rate) {
  BITPUSH_CHECK_GT(sampling_rate, 0.0);
  std::vector<double> unbiased;
  unbiased.reserve(sampled.size());
  for (const int64_t count : sampled) {
    unbiased.push_back(static_cast<double>(count) / sampling_rate);
  }
  return unbiased;
}

}  // namespace bitpush
