// Privacy amplification by shuffling.
//
// Section 3.3's "distributed privacy guarantees" cites the shuffle-model
// line of work (Balcer-Cheu; Cheu's survey): if each of n clients applies
// an eps_local-LDP randomizer and a trusted shuffler strips report origins
// (which bit-pushing's anonymous bit reports naturally permit), the
// *central* guarantee against the analyst is much stronger than eps_local.
// We implement the widely used closed-form upper bound (Feldman, McSherry &
// Talwar-style analysis as consolidated in Feldman-McMillan-Talwar 2021):
//
//   eps_central <= log(1 + (e^{eps_local} - 1) *
//                          (4 * sqrt(2 log(4/delta) / ((e^{eps_local}+1) n))
//                           + 4 / n))
//
// valid when the bracketed term is < 1 (n large enough).

#ifndef BITPUSH_DP_SHUFFLE_AMPLIFICATION_H_
#define BITPUSH_DP_SHUFFLE_AMPLIFICATION_H_

#include <cstdint>

#include "dp/privacy_params.h"

namespace bitpush {

// Returns the amplified central budget for n shuffled eps_local reports at
// the given delta. If n is too small for the bound to apply, the local
// guarantee is returned unchanged (amplification never hurts).
PrivacyBudget ShuffleAmplifiedBudget(double epsilon_local, int64_t n,
                                     double delta);

// Smallest cohort for which the amplified central epsilon is at most
// `target_epsilon` (holding delta). Returns -1 if even huge cohorts cannot
// reach the target (target >= eps_local trivially returns 1).
int64_t RequiredCohortForCentralEpsilon(double epsilon_local,
                                        double target_epsilon, double delta);

}  // namespace bitpush

#endif  // BITPUSH_DP_SHUFFLE_AMPLIFICATION_H_
