// Differential-privacy parameter types and basic (sequential) composition.

#ifndef BITPUSH_DP_PRIVACY_PARAMS_H_
#define BITPUSH_DP_PRIVACY_PARAMS_H_

namespace bitpush {

// An (epsilon, delta) differential-privacy budget. delta == 0 is pure DP.
struct PrivacyBudget {
  double epsilon = 0.0;
  double delta = 0.0;

  // True if this budget provides any formal guarantee (epsilon > 0).
  bool enabled() const { return epsilon > 0.0; }
};

// Basic sequential composition: parameters add.
PrivacyBudget Compose(const PrivacyBudget& a, const PrivacyBudget& b);

// Variance of one unbiased randomized-response report at this epsilon:
// exp(eps) / (exp(eps) - 1)^2. Infinity as epsilon -> 0.
double RandomizedResponseVariance(double epsilon);

}  // namespace bitpush

#endif  // BITPUSH_DP_PRIVACY_PARAMS_H_
