#include "dp/privacy_params.h"

#include <cmath>

#include "util/check.h"

namespace bitpush {

PrivacyBudget Compose(const PrivacyBudget& a, const PrivacyBudget& b) {
  return PrivacyBudget{a.epsilon + b.epsilon, a.delta + b.delta};
}

double RandomizedResponseVariance(double epsilon) {
  BITPUSH_CHECK_GT(epsilon, 0.0);
  const double e = std::exp(epsilon);
  return e / ((e - 1.0) * (e - 1.0));
}

}  // namespace bitpush
