// Distributed Bernoulli/binomial noise for binary histograms (Balcer & Cheu
// style, Section 3.3): instead of each client fully masking its own bit
// (local DP), a pool of clients each contributes one fair random bit, so the
// aggregate noise is Binomial(m, 1/2) — comparable to central-DP noise. The
// server subtracts the expected noise m/2 to debias.

#ifndef BITPUSH_DP_BERNOULLI_NOISE_H_
#define BITPUSH_DP_BERNOULLI_NOISE_H_

#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace bitpush {

// Number of fair noise bits per bucket sufficient for an (epsilon, delta)
// guarantee: binomial noise with variance m/4 gives (epsilon, delta)-DP for
// sensitivity-1 counts when m >= 32 ln(2/delta) / epsilon^2 (standard
// binomial-mechanism bound, conservative constants).
int64_t NoiseBitsForBudget(double epsilon, double delta);

// Adds Binomial(noise_bits, 1/2) to each bucket count and subtracts the
// mean noise, returning debiased (possibly negative, fractional-mean)
// counts. Expected error per bucket is O(sqrt(noise_bits)).
std::vector<double> AddBinomialNoise(const std::vector<int64_t>& counts,
                                     int64_t noise_bits, Rng& rng);

// Expected absolute error the noise adds to one bucket
// (= stddev of Binomial(noise_bits, 1/2), i.e. sqrt(noise_bits)/2).
double BinomialNoiseStddev(int64_t noise_bits);

}  // namespace bitpush

#endif  // BITPUSH_DP_BERNOULLI_NOISE_H_
