#include "dp/shuffle_amplification.h"

#include <cmath>

#include "util/check.h"

namespace bitpush {

PrivacyBudget ShuffleAmplifiedBudget(double epsilon_local, int64_t n,
                                     double delta) {
  BITPUSH_CHECK_GT(epsilon_local, 0.0);
  BITPUSH_CHECK_GE(n, 1);
  BITPUSH_CHECK_GT(delta, 0.0);
  BITPUSH_CHECK_LT(delta, 1.0);

  const double e_local = std::exp(epsilon_local);
  const double dn = static_cast<double>(n);
  const double bracket =
      4.0 * std::sqrt(2.0 * std::log(4.0 / delta) / ((e_local + 1.0) * dn)) +
      4.0 / dn;
  if (bracket >= 1.0) {
    // Cohort too small for the closed form; fall back to the local
    // guarantee (which always holds).
    return PrivacyBudget{epsilon_local, 0.0};
  }
  const double amplified = std::log1p((e_local - 1.0) * bracket);
  // Amplification is an upper bound; never report worse than local.
  return PrivacyBudget{std::min(amplified, epsilon_local), delta};
}

int64_t RequiredCohortForCentralEpsilon(double epsilon_local,
                                        double target_epsilon,
                                        double delta) {
  BITPUSH_CHECK_GT(target_epsilon, 0.0);
  if (target_epsilon >= epsilon_local) return 1;
  // The amplified epsilon decreases in n; binary search over a generous
  // range.
  int64_t low = 1;
  int64_t high = int64_t{1} << 50;
  if (ShuffleAmplifiedBudget(epsilon_local, high, delta).epsilon >
      target_epsilon) {
    return -1;
  }
  while (low < high) {
    const int64_t mid = low + (high - low) / 2;
    if (ShuffleAmplifiedBudget(epsilon_local, mid, delta).epsilon <=
        target_epsilon) {
      high = mid;
    } else {
      low = mid + 1;
    }
  }
  return low;
}

}  // namespace bitpush
