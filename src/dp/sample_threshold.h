// Sample-and-threshold differential privacy for histograms
// (Bharadwaj & Cormode, AISTATS 2022), used in Section 3.3 ("random sampling
// is sufficient to give differential privacy, provided that very small
// counts are removed from the reporting") and in deployment (Section 4.3,
// central DP by thresholding reported bit counts inside the enclave).
//
// Each client's contribution to a histogram bucket is kept independently
// with probability `sampling_rate`; buckets whose sampled count falls below
// `threshold` are zeroed. Kept counts are unbiased by dividing by the
// sampling rate.

#ifndef BITPUSH_DP_SAMPLE_THRESHOLD_H_
#define BITPUSH_DP_SAMPLE_THRESHOLD_H_

#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace bitpush {

struct SampleThresholdConfig {
  double sampling_rate = 1.0;  // in (0, 1]
  int64_t threshold = 0;       // sampled counts below this are dropped
};

// Chooses a threshold sufficient for an (epsilon, delta) guarantee at the
// given sampling rate, using the simplified bound
//   threshold >= 1 + ln(1/delta) / ln(1 / (1 - sampling_rate * a)),
// with a = 1 - exp(-epsilon). This is the conservative closed form of the
// Bharadwaj-Cormode analysis; it is loose by a small constant, which only
// makes the mechanism more private. sampling_rate must satisfy
// sampling_rate * (1 - exp(-epsilon)) < 1 (always true for rate < 1).
SampleThresholdConfig SampleThresholdForBudget(double epsilon, double delta,
                                               double sampling_rate);

// Applies Bernoulli sampling then thresholding to per-bucket counts, where
// each unit of count is a distinct client contribution.
std::vector<int64_t> SampleAndThreshold(const std::vector<int64_t>& counts,
                                        const SampleThresholdConfig& config,
                                        Rng& rng);

// Unbiases sampled counts: kept counts are divided by the sampling rate
// (dropped buckets stay 0; the resulting small negative bias is the
// "negligible amount of noise" reported in Section 4.3).
std::vector<double> UnbiasSampledCounts(const std::vector<int64_t>& sampled,
                                        double sampling_rate);

}  // namespace bitpush

#endif  // BITPUSH_DP_SAMPLE_THRESHOLD_H_
