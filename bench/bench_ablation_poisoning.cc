// Ablation: poisoning robustness (Section 5). Adversarial clients try to
// bias the mean upward by reporting 1 on the most significant bit. Under
// local randomness they can *choose* that bit; under central randomness
// the server picks, and the attack collapses to flipping whatever bit was
// assigned. Expected: local-randomness bias grows with the adversary
// fraction by orders of magnitude more than central.

#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "core/bit_probabilities.h"
#include "data/census.h"
#include "federated/server.h"
#include "stats/welford.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t n = 10000;
  int64_t reps = 20;
  int64_t bits = 16;
  int64_t seed = 20240408;
  FlagSet flags;
  bench::BenchOutput output(&flags, "ablation_poisoning");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddInt64("bits", &bits, "bit depth b");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header("Ablation: poisoning, local vs central randomness",
                     "census ages + top-bit adversaries",
                     "n=" + std::to_string(n) + " bits=" +
                         std::to_string(bits) + " reps=" +
                         std::to_string(reps));

  Rng data_rng(static_cast<uint64_t>(seed));
  const Dataset data = CensusAges(n, data_rng);
  const FixedPointCodec codec =
      FixedPointCodec::Integer(static_cast<int>(bits));

  Table table({"adversary_frac", "randomness", "bias", "bias/true_mean"});
  for (const double fraction : std::vector<double>{0.0, 0.01, 0.05, 0.10}) {
    std::vector<Client> clients =
        MakePopulation(data.values(), ClientConfig{});
    ClientConfig adversarial;
    adversarial.adversary = AdversaryMode::kTopBitOne;
    const auto num_adversaries =
        static_cast<size_t>(fraction * static_cast<double>(n));
    for (size_t i = 0; i < num_adversaries; ++i) {
      clients[i] = Client(static_cast<int64_t>(i),
                          {data.values()[i]}, adversarial);
    }
    std::vector<int64_t> cohort;
    for (int64_t i = 0; i < n; ++i) cohort.push_back(i);

    const AggregationServer server(codec);
    for (const bool central : {false, true}) {
      RoundConfig config;
      // Uniform allocation exposes the full leverage of choosing the top
      // bit: under central randomness a poisoned report lands on a random
      // bit (expected weight (2^b - 1)/b), under local randomness always
      // on the 2^{b-1} bit.
      config.probabilities = UniformProbabilities(static_cast<int>(bits));
      config.central_randomness = central;
      Welford acc;
      Rng rng(static_cast<uint64_t>(seed) + 1);
      for (int64_t rep = 0; rep < reps; ++rep) {
        const RoundOutcome outcome =
            server.RunRound(clients, cohort, config, nullptr, rng);
        acc.Add(server.EstimateMean(outcome.histogram, 0.0) -
                data.truth().mean);
      }
      table.NewRow()
          .AddDouble(fraction, 3)
          .AddCell(central ? "central" : "local")
          .AddDouble(acc.mean(), 4)
          .AddDouble(acc.mean() / data.truth().mean, 4);
    }
  }
  output.AddTable(table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
