// Ablation: the exponents of adaptive bit-pushing — gamma for the round-1
// probe allocation and alpha for the learned round-2 allocation
// (alpha = 0.5 is the Lemma 3.3 optimum; alpha = 1 over-weights
// high-variance bits).

#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "core/adaptive.h"
#include "data/census.h"
#include "stats/repetition.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t n = 10000;
  int64_t reps = 150;
  int64_t bits = 16;
  int64_t seed = 20240406;
  FlagSet flags;
  bench::BenchOutput output(&flags, "ablation_alpha");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddInt64("bits", &bits, "bit depth b");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header("Ablation: adaptive exponents gamma and alpha",
                     "census ages",
                     "n=" + std::to_string(n) + " bits=" +
                         std::to_string(bits) + " reps=" +
                         std::to_string(reps));

  Rng data_rng(static_cast<uint64_t>(seed));
  const Dataset data = CensusAges(n, data_rng);
  const FixedPointCodec codec =
      FixedPointCodec::Integer(static_cast<int>(bits));
  const std::vector<uint64_t> codewords = codec.EncodeAll(data.values());

  Table table({"gamma", "alpha", "nrmse", "stderr"});
  for (const double gamma : std::vector<double>{0.0, 0.5, 1.0}) {
    for (const double alpha : std::vector<double>{0.25, 0.5, 1.0}) {
      AdaptiveConfig config;
      config.bits = static_cast<int>(bits);
      config.gamma = gamma;
      config.alpha = alpha;
      const ErrorStats stats = RunRepetitions(
          reps, static_cast<uint64_t>(seed) + 1, data.truth().mean,
          [&](Rng& rng) {
            return codec.Decode(
                RunAdaptiveBitPushing(codewords, config, rng)
                    .estimate_codeword);
          });
      table.NewRow()
          .AddDouble(gamma, 3)
          .AddDouble(alpha, 3)
          .AddDouble(stats.nrmse)
          .AddDouble(stats.stderr_nrmse, 3);
    }
  }
  output.AddTable(table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
