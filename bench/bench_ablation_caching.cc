// Ablation: the "caching" combiner of Section 3.2 — pooling round-1
// reports into the final estimate instead of discarding them. Expected:
// caching only improves accuracy, with the largest gains when round 2 has
// little to learn (tight bit width).

#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "core/adaptive.h"
#include "data/census.h"
#include "stats/repetition.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t n = 10000;
  int64_t reps = 100;
  int64_t seed = 20240404;
  FlagSet flags;
  bench::BenchOutput output(&flags, "ablation_caching");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header("Ablation: round pooling (caching)", "census ages",
                     "n=" + std::to_string(n) + " reps=" +
                         std::to_string(reps));

  Rng data_rng(static_cast<uint64_t>(seed));
  const Dataset data = CensusAges(n, data_rng);

  Table table({"bits", "caching", "nrmse", "stderr"});
  for (const int bits : std::vector<int>{7, 10, 16}) {
    const FixedPointCodec codec = FixedPointCodec::Integer(bits);
    const std::vector<uint64_t> codewords = codec.EncodeAll(data.values());
    for (const bool caching : {false, true}) {
      AdaptiveConfig config;
      config.bits = bits;
      config.caching = caching;
      const ErrorStats stats = RunRepetitions(
          reps, static_cast<uint64_t>(seed) + 1, data.truth().mean,
          [&](Rng& rng) {
            return codec.Decode(
                RunAdaptiveBitPushing(codewords, config, rng)
                    .estimate_codeword);
          });
      table.NewRow()
          .AddInt(bits)
          .AddCell(caching ? "on" : "off")
          .AddDouble(stats.nrmse)
          .AddDouble(stats.stderr_nrmse, 3);
    }
  }
  output.AddTable(table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
