// Figure 3 (a and b): RMSE of mean estimation on census ages under local
// differential privacy as epsilon varies, split into the high-privacy
// regime (eps < 1, Figure 3a) and the moderate regime (eps >= 1,
// Figure 3b). Laplace is included for completeness even though the paper
// omits it from the plots for being uniformly worse.
//
// Expected shape (paper): errors are an order of magnitude above the
// noise-free case; lines cluster on a log scale; the single-round a=1.0
// approach achieves the least error, with adaptive/piecewise only
// overtaking at eps > 3. Adaptivity holds no advantage because the RR
// variance is independent of the bit means.

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "data/census.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t n = 10000;
  int64_t reps = 100;
  int64_t bits = 8;
  int64_t seed = 20240331;
  FlagSet flags;
  bench::BenchOutput output(&flags, "fig3_dp_epsilon");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddInt64("bits", &bits, "bit depth b");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  const FixedPointCodec codec =
      FixedPointCodec::Integer(static_cast<int>(bits));
  Rng data_rng(static_cast<uint64_t>(seed));
  const Dataset data = CensusAges(n, data_rng);

  const auto run_regime = [&](const std::string& figure,
                              const std::vector<double>& epsilons) {
    output.Header(figure, "census ages",
                       "n=" + std::to_string(n) + " bits=" +
                           std::to_string(bits) + " reps=" +
                           std::to_string(reps));
    Table table({"epsilon", "method", "rmse", "nrmse", "stderr"});
    for (const double epsilon : epsilons) {
      std::vector<bench::MethodSpec> methods = bench::DpMethods(epsilon);
      methods.push_back(bench::LaplaceMethod(epsilon));
      for (const bench::MethodSpec& method : methods) {
        const ErrorStats stats = bench::EvaluateMethod(
            method, data, codec, reps, static_cast<uint64_t>(seed) + 1);
        table.NewRow()
            .AddDouble(epsilon, 3)
            .AddCell(method.name)
            .AddDouble(stats.rmse)
            .AddDouble(stats.nrmse)
            .AddDouble(stats.stderr_nrmse, 3);
      }
    }
    output.AddTable(table);
    std::printf("\n");
  };

  run_regime("Figure 3a: high privacy regime (epsilon < 1)",
             {0.1, 0.2, 0.4, 0.6, 0.8});
  run_regime("Figure 3b: moderate privacy regime (epsilon >= 1)",
             {1.0, 1.5, 2.0, 3.0, 4.0});
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
