// Ablation: mean vs robust statistics on outlier-contaminated data
// (Section 4.3). Sweeps the outlier fraction of a 0/1 metric and compares
// (i) the raw federated mean, (ii) the clipped/winsorized mean, and
// (iii) the one-bit federated histogram median. Expected: the raw mean is
// destroyed by a handful of outliers; clipping stabilizes it; the median
// barely moves.

#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "core/adaptive.h"
#include "core/histogram_estimation.h"
#include "data/synthetic.h"
#include "stats/quantiles.h"
#include "stats/repetition.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t n = 20000;
  int64_t reps = 30;
  int64_t seed = 20240411;
  FlagSet flags;
  bench::BenchOutput output(&flags, "ablation_robust_median");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header("Ablation: mean vs clipped mean vs median",
                     "binary metric with heavy-tailed outliers",
                     "n=" + std::to_string(n) + " reps=" +
                         std::to_string(reps));

  Table table({"outlier_frac", "statistic", "estimate", "typical_value"});
  Rng data_rng(static_cast<uint64_t>(seed));
  for (const double fraction :
       std::vector<double>{0.0, 0.0005, 0.002, 0.01}) {
    const Dataset data =
        BinaryWithOutliersData(n, fraction, 1e6, data_rng);
    const double typical = Quantile(data.values(), 0.5);

    // The exact un-clipped mean: the statistic itself is broken by the
    // outliers, before any protocol error enters ("the sample mean is very
    // sensitive to which outlier clients respond", Section 4.3).
    table.NewRow()
        .AddDouble(fraction, 3)
        .AddCell("exact_raw_mean")
        .AddDouble(data.truth().mean, 5)
        .AddDouble(typical, 3);
    // Clipped (8-bit) mean: the deployment recipe.
    {
      const FixedPointCodec codec = FixedPointCodec::Integer(8);
      AdaptiveConfig config;
      config.bits = 8;
      Rng rng(static_cast<uint64_t>(seed) + 2);
      const Dataset clipped = data.Clipped(0.0, 255.0);
      const double estimate = codec.Decode(
          RunAdaptiveBitPushing(codec.EncodeAll(clipped.values()), config,
                                rng)
              .estimate_codeword);
      table.NewRow()
          .AddDouble(fraction, 3)
          .AddCell("clipped_mean")
          .AddDouble(estimate, 5)
          .AddDouble(typical, 3);
    }
    // One-bit histogram median (integer-centered buckets).
    {
      HistogramConfig config;
      config.edges = UniformEdges(-0.5, 15.5, 16);
      Rng rng(static_cast<uint64_t>(seed) + 3);
      const HistogramResult histogram =
          EstimateHistogram(data.values(), config, rng);
      table.NewRow()
          .AddDouble(fraction, 3)
          .AddCell("median")
          .AddDouble(histogram.Quantile(config.edges, 0.5), 5)
          .AddDouble(typical, 3);
    }
  }
  output.AddTable(table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
