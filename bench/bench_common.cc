#include "bench/bench_common.h"

#include <cstdio>

#include "core/bit_probabilities.h"
#include "core/bit_pushing.h"
#include "ldp/ding.h"
#include "ldp/dithering.h"
#include "ldp/duchi.h"
#include "ldp/laplace.h"
#include "ldp/piecewise.h"
#include "obs/export.h"
#include "stats/repetition.h"

namespace bitpush {
namespace bench {
namespace {

std::string WithEps(const std::string& base, double epsilon) {
  if (epsilon <= 0.0) return base;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s eps=%g", base.c_str(), epsilon);
  return buffer;
}

}  // namespace

MethodSpec WeightedMethod(double alpha, double epsilon) {
  char name[64];
  std::snprintf(name, sizeof(name), "weighted a=%.2g", alpha);
  return MethodSpec{
      WithEps(name, epsilon),
      [alpha, epsilon](const Dataset& data, const FixedPointCodec& codec,
                       Rng& rng) {
        BitPushingConfig config;
        config.probabilities = GeometricProbabilities(codec.bits(), alpha);
        config.epsilon = epsilon;
        const std::vector<uint64_t> codewords =
            codec.EncodeAll(data.values());
        return codec.Decode(
            RunBasicBitPushing(codewords, config, rng).estimate_codeword);
      }};
}

MethodSpec AdaptiveMethod(double epsilon, SquashPolicy squash) {
  std::string name = WithEps("adaptive", epsilon);
  if (squash.enabled()) name += " squash";
  return MethodSpec{
      name,
      [epsilon, squash](const Dataset& data, const FixedPointCodec& codec,
                        Rng& rng) {
        AdaptiveConfig config;
        config.bits = codec.bits();
        config.epsilon = epsilon;
        config.squash = squash;
        const std::vector<uint64_t> codewords =
            codec.EncodeAll(data.values());
        return codec.Decode(
            RunAdaptiveBitPushing(codewords, config, rng)
                .estimate_codeword);
      }};
}

MethodSpec DitheringMethod(double epsilon) {
  return MethodSpec{
      WithEps("dithering", epsilon),
      [epsilon](const Dataset& data, const FixedPointCodec& codec,
                Rng& rng) {
        const SubtractiveDithering mechanism(epsilon, codec.low(),
                                             codec.high());
        return mechanism.EstimateMean(data.values(), rng);
      }};
}

MethodSpec PiecewiseMethod(double epsilon) {
  return MethodSpec{
      WithEps("piecewise", epsilon),
      [epsilon](const Dataset& data, const FixedPointCodec& codec,
                Rng& rng) {
        const PiecewiseMechanism mechanism(epsilon, codec.low(),
                                           codec.high());
        return mechanism.EstimateMean(data.values(), rng);
      }};
}

MethodSpec DuchiMethod(double epsilon) {
  return MethodSpec{
      WithEps("duchi", epsilon),
      [epsilon](const Dataset& data, const FixedPointCodec& codec,
                Rng& rng) {
        const DuchiMechanism mechanism(epsilon, codec.low(), codec.high());
        return mechanism.EstimateMean(data.values(), rng);
      }};
}

MethodSpec DingMethod(double epsilon) {
  return MethodSpec{
      WithEps("ding", epsilon),
      [epsilon](const Dataset& data, const FixedPointCodec& codec,
                Rng& rng) {
        const DingMechanism mechanism(epsilon, codec.low(), codec.high());
        return mechanism.EstimateMean(data.values(), rng);
      }};
}

MethodSpec LaplaceMethod(double epsilon) {
  return MethodSpec{
      WithEps("laplace", epsilon),
      [epsilon](const Dataset& data, const FixedPointCodec& codec,
                Rng& rng) {
        const LaplaceMechanism mechanism(epsilon, codec.low(), codec.high());
        return mechanism.EstimateMean(data.values(), rng);
      }};
}

std::vector<MethodSpec> AccuracyMethods() {
  return {DitheringMethod(0.0), WeightedMethod(0.5, 0.0),
          WeightedMethod(1.0, 0.0), AdaptiveMethod(0.0)};
}

std::vector<MethodSpec> DpMethods(double epsilon) {
  return {DitheringMethod(epsilon), WeightedMethod(0.5, epsilon),
          WeightedMethod(1.0, epsilon), AdaptiveMethod(epsilon),
          PiecewiseMethod(epsilon), DuchiMethod(epsilon),
          DingMethod(epsilon)};
}

ErrorStats EvaluateMethodAgainst(const MethodSpec& method,
                                 const Dataset& data,
                                 const FixedPointCodec& codec, double truth,
                                 int64_t repetitions, uint64_t seed) {
  return RunRepetitions(repetitions, seed, truth, [&](Rng& rng) {
    return method.estimate(data, codec, rng);
  });
}

ErrorStats EvaluateMethod(const MethodSpec& method, const Dataset& data,
                          const FixedPointCodec& codec, int64_t repetitions,
                          uint64_t seed) {
  return EvaluateMethodAgainst(method, data, codec, data.truth().mean,
                               repetitions, seed);
}

void PrintHeader(const std::string& figure, const std::string& workload,
                 const std::string& parameters) {
  std::printf("=== %s ===\nworkload: %s\nparams:   %s\n\n", figure.c_str(),
              workload.c_str(), parameters.c_str());
}

BenchOutput::BenchOutput(FlagSet* flags, std::string bench_name)
    : name_(std::move(bench_name)) {
  flags->AddString("format", &format_,
                   "output format: text (default, prints as before) | "
                   "json | csv (also write BENCH_<name>.<ext> or --out)");
  flags->AddString("out", &out_,
                   "output path for --format=json/csv (default "
                   "BENCH_<name>.<ext>; - = stdout)");
}

void BenchOutput::Header(const std::string& figure,
                         const std::string& workload,
                         const std::string& parameters) {
  if (format_ == "text") PrintHeader(figure, workload, parameters);
  sections_.push_back(Section{figure, workload, parameters, {}});
}

void BenchOutput::AddTable(const Table& table) {
  if (format_ == "text") table.Print();
  if (sections_.empty()) sections_.push_back(Section{});
  sections_.back().tables.push_back(table);
}

int BenchOutput::Finish() {
  if (format_ == "text") return 0;
  if (format_ != "json" && format_ != "csv") {
    std::fprintf(stderr, "unknown --format=%s (text, json, csv)\n",
                 format_.c_str());
    return 1;
  }
  std::string path = out_;
  if (path.empty()) path = "BENCH_" + name_ + "." + format_;
  std::string content;
  if (format_ == "json") {
    content = "{\"name\":\"" + obs::JsonEscape(name_) +
              "\",\"format_version\":1,\"sections\":[";
    for (size_t s = 0; s < sections_.size(); ++s) {
      const Section& section = sections_[s];
      if (s > 0) content += ",";
      content += "{\"figure\":\"" + obs::JsonEscape(section.figure) +
                 "\",\"workload\":\"" + obs::JsonEscape(section.workload) +
                 "\",\"params\":\"" + obs::JsonEscape(section.parameters) +
                 "\",\"tables\":[";
      for (size_t t = 0; t < section.tables.size(); ++t) {
        const Table& table = section.tables[t];
        if (t > 0) content += ",";
        content += "{\"columns\":[";
        for (size_t c = 0; c < table.headers().size(); ++c) {
          if (c > 0) content += ",";
          content += "\"";
          content += obs::JsonEscape(table.headers()[c]);
          content += "\"";
        }
        content += "],\"rows\":[";
        for (size_t r = 0; r < table.rows().size(); ++r) {
          if (r > 0) content += ",";
          content += "[";
          const std::vector<std::string>& row = table.rows()[r];
          for (size_t c = 0; c < row.size(); ++c) {
            if (c > 0) content += ",";
            content += "\"";
            content += obs::JsonEscape(row[c]);
            content += "\"";
          }
          content += "]";
        }
        content += "]}";
      }
      content += "]}";
    }
    content += "]}\n";
  } else {
    for (const Section& section : sections_) {
      for (const Table& table : section.tables) {
        if (!content.empty()) content += "\n";
        content += table.ToCsv();
      }
    }
  }
  std::string error;
  if (!obs::WriteTextFile(path, content, &error)) {
    std::fprintf(stderr, "--format=%s: %s\n", format_.c_str(),
                 error.c_str());
    return 1;
  }
  if (path != "-") std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace bench
}  // namespace bitpush
