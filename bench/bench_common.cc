#include "bench/bench_common.h"

#include <cstdio>

#include "core/bit_probabilities.h"
#include "core/bit_pushing.h"
#include "ldp/ding.h"
#include "ldp/dithering.h"
#include "ldp/duchi.h"
#include "ldp/laplace.h"
#include "ldp/piecewise.h"
#include "stats/repetition.h"

namespace bitpush {
namespace bench {
namespace {

std::string WithEps(const std::string& base, double epsilon) {
  if (epsilon <= 0.0) return base;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s eps=%g", base.c_str(), epsilon);
  return buffer;
}

}  // namespace

MethodSpec WeightedMethod(double alpha, double epsilon) {
  char name[64];
  std::snprintf(name, sizeof(name), "weighted a=%.2g", alpha);
  return MethodSpec{
      WithEps(name, epsilon),
      [alpha, epsilon](const Dataset& data, const FixedPointCodec& codec,
                       Rng& rng) {
        BitPushingConfig config;
        config.probabilities = GeometricProbabilities(codec.bits(), alpha);
        config.epsilon = epsilon;
        const std::vector<uint64_t> codewords =
            codec.EncodeAll(data.values());
        return codec.Decode(
            RunBasicBitPushing(codewords, config, rng).estimate_codeword);
      }};
}

MethodSpec AdaptiveMethod(double epsilon, SquashPolicy squash) {
  std::string name = WithEps("adaptive", epsilon);
  if (squash.enabled()) name += " squash";
  return MethodSpec{
      name,
      [epsilon, squash](const Dataset& data, const FixedPointCodec& codec,
                        Rng& rng) {
        AdaptiveConfig config;
        config.bits = codec.bits();
        config.epsilon = epsilon;
        config.squash = squash;
        const std::vector<uint64_t> codewords =
            codec.EncodeAll(data.values());
        return codec.Decode(
            RunAdaptiveBitPushing(codewords, config, rng)
                .estimate_codeword);
      }};
}

MethodSpec DitheringMethod(double epsilon) {
  return MethodSpec{
      WithEps("dithering", epsilon),
      [epsilon](const Dataset& data, const FixedPointCodec& codec,
                Rng& rng) {
        const SubtractiveDithering mechanism(epsilon, codec.low(),
                                             codec.high());
        return mechanism.EstimateMean(data.values(), rng);
      }};
}

MethodSpec PiecewiseMethod(double epsilon) {
  return MethodSpec{
      WithEps("piecewise", epsilon),
      [epsilon](const Dataset& data, const FixedPointCodec& codec,
                Rng& rng) {
        const PiecewiseMechanism mechanism(epsilon, codec.low(),
                                           codec.high());
        return mechanism.EstimateMean(data.values(), rng);
      }};
}

MethodSpec DuchiMethod(double epsilon) {
  return MethodSpec{
      WithEps("duchi", epsilon),
      [epsilon](const Dataset& data, const FixedPointCodec& codec,
                Rng& rng) {
        const DuchiMechanism mechanism(epsilon, codec.low(), codec.high());
        return mechanism.EstimateMean(data.values(), rng);
      }};
}

MethodSpec DingMethod(double epsilon) {
  return MethodSpec{
      WithEps("ding", epsilon),
      [epsilon](const Dataset& data, const FixedPointCodec& codec,
                Rng& rng) {
        const DingMechanism mechanism(epsilon, codec.low(), codec.high());
        return mechanism.EstimateMean(data.values(), rng);
      }};
}

MethodSpec LaplaceMethod(double epsilon) {
  return MethodSpec{
      WithEps("laplace", epsilon),
      [epsilon](const Dataset& data, const FixedPointCodec& codec,
                Rng& rng) {
        const LaplaceMechanism mechanism(epsilon, codec.low(), codec.high());
        return mechanism.EstimateMean(data.values(), rng);
      }};
}

std::vector<MethodSpec> AccuracyMethods() {
  return {DitheringMethod(0.0), WeightedMethod(0.5, 0.0),
          WeightedMethod(1.0, 0.0), AdaptiveMethod(0.0)};
}

std::vector<MethodSpec> DpMethods(double epsilon) {
  return {DitheringMethod(epsilon), WeightedMethod(0.5, epsilon),
          WeightedMethod(1.0, epsilon), AdaptiveMethod(epsilon),
          PiecewiseMethod(epsilon), DuchiMethod(epsilon),
          DingMethod(epsilon)};
}

ErrorStats EvaluateMethodAgainst(const MethodSpec& method,
                                 const Dataset& data,
                                 const FixedPointCodec& codec, double truth,
                                 int64_t repetitions, uint64_t seed) {
  return RunRepetitions(repetitions, seed, truth, [&](Rng& rng) {
    return method.estimate(data, codec, rng);
  });
}

ErrorStats EvaluateMethod(const MethodSpec& method, const Dataset& data,
                          const FixedPointCodec& codec, int64_t repetitions,
                          uint64_t seed) {
  return EvaluateMethodAgainst(method, data, codec, data.truth().mean,
                               repetitions, seed);
}

void PrintHeader(const std::string& figure, const std::string& workload,
                 const std::string& parameters) {
  std::printf("=== %s ===\nworkload: %s\nparams:   %s\n\n", figure.c_str(),
              workload.c_str(), parameters.c_str());
}

}  // namespace bench
}  // namespace bitpush
