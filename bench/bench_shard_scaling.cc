// Shard-out scaling benchmark (docs/SHARDING.md): wall-clock makespan of
// one collection tick at 1M and 5M clients across 1/2/4/8 coordinator
// shards. The shard layer's claim is near-linear scaling — each
// ShardCoordinator owns clients/N of the population, shards are
// independent failure domains with no shared state, so the tick makespan
// under perfect shard parallelism is max(per-shard collection) plus the
// (tiny, tally-only) merge. This harness drives the coordinators and the
// MergeTier directly with bench-local timers: every shard's CollectTick is
// timed individually, the modeled makespan takes the slowest shard, and
// the merge is timed on top.
//
// Results print as a table and land in BENCH_shard_scaling.json (path
// override: BITPUSH_SHARD_BENCH_JSON) for the CI artifact trail.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/fixed_point.h"
#include "core/privacy_meter.h"
#include "federated/campaign.h"
#include "federated/client.h"
#include "federated/shard/merge.h"
#include "federated/shard/shard.h"
#include "rng/rng.h"
#include "util/check.h"

namespace bitpush {
namespace {

constexpr int kBits = 8;
constexpr uint64_t kSeed = 20260808;

struct ScalingSample {
  int64_t clients = 0;
  int64_t shards = 0;
  double slowest_shard_seconds = 0.0;  // max per-shard CollectTick wall time
  double merge_seconds = 0.0;
  double makespan_seconds = 0.0;  // slowest shard + merge
  double speedup = 0.0;           // vs the 1-shard makespan at this n
  double efficiency = 0.0;        // speedup / shards
  double estimate = 0.0;          // sanity: the merged estimate
};

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<double> BenchValues(int64_t clients) {
  Rng rng(kSeed);
  const double top = std::exp2(kBits) - 1.0;
  std::vector<double> values(static_cast<size_t>(clients));
  for (double& v : values) v = top * rng.NextDouble();
  return values;
}

ScalingSample RunConfig(const std::vector<double>& values, int64_t shards) {
  CampaignQuery query;
  query.name = "scaling";
  query.value_id = 1;
  query.query.adaptive.bits = kBits;
  MeterPolicy policy;
  policy.max_bits_per_value = 4;
  const std::vector<FixedPointCodec> codecs = {
      FixedPointCodec::Integer(kBits)};

  ScalingSample sample;
  sample.clients = static_cast<int64_t>(values.size());
  sample.shards = shards;

  std::vector<std::vector<Client>> partitions;
  {
    // The population is only needed long enough to partition it; the
    // coordinators own the partitions.
    const std::vector<Client> population =
        MakePopulation(values, ClientConfig{});
    partitions = PartitionClients(population, shards);
  }

  std::vector<std::unique_ptr<ShardCoordinator>> coordinators;
  for (int64_t s = 0; s < shards; ++s) {
    ShardCoordinatorOptions options;
    options.shard_index = s;
    options.seed = ShardSeed(kSeed, s);
    coordinators.push_back(std::make_unique<ShardCoordinator>(
        std::vector<CampaignQuery>{query}, policy, options));
    coordinators.back()->Bind({std::move(partitions[static_cast<size_t>(s)])},
                              codecs);
  }

  MergeTier merge({query}, shards, /*quorum_fraction=*/0.5);
  std::vector<ShardTickFrame> frames(static_cast<size_t>(shards));
  for (int64_t s = 0; s < shards; ++s) {
    const auto start = std::chrono::steady_clock::now();
    std::string error;
    BITPUSH_CHECK(coordinators[static_cast<size_t>(s)]->CollectTick(
        0, &frames[static_cast<size_t>(s)], &error))
        << error;
    sample.slowest_shard_seconds =
        std::max(sample.slowest_shard_seconds, Seconds(start));
  }

  const auto merge_start = std::chrono::steady_clock::now();
  for (const ShardTickFrame& frame : frames) merge.AddFrame(frame);
  const MergedTickResult merged = merge.CloseTick(0, {});
  sample.merge_seconds = Seconds(merge_start);
  sample.makespan_seconds = sample.slowest_shard_seconds +
                            sample.merge_seconds;
  BITPUSH_CHECK_EQ(merged.queries.size(), 1u);
  sample.estimate = merged.queries[0].estimate;
  return sample;
}

void PrintSample(const ScalingSample& s) {
  std::printf(
      "  clients=%-9lld shards=%lld  slowest_shard=%8.3fs  merge=%7.4fs  "
      "makespan=%8.3fs  speedup=%5.2fx  efficiency=%5.1f%%\n",
      static_cast<long long>(s.clients), static_cast<long long>(s.shards),
      s.slowest_shard_seconds, s.merge_seconds, s.makespan_seconds,
      s.speedup, 100.0 * s.efficiency);
}

void WriteJson(const std::vector<ScalingSample>& samples,
               const std::string& path) {
  std::ofstream out(path);
  out.precision(17);
  out << "{\n  \"bench\": \"shard_scaling\",\n  \"samples\": [\n";
  for (size_t i = 0; i < samples.size(); ++i) {
    const ScalingSample& s = samples[i];
    out << "    {\"clients\": " << s.clients << ", \"shards\": " << s.shards
        << ", \"slowest_shard_seconds\": " << s.slowest_shard_seconds
        << ", \"merge_seconds\": " << s.merge_seconds
        << ", \"makespan_seconds\": " << s.makespan_seconds
        << ", \"speedup\": " << s.speedup
        << ", \"efficiency\": " << s.efficiency
        << ", \"estimate\": " << s.estimate << "}"
        << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int Run() {
  std::printf(
      "=== bench_shard_scaling: tick makespan vs coordinator shards ===\n"
      "workload: uniform values in [0, 2^%d), one full-population tick;\n"
      "makespan = slowest shard's CollectTick + tally-only merge\n\n",
      kBits);

  std::vector<ScalingSample> samples;
  for (const int64_t clients : {int64_t{1000000}, int64_t{5000000}}) {
    double baseline = 0.0;
    for (const int64_t shards : {1, 2, 4, 8}) {
      ScalingSample sample = RunConfig(BenchValues(clients), shards);
      if (shards == 1) baseline = sample.makespan_seconds;
      sample.speedup = sample.makespan_seconds > 0.0
                           ? baseline / sample.makespan_seconds
                           : 0.0;
      sample.efficiency =
          sample.speedup / static_cast<double>(sample.shards);
      PrintSample(sample);
      samples.push_back(std::move(sample));
    }
    std::printf("\n");
  }

  const char* json_env = std::getenv("BITPUSH_SHARD_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_shard_scaling.json";
  WriteJson(samples, json_path);
  std::printf("shard-scaling samples written to %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bitpush

int main() { return bitpush::Run(); }
