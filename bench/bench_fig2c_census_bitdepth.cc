// Figure 2c: NRMSE of mean estimation on census ages as the bit depth b
// grows past the 7 bits the data actually uses, n = 10K.
//
// Expected shape (paper): the adaptive approach handles the increasing
// number of (vacuous) bits the best of the methods.

#include <cstdint>

#include "bench/bench_common.h"
#include "data/census.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t n = 10000;
  int64_t reps = 100;
  int64_t min_bits = 7;
  int64_t max_bits = 20;
  int64_t seed = 20240330;
  FlagSet flags;
  bench::BenchOutput output(&flags, "fig2c_census_bitdepth");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddInt64("min_bits", &min_bits, "smallest bit depth");
  flags.AddInt64("max_bits", &max_bits, "largest bit depth");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header("Figure 2c: estimating mean with varying bit depth",
                     "census ages",
                     "n=" + std::to_string(n) + " reps=" +
                         std::to_string(reps));

  Rng data_rng(static_cast<uint64_t>(seed));
  const Dataset data = CensusAges(n, data_rng);
  Table table({"bits", "method", "nrmse", "stderr"});
  for (int64_t bits = min_bits; bits <= max_bits; ++bits) {
    const FixedPointCodec codec =
        FixedPointCodec::Integer(static_cast<int>(bits));
    for (const bench::MethodSpec& method : bench::AccuracyMethods()) {
      const ErrorStats stats = bench::EvaluateMethod(
          method, data, codec, reps, static_cast<uint64_t>(seed) + 1);
      table.NewRow()
          .AddInt(bits)
          .AddCell(method.name)
          .AddDouble(stats.nrmse)
          .AddDouble(stats.stderr_nrmse, 3);
    }
  }
  output.AddTable(table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
