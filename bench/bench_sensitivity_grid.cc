// Sensitivity analysis (the companion to the extended technical report's
// "empirical sensitivity analysis"): a grid over cohort size, bit depth,
// and the single-round exponent, reporting NRMSE for the single-round and
// adaptive protocols. Shows where each parameter starts to matter: gamma
// is benign at tight widths and decisive at loose ones; adaptive flattens
// the bit-depth axis at every n.

#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "data/census.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t reps = 40;
  int64_t seed = 20240414;
  FlagSet flags;
  bench::BenchOutput output(&flags, "sensitivity_grid");
  flags.AddInt64("reps", &reps, "repetitions per cell");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header("Sensitivity grid: n x bits x gamma", "census ages",
                     "reps=" + std::to_string(reps));

  Rng data_rng(static_cast<uint64_t>(seed));
  Table table({"n", "bits", "method", "nrmse", "stderr"});
  for (const int64_t n : std::vector<int64_t>{2000, 10000, 50000}) {
    const Dataset data = CensusAges(n, data_rng);
    for (const int bits : std::vector<int>{7, 12, 18}) {
      const FixedPointCodec codec = FixedPointCodec::Integer(bits);
      std::vector<bench::MethodSpec> methods = {
          bench::WeightedMethod(0.25, 0.0),
          bench::WeightedMethod(0.5, 0.0),
          bench::WeightedMethod(1.0, 0.0),
          bench::AdaptiveMethod(0.0),
      };
      for (const bench::MethodSpec& method : methods) {
        const ErrorStats stats = bench::EvaluateMethod(
            method, data, codec, reps, static_cast<uint64_t>(seed) + 1);
        table.NewRow()
            .AddInt(n)
            .AddInt(bits)
            .AddCell(method.name)
            .AddDouble(stats.nrmse)
            .AddDouble(stats.stderr_nrmse, 3);
      }
    }
  }
  output.AddTable(table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
