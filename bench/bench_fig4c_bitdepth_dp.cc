// Figure 4c: RMSE vs bit depth under DP (eps = 2). The adaptive approach
// *with bit squashing* should maintain a flat error level as b grows,
// while every other method grows in error proportionally to the magnitude
// of the (noisy) high-order values.

#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "data/synthetic.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t n = 10000;
  int64_t reps = 50;
  double epsilon = 2.0;
  double mu = 500.0;
  double sigma = 100.0;
  int64_t min_bits = 10;
  int64_t max_bits = 24;
  int64_t step = 2;
  int64_t seed = 20240403;
  FlagSet flags;
  bench::BenchOutput output(&flags, "fig4c_bitdepth_dp");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddDouble("epsilon", &epsilon, "LDP epsilon");
  flags.AddDouble("mu", &mu, "mean of the Normal workload");
  flags.AddDouble("sigma", &sigma, "stddev of the Normal workload");
  flags.AddInt64("min_bits", &min_bits, "smallest bit depth");
  flags.AddInt64("max_bits", &max_bits, "largest bit depth");
  flags.AddInt64("step", &step, "bit depth step");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header(
      "Figure 4c: varying bit depth under DP",
      "Normal(" + std::to_string(mu) + ", " + std::to_string(sigma) + ")",
      "n=" + std::to_string(n) + " eps=" + std::to_string(epsilon) +
          " reps=" + std::to_string(reps));

  Rng data_rng(static_cast<uint64_t>(seed));
  const Dataset data = NormalData(n, mu, sigma, data_rng);

  Table table({"bits", "method", "rmse", "nrmse", "stderr"});
  for (int64_t bits = min_bits; bits <= max_bits; bits += step) {
    const FixedPointCodec codec =
        FixedPointCodec::Integer(static_cast<int>(bits));
    std::vector<bench::MethodSpec> methods = {
        bench::DitheringMethod(epsilon),
        bench::WeightedMethod(0.5, epsilon),
        bench::WeightedMethod(1.0, epsilon),
        bench::AdaptiveMethod(epsilon),
        bench::AdaptiveMethod(epsilon, SquashPolicy::Absolute(0.05)),
    };
    for (const bench::MethodSpec& method : methods) {
      const ErrorStats stats = bench::EvaluateMethod(
          method, data, codec, reps, static_cast<uint64_t>(seed) + 1);
      table.NewRow()
          .AddInt(bits)
          .AddCell(method.name)
          .AddDouble(stats.rmse)
          .AddDouble(stats.nrmse)
          .AddDouble(stats.stderr_nrmse, 3);
    }
  }
  output.AddTable(table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
