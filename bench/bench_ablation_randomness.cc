// Ablation: central (QMC) vs local randomness for the bit assignment
// (Section 3.1). The server-side allocation makes per-bit report counts
// deterministic, removing one variance source; the binary prints both the
// variance of the per-bit counts and the resulting estimator error.

#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "core/bit_probabilities.h"
#include "core/bit_pushing.h"
#include "data/census.h"
#include "stats/repetition.h"
#include "stats/welford.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t n = 10000;
  int64_t reps = 200;
  int64_t bits = 8;
  int64_t seed = 20240412;
  FlagSet flags;
  bench::BenchOutput output(&flags, "ablation_randomness");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddInt64("bits", &bits, "bit depth b");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header("Ablation: central (QMC) vs local randomness",
                     "census ages",
                     "n=" + std::to_string(n) + " bits=" +
                         std::to_string(bits) + " reps=" +
                         std::to_string(reps));

  Rng data_rng(static_cast<uint64_t>(seed));
  const Dataset data = CensusAges(n, data_rng);
  const FixedPointCodec codec =
      FixedPointCodec::Integer(static_cast<int>(bits));
  const std::vector<uint64_t> codewords = codec.EncodeAll(data.values());

  Table table({"randomness", "gamma", "nrmse", "top_bit_count_stddev"});
  for (const double gamma : std::vector<double>{0.5, 1.0}) {
    for (const bool central : {true, false}) {
      BitPushingConfig config;
      config.probabilities =
          GeometricProbabilities(static_cast<int>(bits), gamma);
      config.central_randomness = central;

      Welford top_counts;
      Rng rng(static_cast<uint64_t>(seed) + 1);
      std::vector<double> estimates;
      for (int64_t rep = 0; rep < reps; ++rep) {
        const BitPushingResult result =
            RunBasicBitPushing(codewords, config, rng);
        estimates.push_back(codec.Decode(result.estimate_codeword));
        top_counts.Add(static_cast<double>(
            result.histogram.total(static_cast<int>(bits) - 1)));
      }
      const ErrorStats stats =
          ComputeErrorStats(estimates, data.truth().mean);
      table.NewRow()
          .AddCell(central ? "central" : "local")
          .AddDouble(gamma, 3)
          .AddDouble(stats.nrmse)
          .AddDouble(top_counts.population_stddev(), 4);
    }
  }
  output.AddTable(table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
