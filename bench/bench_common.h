// Shared harness for the figure-reproduction binaries.
//
// Each bench binary sweeps one x-axis (mu, n, bit depth, epsilon, ...) and
// prints, for every method the corresponding paper figure plots, the NRMSE
// and its standard error over repeated runs — the same series as the
// figure. Methods are the paper's: "dithering" (subtractive dithering,
// RR-wrapped under DP), "weighted a=0.5" / "weighted a=1.0" (single-round
// bit-pushing with p_j proportional to 2^{alpha j}), "adaptive" (two-round,
// gamma=0.5, delta=1/3, caching on), plus "piecewise", "duchi" and
// "laplace" where shown.

#ifndef BITPUSH_BENCH_BENCH_COMMON_H_
#define BITPUSH_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/adaptive.h"
#include "core/fixed_point.h"
#include "data/dataset.h"
#include "rng/rng.h"
#include "stats/metrics.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace bench {

// One estimator under test: produces a mean estimate for the dataset.
struct MethodSpec {
  std::string name;
  std::function<double(const Dataset&, const FixedPointCodec&, Rng&)>
      estimate;
};

// Single-round weighted bit-pushing with exponent `alpha` on 2^j.
MethodSpec WeightedMethod(double alpha, double epsilon);

// Two-round adaptive bit-pushing (paper defaults), with optional DP and
// squashing.
MethodSpec AdaptiveMethod(double epsilon,
                          SquashPolicy squash = SquashPolicy::Off());

// Subtractive dithering over the codec's range (RR-wrapped when
// epsilon > 0).
MethodSpec DitheringMethod(double epsilon);

// Wang et al. piecewise mechanism (requires epsilon > 0).
MethodSpec PiecewiseMethod(double epsilon);

// Duchi-style randomized rounding (+RR when epsilon > 0).
MethodSpec DuchiMethod(double epsilon);

// Ding et al. (2017) 1-bit telemetry mechanism (requires epsilon > 0).
MethodSpec DingMethod(double epsilon);

// Laplace mechanism (requires epsilon > 0).
MethodSpec LaplaceMethod(double epsilon);

// The standard non-DP line-up of Figures 1 and 2: dithering,
// weighted a=0.5, weighted a=1.0, adaptive.
std::vector<MethodSpec> AccuracyMethods();

// The DP line-up of Figure 3 at a given epsilon: the above (RR-wrapped)
// plus piecewise.
std::vector<MethodSpec> DpMethods(double epsilon);

// Runs `method` `repetitions` times against the dataset's empirical mean.
ErrorStats EvaluateMethod(const MethodSpec& method, const Dataset& data,
                          const FixedPointCodec& codec, int64_t repetitions,
                          uint64_t seed);

// Runs `method` against an arbitrary truth (used for variance
// experiments, where `estimate` returns a variance).
ErrorStats EvaluateMethodAgainst(const MethodSpec& method,
                                 const Dataset& data,
                                 const FixedPointCodec& codec,
                                 double truth, int64_t repetitions,
                                 uint64_t seed);

// Prints the standard experiment banner (figure id, workload, parameters).
void PrintHeader(const std::string& figure, const std::string& workload,
                 const std::string& parameters);

// Output-format selection shared by every bench binary. Registers
// --format=text|json|csv and --out on the binary's FlagSet; text is the
// default and prints exactly what the binaries printed before this helper
// existed. json/csv additionally write the collected tables to --out, or
// to BENCH_<name>.json / BENCH_<name>.csv in the working directory when
// --out is empty ("-" writes to stdout).
//
//   FlagSet flags;
//   bench::BenchOutput output(&flags, "fig1a_mean_vs_mu");
//   ...
//   flags.Parse(argc, argv);
//   output.Header(figure, workload, params);   // instead of PrintHeader
//   output.AddTable(table);                    // instead of table.Print()
//   return output.Finish();                    // instead of return 0
//
// Header starts a new section; each AddTable attaches to the current
// section, so multi-experiment binaries map to multiple JSON sections.
class BenchOutput {
 public:
  BenchOutput(FlagSet* flags, std::string bench_name);

  void Header(const std::string& figure, const std::string& workload,
              const std::string& parameters);
  void AddTable(const Table& table);

  // Flushes json/csv output and returns the process exit code (nonzero on
  // unknown --format or I/O failure). Call once, last.
  int Finish();

 private:
  struct Section {
    std::string figure;
    std::string workload;
    std::string parameters;
    std::vector<Table> tables;
  };

  std::string name_;
  std::string format_ = "text";
  std::string out_;
  std::vector<Section> sections_;
};

}  // namespace bench
}  // namespace bitpush

#endif  // BITPUSH_BENCH_BENCH_COMMON_H_
