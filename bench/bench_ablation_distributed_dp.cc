// Ablation: privacy architectures of Section 3.3 at matched epsilon —
// per-report local DP (randomized response) vs distributed DP on the bit
// histograms (sample-and-threshold; Bernoulli/binomial noise). Expected:
// the distributed routes add negligible error compared to LDP, matching
// the paper's improved O(1/(eps^2 n)) dependence and the deployment
// observation that enclave-side thresholding was essentially free.

#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "core/bit_probabilities.h"
#include "core/bit_pushing.h"
#include "data/census.h"
#include "dp/bernoulli_noise.h"
#include "dp/sample_threshold.h"
#include "stats/repetition.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t n = 50000;
  int64_t reps = 50;
  int64_t bits = 8;
  double delta = 1e-6;
  int64_t seed = 20240410;
  FlagSet flags;
  bench::BenchOutput output(&flags, "ablation_distributed_dp");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddInt64("bits", &bits, "bit depth b");
  flags.AddDouble("delta", &delta, "DP delta for distributed mechanisms");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header("Ablation: local vs distributed DP architectures",
                     "census ages",
                     "n=" + std::to_string(n) + " bits=" +
                         std::to_string(bits) + " reps=" +
                         std::to_string(reps));

  Rng data_rng(static_cast<uint64_t>(seed));
  const Dataset data = CensusAges(n, data_rng);
  const FixedPointCodec codec =
      FixedPointCodec::Integer(static_cast<int>(bits));
  const std::vector<uint64_t> codewords = codec.EncodeAll(data.values());
  BitPushingConfig base;
  base.probabilities = GeometricProbabilities(static_cast<int>(bits), 0.5);

  Table table({"epsilon", "architecture", "nrmse", "stderr"});
  for (const double epsilon : std::vector<double>{0.5, 1.0, 2.0}) {
    // Local DP: randomized response on every report.
    {
      BitPushingConfig config = base;
      config.epsilon = epsilon;
      const ErrorStats stats = RunRepetitions(
          reps, static_cast<uint64_t>(seed) + 1, data.truth().mean,
          [&](Rng& rng) {
            return codec.Decode(RunBasicBitPushing(codewords, config, rng)
                                    .estimate_codeword);
          });
      table.NewRow()
          .AddDouble(epsilon, 3)
          .AddCell("local_rr")
          .AddDouble(stats.nrmse)
          .AddDouble(stats.stderr_nrmse, 3);
    }
    // Distributed: sample-and-threshold on the bit histograms.
    {
      const auto st = SampleThresholdForBudget(epsilon, delta, 0.5);
      const ErrorStats stats = RunRepetitions(
          reps, static_cast<uint64_t>(seed) + 1, data.truth().mean,
          [&](Rng& rng) {
            const BitPushingResult raw =
                RunBasicBitPushing(codewords, base, rng);
            const std::vector<double> ones = UnbiasSampledCounts(
                SampleAndThreshold(raw.histogram.one_counts(), st, rng),
                st.sampling_rate);
            const std::vector<double> totals = UnbiasSampledCounts(
                SampleAndThreshold(raw.histogram.totals(), st, rng),
                st.sampling_rate);
            std::vector<double> means(ones.size(), 0.0);
            for (size_t j = 0; j < means.size(); ++j) {
              if (totals[j] > 0) means[j] = ones[j] / totals[j];
            }
            return codec.Decode(RecombineBitMeans(means));
          });
      table.NewRow()
          .AddDouble(epsilon, 3)
          .AddCell("sample_threshold")
          .AddDouble(stats.nrmse)
          .AddDouble(stats.stderr_nrmse, 3);
    }
    // Distributed: binomial noise on the one-counts.
    {
      const int64_t noise_bits = NoiseBitsForBudget(epsilon, delta);
      const ErrorStats stats = RunRepetitions(
          reps, static_cast<uint64_t>(seed) + 1, data.truth().mean,
          [&](Rng& rng) {
            const BitPushingResult raw =
                RunBasicBitPushing(codewords, base, rng);
            const std::vector<double> noisy_ones = AddBinomialNoise(
                raw.histogram.one_counts(), noise_bits, rng);
            std::vector<double> means(noisy_ones.size(), 0.0);
            for (size_t j = 0; j < means.size(); ++j) {
              const int64_t total = raw.histogram.totals()[j];
              if (total > 0) {
                means[j] = noisy_ones[j] / static_cast<double>(total);
              }
            }
            return codec.Decode(RecombineBitMeans(means));
          });
      table.NewRow()
          .AddDouble(epsilon, 3)
          .AddCell("binomial_noise")
          .AddDouble(stats.nrmse)
          .AddDouble(stats.stderr_nrmse, 3);
    }
  }
  output.AddTable(table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
