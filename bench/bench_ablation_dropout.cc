// Ablation: robustness to intermittent connectivity (Section 4.3). Client
// dropout shrinks every bit group; the auto-adjustment rebalances round-2
// probabilities using round-1's intended-vs-realized counts. Expected:
// the protocol degrades gracefully with dropout (error scales roughly
// with 1/sqrt(respondents)) and auto-adjustment does not hurt.

#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "data/census.h"
#include "federated/round.h"
#include "stats/repetition.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t n = 20000;
  int64_t reps = 40;
  int64_t bits = 8;
  int64_t seed = 20240409;
  FlagSet flags;
  bench::BenchOutput output(&flags, "ablation_dropout");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddInt64("bits", &bits, "bit depth b");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header("Ablation: dropout robustness and auto-adjustment",
                     "census ages",
                     "n=" + std::to_string(n) + " bits=" +
                         std::to_string(bits) + " reps=" +
                         std::to_string(reps));

  Rng data_rng(static_cast<uint64_t>(seed));
  const Dataset data = CensusAges(n, data_rng);
  const FixedPointCodec codec =
      FixedPointCodec::Integer(static_cast<int>(bits));

  Table table({"dropout", "auto_adjust", "nrmse", "stderr"});
  for (const double dropout : std::vector<double>{0.0, 0.2, 0.5, 0.8}) {
    ClientConfig client_config;
    client_config.dropout_probability = dropout;
    const std::vector<Client> clients =
        MakePopulation(data.values(), client_config);
    for (const bool adjust : {false, true}) {
      FederatedQueryConfig config;
      config.adaptive.bits = static_cast<int>(bits);
      config.auto_adjust_dropout = adjust;
      const ErrorStats stats = RunRepetitions(
          reps, static_cast<uint64_t>(seed) + 1, data.truth().mean,
          [&](Rng& rng) {
            return RunFederatedMeanQuery(clients, codec, config, nullptr,
                                         rng)
                .estimate;
          });
      table.NewRow()
          .AddDouble(dropout, 3)
          .AddCell(adjust ? "on" : "off")
          .AddDouble(stats.nrmse)
          .AddDouble(stats.stderr_nrmse, 3);
    }
  }
  output.AddTable(table);

  // Fault sweep: the same total fault rate split across the five injected
  // types (dropout / straggler / corrupt / truncate / crash), under the
  // server's reaction policy — 30-minute report deadline, two backfill
  // passes from the unselected pool, static fallback past 60% round-1 loss.
  output.Header(
      "Ablation: injected report faults under the reaction policy",
      "census ages",
      "deadline=30min backfill=2 max_round1_loss=0.6");
  Table fault_table({"fault_rate", "nrmse", "stderr", "injected", "backfill",
                     "fallbacks"});
  for (const double rate : std::vector<double>{0.0, 0.1, 0.3, 0.5}) {
    const std::vector<Client> clients =
        MakePopulation(data.values(), ClientConfig{});
    FaultRates rates;
    rates.mid_round_dropout = 0.4 * rate;
    rates.straggler = 0.15 * rate;
    rates.corrupt_message = 0.15 * rate;
    rates.truncate_message = 0.15 * rate;
    rates.round_boundary_crash = 0.15 * rate;
    FederatedQueryConfig config;
    config.adaptive.bits = static_cast<int>(bits);
    // Cap the cohort so a replacement pool exists for backfill.
    config.cohort.max_cohort_size = (2 * n) / 3;
    config.fault_policy.report_deadline_minutes = 30.0;
    config.fault_policy.max_backfill_rounds = 2;
    config.fault_policy.max_round1_loss = 0.6;
    int64_t injected = 0;
    int64_t backfill = 0;
    int64_t fallbacks = 0;
    const ErrorStats stats = RunRepetitions(
        reps, static_cast<uint64_t>(seed) + 2, data.truth().mean,
        [&](Rng& rng) {
          const FaultPlan plan(rng.NextUint64(), rates);
          config.fault_plan = &plan;
          const FederatedQueryResult result =
              RunFederatedMeanQuery(clients, codec, config, nullptr, rng);
          injected += result.faults.InjectedTotal();
          backfill += result.faults.backfill_reports;
          fallbacks += result.faults.static_policy_fallbacks;
          return result.estimate;
        });
    config.fault_plan = nullptr;
    fault_table.NewRow()
        .AddDouble(rate, 3)
        .AddDouble(stats.nrmse)
        .AddDouble(stats.stderr_nrmse, 3)
        .AddInt(injected / reps)
        .AddInt(backfill / reps)
        .AddInt(fallbacks);
  }
  output.AddTable(fault_table);

  // Resilience ablation: the same fault mix, with the recovery layer armed
  // one mechanism at a time — deterministic retries with backoff, then
  // hedged assignments against the replacement pool, then the per-client
  // circuit breaker (one tracker shared across repetitions, as a campaign
  // would share it across queries). Expected: each mechanism converts
  // faulted slots back into tallied reports (recovered grows, fallbacks
  // shrink) at the cost of extra simulated collection minutes.
  output.Header(
      "Ablation: resilience mechanisms under a fixed fault mix",
      "census ages",
      "dropout=0.2 straggler=0.15 corrupt=0.1 truncate=0.05 deadline=30min");
  FaultRates mix;
  mix.mid_round_dropout = 0.2;
  mix.straggler = 0.15;
  mix.corrupt_message = 0.1;
  mix.truncate_message = 0.05;
  struct Mode {
    const char* name;
    bool retry;
    bool hedge;
    bool breaker;
  };
  const std::vector<Mode> modes = {{"off", false, false, false},
                                   {"retry", true, false, false},
                                   {"retry+hedge", true, true, false},
                                   {"retry+hedge+breaker", true, true, true}};
  Table res_table({"mode", "nrmse", "stderr", "recovered", "retries",
                   "hedges", "skips", "fallbacks", "minutes"});
  const std::vector<Client> clients =
      MakePopulation(data.values(), ClientConfig{});
  for (const Mode& mode : modes) {
    FederatedQueryConfig config;
    config.adaptive.bits = static_cast<int>(bits);
    config.cohort.max_cohort_size = (2 * n) / 3;
    config.fault_policy.report_deadline_minutes = 30.0;
    config.fault_policy.max_backfill_rounds = 2;
    config.fault_policy.max_round1_loss = 0.6;
    config.resilience.seed = static_cast<uint64_t>(seed) + 3;
    if (mode.retry) {
      config.resilience.retry.max_retries_per_client = 2;
    }
    config.resilience.hedge.enabled = mode.hedge;
    HealthTracker tracker;
    if (mode.breaker) {
      config.resilience.breaker.consecutive_failures_to_open = 2;
      config.resilience.breaker.cooldown_rounds = 2;
      tracker = HealthTracker(config.resilience.breaker);
      config.health = &tracker;
    }
    RetryStats retry;
    int64_t fallbacks = 0;
    const ErrorStats stats = RunRepetitions(
        reps, static_cast<uint64_t>(seed) + 4, data.truth().mean,
        [&](Rng& rng) {
          const FaultPlan plan(rng.NextUint64(), mix);
          config.fault_plan = &plan;
          const FederatedQueryResult result =
              RunFederatedMeanQuery(clients, codec, config, nullptr, rng);
          retry.MergeFrom(result.retry);
          fallbacks += result.faults.static_policy_fallbacks;
          return result.estimate;
        });
    config.fault_plan = nullptr;
    res_table.NewRow()
        .AddCell(mode.name)
        .AddDouble(stats.nrmse)
        .AddDouble(stats.stderr_nrmse, 3)
        .AddInt(retry.RecoveredTotal() / reps)
        .AddInt((retry.retries_scheduled + retry.retransmits_requested) /
                reps)
        .AddInt(retry.hedges_issued / reps)
        .AddInt(retry.breaker_skips / reps)
        .AddInt(fallbacks)
        .AddDouble(retry.elapsed_minutes / static_cast<double>(reps), 2);
  }
  output.AddTable(res_table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
