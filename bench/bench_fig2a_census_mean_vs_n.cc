// Figure 2a: NRMSE of mean estimation on census ages as the number of
// clients n grows, b = 8 bits.
//
// Expected shape (paper): error decreases broadly as n^{-1/2}; a few
// thousand users give ~3% NRMSE and ten thousand comfortably below that
// for the bit-pushing approaches; adaptive is the most accurate.

#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "data/census.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t reps = 100;
  int64_t bits = 8;
  int64_t seed = 20240328;
  FlagSet flags;
  bench::BenchOutput output(&flags, "fig2a_census_mean_vs_n");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddInt64("bits", &bits, "bit depth b");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header("Figure 2a: estimating mean with varying n",
                     "census ages",
                     "bits=" + std::to_string(bits) + " reps=" +
                         std::to_string(reps));

  const FixedPointCodec codec =
      FixedPointCodec::Integer(static_cast<int>(bits));
  Table table({"n", "method", "nrmse", "stderr"});
  Rng data_rng(static_cast<uint64_t>(seed));
  for (const int64_t n :
       std::vector<int64_t>{1000, 2000, 5000, 10000, 20000, 50000,
                            100000}) {
    const Dataset data = CensusAges(n, data_rng);
    for (const bench::MethodSpec& method : bench::AccuracyMethods()) {
      const ErrorStats stats = bench::EvaluateMethod(
          method, data, codec, reps, static_cast<uint64_t>(seed) + 1);
      table.NewRow()
          .AddInt(n)
          .AddCell(method.name)
          .AddDouble(stats.nrmse)
          .AddDouble(stats.stderr_nrmse, 3);
    }
  }
  output.AddTable(table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
