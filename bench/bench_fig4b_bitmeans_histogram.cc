// Figure 4b: the estimated (DP-unbiased) bit means per bit index at
// eps = 2 with b = 20, against the squash threshold of 0.05.
//
// Expected shape (paper): a clear "dense" region of informative means up
// to roughly bit 10, with higher bits showing random noise around 0 —
// some estimates exceeding 1.0 or falling below 0.0. Bit squashing keeps
// only the dense region.

#include <cstdint>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/adaptive.h"
#include "data/synthetic.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t n = 10000;
  int64_t bits = 20;
  double epsilon = 2.0;
  double threshold = 0.05;
  double mu = 500.0;
  double sigma = 100.0;
  int64_t seed = 20240402;
  FlagSet flags;
  bench::BenchOutput output(&flags, "fig4b_bitmeans_histogram");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("bits", &bits, "bit depth b");
  flags.AddDouble("epsilon", &epsilon, "LDP epsilon");
  flags.AddDouble("threshold", &threshold, "squash threshold to display");
  flags.AddDouble("mu", &mu, "mean of the Normal workload");
  flags.AddDouble("sigma", &sigma, "stddev of the Normal workload");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header(
      "Figure 4b: histogram of estimated bit means under DP",
      "Normal(" + std::to_string(mu) + ", " + std::to_string(sigma) + ")",
      "n=" + std::to_string(n) + " bits=" + std::to_string(bits) +
          " eps=" + std::to_string(epsilon) + " threshold=" +
          std::to_string(threshold));

  Rng rng(static_cast<uint64_t>(seed));
  const Dataset data = NormalData(n, mu, sigma, rng);
  const FixedPointCodec codec =
      FixedPointCodec::Integer(static_cast<int>(bits));

  AdaptiveConfig config;
  config.bits = static_cast<int>(bits);
  config.epsilon = epsilon;
  config.squash = SquashPolicy::Absolute(threshold);
  const AdaptiveResult result =
      RunAdaptiveBitPushing(codec.EncodeAll(data.values()), config, rng);

  // Exact bit means for reference.
  std::vector<double> exact(static_cast<size_t>(bits), 0.0);
  for (const double v : data.values()) {
    const uint64_t c = codec.Encode(v);
    for (int j = 0; j < bits; ++j) {
      exact[static_cast<size_t>(j)] += FixedPointCodec::Bit(c, j);
    }
  }
  for (double& m : exact) m /= static_cast<double>(n);

  Table table({"bit", "estimated_mean", "exact_mean", "kept"});
  for (int j = 0; j < bits; ++j) {
    table.NewRow()
        .AddInt(j)
        .AddDouble(result.final_means[static_cast<size_t>(j)], 4)
        .AddDouble(exact[static_cast<size_t>(j)], 4)
        .AddCell(result.kept[static_cast<size_t>(j)] ? "yes" : "squashed");
  }
  output.AddTable(table);
  std::printf(
      "\nestimate (squash on):  %.2f\ntrue mean:             %.2f\n",
      codec.Decode(result.estimate_codeword), data.truth().mean);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
