// Ablation: Corollary 3.2 — sending b_send bits per client divides the
// estimator variance by ~b_send (negative inter-bit covariance can help
// further), at the cost of the one-bit disclosure guarantee.

#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "core/bit_probabilities.h"
#include "core/bit_pushing.h"
#include "data/census.h"
#include "stats/repetition.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t n = 5000;
  int64_t reps = 300;
  int64_t bits = 8;
  int64_t seed = 20240407;
  FlagSet flags;
  bench::BenchOutput output(&flags, "ablation_bsend");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddInt64("bits", &bits, "bit depth b");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header("Ablation: bits per client (b_send)", "census ages",
                     "n=" + std::to_string(n) + " bits=" +
                         std::to_string(bits) + " reps=" +
                         std::to_string(reps));

  Rng data_rng(static_cast<uint64_t>(seed));
  const Dataset data = CensusAges(n, data_rng);
  const FixedPointCodec codec =
      FixedPointCodec::Integer(static_cast<int>(bits));
  const std::vector<uint64_t> codewords = codec.EncodeAll(data.values());

  Table table({"b_send", "nrmse", "variance", "var_ratio_vs_1"});
  double base_variance = 0.0;
  for (const int b_send : std::vector<int>{1, 2, 4, 8}) {
    BitPushingConfig config;
    config.probabilities =
        GeometricProbabilities(static_cast<int>(bits), 1.0);
    config.bits_per_client = b_send;
    const std::vector<double> estimates = CollectRepetitions(
        reps, static_cast<uint64_t>(seed) + 1, [&](Rng& rng) {
          return codec.Decode(RunBasicBitPushing(codewords, config, rng)
                                  .estimate_codeword);
        });
    const ErrorStats stats = ComputeErrorStats(estimates, data.truth().mean);
    const double variance = PopulationVariance(estimates);
    if (b_send == 1) base_variance = variance;
    table.NewRow()
        .AddInt(b_send)
        .AddDouble(stats.nrmse)
        .AddDouble(variance, 4)
        .AddDouble(base_variance / variance, 3);
  }
  output.AddTable(table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
