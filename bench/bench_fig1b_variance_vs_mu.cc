// Figure 1b: NRMSE of *variance* estimation on Normal(mu, sigma=100) data
// as mu varies, n = 100K clients (the paper allocates a larger cohort for
// this harder task).
//
// Expected shape (paper): dithering is orders of magnitude worse (it
// cannot adapt to the scale of the squared values); among the weighted
// single-round variants a=0.5 is preferred; adaptive achieves the best
// accuracy, keeping normalized errors in the ~1-2% range.

#include <cstdint>

#include "bench/bench_common.h"
#include "core/variance_estimation.h"
#include "data/synthetic.h"
#include "ldp/dithering.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

// Variance estimation with bit-pushing phases.
bench::MethodSpec BitPushingVariance(const std::string& name, bool adaptive,
                                     double gamma) {
  return bench::MethodSpec{
      name, [adaptive, gamma](const Dataset& data,
                              const FixedPointCodec& codec, Rng& rng) {
        VarianceConfig config;
        config.protocol.bits = codec.bits();
        config.protocol.gamma = gamma;
        config.adaptive = adaptive;
        return EstimateVariance(data.values(), codec, config, rng).variance;
      }};
}

// Dithering baseline: split the cohort; estimate E[X] over [0, H] and
// E[X^2] over [0, H^2] with subtractive dithering; combine.
bench::MethodSpec DitheringVariance() {
  return bench::MethodSpec{
      "dithering", [](const Dataset& data, const FixedPointCodec& codec,
                      Rng& rng) {
        const size_t half = data.values().size() / 2;
        const std::vector<double> first(data.values().begin(),
                                        data.values().begin() + half);
        std::vector<double> squares;
        squares.reserve(data.values().size() - half);
        for (size_t i = half; i < data.values().size(); ++i) {
          squares.push_back(data.values()[i] * data.values()[i]);
        }
        const SubtractiveDithering mean_mech(0.0, 0.0, codec.high());
        const SubtractiveDithering sq_mech(0.0, 0.0,
                                           codec.high() * codec.high());
        const double mean = mean_mech.EstimateMean(first, rng);
        const double second = sq_mech.EstimateMean(squares, rng);
        return std::max(0.0, second - mean * mean);
      }};
}

int Main(int argc, char** argv) {
  int64_t n = 100000;
  int64_t reps = 30;
  int64_t bits = 14;
  double sigma = 100.0;
  int64_t seed = 20240326;
  FlagSet flags;
  bench::BenchOutput output(&flags, "fig1b_variance_vs_mu");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddInt64("bits", &bits, "bit depth b for the input domain");
  flags.AddDouble("sigma", &sigma, "stddev of the Normal workload");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header("Figure 1b: estimating variance with mu varying",
                     "Normal(mu, sigma=" + std::to_string(sigma) + ")",
                     "n=" + std::to_string(n) + " bits=" +
                         std::to_string(bits) + " reps=" +
                         std::to_string(reps));

  const FixedPointCodec codec =
      FixedPointCodec::Integer(static_cast<int>(bits));
  const std::vector<bench::MethodSpec> methods = {
      DitheringVariance(),
      BitPushingVariance("weighted a=0.5", /*adaptive=*/false, 0.5),
      BitPushingVariance("weighted a=1.0", /*adaptive=*/false, 1.0),
      BitPushingVariance("adaptive", /*adaptive=*/true, 0.5),
  };

  Table table({"mu", "method", "nrmse", "stderr"});
  Rng data_rng(static_cast<uint64_t>(seed));
  for (double mu = 200.0; mu <= 6400.0; mu *= 2.0) {
    const Dataset data = NormalData(n, mu, sigma, data_rng);
    for (const bench::MethodSpec& method : methods) {
      const ErrorStats stats = bench::EvaluateMethodAgainst(
          method, data, codec, data.truth().variance, reps,
          static_cast<uint64_t>(seed) + 1);
      table.NewRow()
          .AddDouble(mu, 6)
          .AddCell(method.name)
          .AddDouble(stats.nrmse)
          .AddDouble(stats.stderr_nrmse, 3);
    }
  }
  output.AddTable(table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
