// Figure 4a: effect of the bit-squashing threshold on RMSE under DP
// (eps = 2) with a deep codeword (b = 20) on synthetic data.
//
// The paper sweeps the threshold "as a multiple of the expected amount of
// DP noise" and finds 0.05-0.2 (absolute, cf. Figure 4b's 0.05 line) very
// effective — improving accuracy by almost two orders of magnitude. We
// print both parameterizations: the absolute threshold on the bit mean
// and the per-bit noise-multiple variant.

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "data/synthetic.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t n = 10000;
  int64_t reps = 50;
  int64_t bits = 20;
  double epsilon = 2.0;
  double mu = 500.0;
  double sigma = 100.0;
  int64_t seed = 20240401;
  FlagSet flags;
  bench::BenchOutput output(&flags, "fig4a_squash_threshold");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddInt64("bits", &bits, "bit depth b");
  flags.AddDouble("epsilon", &epsilon, "LDP epsilon");
  flags.AddDouble("mu", &mu, "mean of the Normal workload");
  flags.AddDouble("sigma", &sigma, "stddev of the Normal workload");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header(
      "Figure 4a: RMSE vs bit-squashing threshold under DP",
      "Normal(" + std::to_string(mu) + ", " + std::to_string(sigma) + ")",
      "n=" + std::to_string(n) + " bits=" + std::to_string(bits) +
          " eps=" + std::to_string(epsilon) + " reps=" +
          std::to_string(reps));

  Rng data_rng(static_cast<uint64_t>(seed));
  const Dataset data = NormalData(n, mu, sigma, data_rng);
  const FixedPointCodec codec =
      FixedPointCodec::Integer(static_cast<int>(bits));

  Table absolute({"threshold(abs)", "rmse", "nrmse", "stderr"});
  for (const double threshold :
       std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    const SquashPolicy policy = threshold == 0.0
                                    ? SquashPolicy::Off()
                                    : SquashPolicy::Absolute(threshold);
    const ErrorStats stats = bench::EvaluateMethod(
        bench::AdaptiveMethod(epsilon, policy), data, codec, reps,
        static_cast<uint64_t>(seed) + 1);
    absolute.NewRow()
        .AddDouble(threshold, 3)
        .AddDouble(stats.rmse)
        .AddDouble(stats.nrmse)
        .AddDouble(stats.stderr_nrmse, 3);
  }
  output.AddTable(absolute);
  std::printf("\n");

  Table multiple({"threshold(xnoise)", "rmse", "nrmse", "stderr"});
  for (const double factor :
       std::vector<double>{0.0, 0.5, 1.0, 2.0, 3.0, 5.0}) {
    const SquashPolicy policy =
        factor == 0.0 ? SquashPolicy::Off()
                      : SquashPolicy::NoiseMultiple(factor);
    const ErrorStats stats = bench::EvaluateMethod(
        bench::AdaptiveMethod(epsilon, policy), data, codec, reps,
        static_cast<uint64_t>(seed) + 1);
    multiple.NewRow()
        .AddDouble(factor, 3)
        .AddDouble(stats.rmse)
        .AddDouble(stats.nrmse)
        .AddDouble(stats.stderr_nrmse, 3);
  }
  output.AddTable(multiple);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
