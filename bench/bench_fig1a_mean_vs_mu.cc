// Figure 1a: NRMSE of mean estimation on Normal(mu, sigma=100) data as the
// true mean mu sweeps across the 16-bit domain, n = 10K clients.
//
// Expected shape (paper): normalized error decreases as mu grows; the
// dithering baseline shows step-ups near powers of two; the adaptive
// approach reliably achieves the least error.

#include <cstdint>

#include "bench/bench_common.h"
#include "data/synthetic.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t n = 10000;
  int64_t reps = 100;
  int64_t bits = 16;
  double sigma = 100.0;
  int64_t seed = 20240325;
  FlagSet flags;
  bench::BenchOutput output(&flags, "fig1a_mean_vs_mu");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddInt64("bits", &bits, "bit depth b");
  flags.AddDouble("sigma", &sigma, "stddev of the Normal workload");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header("Figure 1a: estimating mean with mu varying",
                     "Normal(mu, sigma=" + std::to_string(sigma) + ")",
                     "n=" + std::to_string(n) + " bits=" +
                         std::to_string(bits) + " reps=" +
                         std::to_string(reps));

  const FixedPointCodec codec =
      FixedPointCodec::Integer(static_cast<int>(bits));
  Table table({"mu", "method", "nrmse", "stderr"});
  Rng data_rng(static_cast<uint64_t>(seed));
  for (double mu = 100.0; mu <= 12800.0; mu *= 2.0) {
    const Dataset data = NormalData(n, mu, sigma, data_rng);
    for (const bench::MethodSpec& method : bench::AccuracyMethods()) {
      const ErrorStats stats = bench::EvaluateMethod(
          method, data, codec, reps, static_cast<uint64_t>(seed) + 1);
      table.NewRow()
          .AddDouble(mu, 6)
          .AddCell(method.name)
          .AddDouble(stats.nrmse)
          .AddDouble(stats.stderr_nrmse, 3);
    }
  }
  output.AddTable(table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
