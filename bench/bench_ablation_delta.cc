// Ablation: the round-1 fraction delta of adaptive bit-pushing. The
// paper's analysis recommends delta = 1/3 over the naive 1/2; the sweep
// shows the error curve across the range.

#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "core/adaptive.h"
#include "data/census.h"
#include "stats/repetition.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t n = 10000;
  int64_t reps = 150;
  int64_t bits = 16;
  int64_t seed = 20240405;
  FlagSet flags;
  bench::BenchOutput output(&flags, "ablation_delta");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddInt64("bits", &bits, "bit depth b");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header("Ablation: round-1 split delta", "census ages",
                     "n=" + std::to_string(n) + " bits=" +
                         std::to_string(bits) + " reps=" +
                         std::to_string(reps));

  Rng data_rng(static_cast<uint64_t>(seed));
  const Dataset data = CensusAges(n, data_rng);
  const FixedPointCodec codec =
      FixedPointCodec::Integer(static_cast<int>(bits));
  const std::vector<uint64_t> codewords = codec.EncodeAll(data.values());

  Table table({"delta", "nrmse", "stderr"});
  for (const double delta :
       std::vector<double>{0.1, 0.2, 1.0 / 3.0, 0.5, 0.7, 0.9}) {
    AdaptiveConfig config;
    config.bits = static_cast<int>(bits);
    config.delta = delta;
    const ErrorStats stats = RunRepetitions(
        reps, static_cast<uint64_t>(seed) + 1, data.truth().mean,
        [&](Rng& rng) {
          return codec.Decode(RunAdaptiveBitPushing(codewords, config, rng)
                                  .estimate_codeword);
        });
    table.NewRow()
        .AddDouble(delta, 4)
        .AddDouble(stats.nrmse)
        .AddDouble(stats.stderr_nrmse, 3);
  }
  output.AddTable(table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
