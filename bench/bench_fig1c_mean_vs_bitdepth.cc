// Figure 1c: NRMSE of mean estimation on Normal(mu=1000, sigma=100) data
// as the bit depth b grows past what the data needs (the data uses ~11
// bits; b sweeps 11..20), n = 10K.
//
// Expected shape (paper): all one-round approaches grow in error with b —
// less so for a=0.5 than a=1.0 — while the adaptive approach identifies
// the redundant bits in round 1 and is largely oblivious to the increase.

#include <cstdint>

#include "bench/bench_common.h"
#include "data/synthetic.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

int Main(int argc, char** argv) {
  int64_t n = 10000;
  int64_t reps = 100;
  double mu = 1000.0;
  double sigma = 100.0;
  int64_t min_bits = 11;
  int64_t max_bits = 20;
  int64_t seed = 20240327;
  FlagSet flags;
  bench::BenchOutput output(&flags, "fig1c_mean_vs_bitdepth");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddDouble("mu", &mu, "mean of the Normal workload");
  flags.AddDouble("sigma", &sigma, "stddev of the Normal workload");
  flags.AddInt64("min_bits", &min_bits, "smallest bit depth");
  flags.AddInt64("max_bits", &max_bits, "largest bit depth");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header(
      "Figure 1c: estimating mean with varying bit depth",
      "Normal(" + std::to_string(mu) + ", " + std::to_string(sigma) + ")",
      "n=" + std::to_string(n) + " reps=" + std::to_string(reps));

  Rng data_rng(static_cast<uint64_t>(seed));
  const Dataset data = NormalData(n, mu, sigma, data_rng);
  Table table({"bits", "method", "nrmse", "stderr"});
  for (int64_t bits = min_bits; bits <= max_bits; ++bits) {
    const FixedPointCodec codec =
        FixedPointCodec::Integer(static_cast<int>(bits));
    for (const bench::MethodSpec& method : bench::AccuracyMethods()) {
      const ErrorStats stats = bench::EvaluateMethod(
          method, data, codec, reps, static_cast<uint64_t>(seed) + 1);
      table.NewRow()
          .AddInt(bits)
          .AddCell(method.name)
          .AddDouble(stats.nrmse)
          .AddDouble(stats.stderr_nrmse, 3);
    }
  }
  output.AddTable(table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
