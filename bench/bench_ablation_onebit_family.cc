// Ablation: the one-bit encoding family of Ben-Basat et al. (footnote 3 of
// the paper: "subtractive dithering was a clear frontrunner") against
// bit-pushing, with tight and loose range bounds. Expected: subtractive
// beats the other fixed-range one-bit encodings everywhere; bit-pushing
// matches it at tight bounds and crushes every fixed-range method at loose
// ones.

#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "data/census.h"
#include "ldp/duchi.h"
#include "ldp/rounding.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

bench::MethodSpec DeterministicRoundingMethod() {
  return bench::MethodSpec{
      "deterministic_rounding",
      [](const Dataset& data, const FixedPointCodec& codec, Rng& rng) {
        const DeterministicRounding mechanism(0.0, codec.low(),
                                              codec.high());
        return mechanism.EstimateMean(data.values(), rng);
      }};
}

bench::MethodSpec NonSubtractiveMethod() {
  return bench::MethodSpec{
      "nonsubtractive_dithering",
      [](const Dataset& data, const FixedPointCodec& codec, Rng& rng) {
        const NonSubtractiveDithering mechanism(0.0, codec.low(),
                                                codec.high());
        return mechanism.EstimateMean(data.values(), rng);
      }};
}

int Main(int argc, char** argv) {
  int64_t n = 10000;
  int64_t reps = 100;
  int64_t seed = 20240413;
  FlagSet flags;
  bench::BenchOutput output(&flags, "ablation_onebit_family");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header("Ablation: the one-bit encoding family",
                     "census ages",
                     "n=" + std::to_string(n) + " reps=" +
                         std::to_string(reps));

  Rng data_rng(static_cast<uint64_t>(seed));
  const Dataset data = CensusAges(n, data_rng);

  Table table({"bits", "method", "nrmse", "stderr"});
  for (const int bits : std::vector<int>{7, 16}) {
    const FixedPointCodec codec = FixedPointCodec::Integer(bits);
    const std::vector<bench::MethodSpec> methods = {
        bench::DitheringMethod(0.0),
        NonSubtractiveMethod(),
        DeterministicRoundingMethod(),
        bench::DuchiMethod(0.0),  // randomized rounding without DP
        bench::AdaptiveMethod(0.0),
    };
    for (const bench::MethodSpec& method : methods) {
      const ErrorStats stats = bench::EvaluateMethod(
          method, data, codec, reps, static_cast<uint64_t>(seed) + 1);
      table.NewRow()
          .AddInt(bits)
          .AddCell(method.name)
          .AddDouble(stats.nrmse)
          .AddDouble(stats.stderr_nrmse, 3);
    }
  }
  output.AddTable(table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
