// Figure 2b: NRMSE of variance estimation on census ages as n grows.
//
// Expected shape (paper): error decreases roughly as n^{-1/2}, with more
// fluctuation at small n for the adaptive approach; dithering cannot adapt
// to the squared-value scale and stays far worse.

#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "core/variance_estimation.h"
#include "data/census.h"
#include "ldp/dithering.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

bench::MethodSpec BitPushingVariance(const std::string& name, bool adaptive,
                                     double gamma) {
  return bench::MethodSpec{
      name, [adaptive, gamma](const Dataset& data,
                              const FixedPointCodec& codec, Rng& rng) {
        VarianceConfig config;
        config.protocol.bits = codec.bits();
        config.protocol.gamma = gamma;
        config.adaptive = adaptive;
        return EstimateVariance(data.values(), codec, config, rng).variance;
      }};
}

bench::MethodSpec DitheringVariance() {
  return bench::MethodSpec{
      "dithering", [](const Dataset& data, const FixedPointCodec& codec,
                      Rng& rng) {
        const size_t half = data.values().size() / 2;
        const std::vector<double> first(data.values().begin(),
                                        data.values().begin() + half);
        std::vector<double> squares;
        for (size_t i = half; i < data.values().size(); ++i) {
          squares.push_back(data.values()[i] * data.values()[i]);
        }
        const SubtractiveDithering mean_mech(0.0, 0.0, codec.high());
        const SubtractiveDithering sq_mech(0.0, 0.0,
                                           codec.high() * codec.high());
        const double mean = mean_mech.EstimateMean(first, rng);
        const double second = sq_mech.EstimateMean(squares, rng);
        return std::max(0.0, second - mean * mean);
      }};
}

int Main(int argc, char** argv) {
  int64_t reps = 30;
  int64_t bits = 7;
  int64_t seed = 20240329;
  FlagSet flags;
  bench::BenchOutput output(&flags, "fig2b_census_var_vs_n");
  flags.AddInt64("reps", &reps, "repetitions per point");
  flags.AddInt64("bits", &bits, "bit depth b");
  flags.AddInt64("seed", &seed, "base seed");
  flags.Parse(argc, argv);

  output.Header("Figure 2b: estimating variance with varying n",
                     "census ages",
                     "bits=" + std::to_string(bits) + " reps=" +
                         std::to_string(reps));

  const FixedPointCodec codec =
      FixedPointCodec::Integer(static_cast<int>(bits));
  const std::vector<bench::MethodSpec> methods = {
      DitheringVariance(),
      BitPushingVariance("weighted a=0.5", false, 0.5),
      BitPushingVariance("weighted a=1.0", false, 1.0),
      BitPushingVariance("adaptive", true, 0.5),
  };

  Table table({"n", "method", "nrmse", "stderr"});
  Rng data_rng(static_cast<uint64_t>(seed));
  for (const int64_t n :
       std::vector<int64_t>{10000, 30000, 100000, 300000}) {
    const Dataset data = CensusAges(n, data_rng);
    for (const bench::MethodSpec& method : methods) {
      const ErrorStats stats = bench::EvaluateMethodAgainst(
          method, data, codec, data.truth().variance, reps,
          static_cast<uint64_t>(seed) + 1);
      table.NewRow()
          .AddInt(n)
          .AddCell(method.name)
          .AddDouble(stats.nrmse)
          .AddDouble(stats.stderr_nrmse, 3);
    }
  }
  output.AddTable(table);
  return output.Finish();
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
