// Micro-benchmarks of the protocol hot paths (google-benchmark): encoding,
// bit-report generation, QMC assignment, full basic and adaptive protocol
// runs, randomized response, and the columnar kernel layer (reports/sec,
// scalar vs dispatched SIMD). After the benchmarks, main runs two guards,
// each enforced with a nonzero exit code:
//
//   * obs overhead guard — enabling the metrics registry (no exporters
//     attached) must cost less than 2% on the instrumented EncodeAll path;
//   * kernel throughput guard — the dispatched batch path (kernel encode +
//     popcount aggregation) must beat the seed's per-report scalar path by
//     at least 10x on encode+aggregate (ROADMAP item 1), recorded in
//     BENCH_kernel_throughput.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "obs/events.h"
#include "obs/metrics.h"

#include "batch/batch.h"
#include "core/adaptive.h"
#include "core/bit_probabilities.h"
#include "core/bit_pushing.h"
#include "core/fixed_point.h"
#include "core/histogram_estimation.h"
#include "core/range_tree.h"
#include "data/census.h"
#include "federated/shamir.h"
#include "kernels/kernels.h"
#include "ldp/memoization.h"
#include "ldp/randomized_response.h"
#include "rng/qmc.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

const Dataset& BenchAges() {
  static const Dataset& data = *new Dataset([] {
    Rng rng(1);
    return CensusAges(100000, rng);
  }());
  return data;
}

void BM_Encode(benchmark::State& state) {
  const FixedPointCodec codec = FixedPointCodec::Integer(16);
  const std::vector<double>& values = BenchAges().values();
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.EncodeAll(values));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_Encode);

void BM_RandomizedResponse(benchmark::State& state) {
  const RandomizedResponse rr(1.0);
  Rng rng(2);
  int bit = 1;
  for (auto _ : state) {
    bit = rr.Apply(bit, rng);
    benchmark::DoNotOptimize(bit);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomizedResponse);

void BM_QmcAssignment(benchmark::State& state) {
  const std::vector<double> p = GeometricProbabilities(16, 0.5);
  Rng rng(3);
  const int64_t n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AssignBitsCentral(n, p, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QmcAssignment)->Arg(10000)->Arg(100000);

void BM_BasicBitPushing(benchmark::State& state) {
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  const std::vector<uint64_t> codewords =
      codec.EncodeAll(BenchAges().values());
  BitPushingConfig config;
  config.probabilities = GeometricProbabilities(8, 0.5);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunBasicBitPushing(codewords, config, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(codewords.size()));
}
BENCHMARK(BM_BasicBitPushing);

void BM_BasicBitPushingWithDp(benchmark::State& state) {
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  const std::vector<uint64_t> codewords =
      codec.EncodeAll(BenchAges().values());
  BitPushingConfig config;
  config.probabilities = GeometricProbabilities(8, 0.5);
  config.epsilon = 1.0;
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunBasicBitPushing(codewords, config, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(codewords.size()));
}
BENCHMARK(BM_BasicBitPushingWithDp);

void BM_AdaptiveBitPushing(benchmark::State& state) {
  const FixedPointCodec codec = FixedPointCodec::Integer(16);
  const std::vector<uint64_t> codewords =
      codec.EncodeAll(BenchAges().values());
  AdaptiveConfig config;
  config.bits = 16;
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAdaptiveBitPushing(codewords, config, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(codewords.size()));
}
BENCHMARK(BM_AdaptiveBitPushing);

void BM_HistogramEstimation(benchmark::State& state) {
  HistogramConfig config;
  config.edges = UniformEdges(0.0, 91.0, 16);
  Rng rng(7);
  const std::vector<double>& values = BenchAges().values();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateHistogram(values, config, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_HistogramEstimation);

void BM_RangeTree(benchmark::State& state) {
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const std::vector<uint64_t> codewords =
      codec.EncodeAll(BenchAges().values());
  RangeTreeConfig config;
  config.levels = 7;
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateRangeTree(codewords, config, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(codewords.size()));
}
BENCHMARK(BM_RangeTree);

void BM_ShamirShareAndReconstruct(benchmark::State& state) {
  Rng rng(9);
  const int threshold = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const std::vector<ShamirShare> shares =
        ShamirShareSecret(123456789, threshold, 2 * threshold, rng);
    benchmark::DoNotOptimize(ShamirReconstruct(shares, threshold));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShamirShareAndReconstruct)->Arg(5)->Arg(20);

void BM_MemoizedReport(benchmark::State& state) {
  const MemoizedResponder responder(1.0, 1.0, 42);
  Rng rng(10);
  int64_t value_id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        responder.Report(value_id++ % 1000, 3, 1, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoizedReport);

// ---------------------------------------------------------------------------
// Columnar kernel layer (src/kernels/, src/batch/): reports/sec with the
// dispatched kernel and with the scalar kernel forced, so a bench run
// shows the SIMD margin directly.

std::vector<double> KernelBenchValues(int64_t n) {
  const std::vector<double>& ages = BenchAges().values();
  std::vector<double> values(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    values[static_cast<size_t>(i)] =
        ages[static_cast<size_t>(i) % ages.size()];
  }
  return values;
}

std::vector<int> KernelBenchAssignment(int64_t n, int bits) {
  Rng rng(17);
  std::vector<int> assignment(static_cast<size_t>(n));
  for (int& a : assignment) {
    a = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(bits)));
  }
  return assignment;
}

template <bool kForceScalar>
void BM_KernelEncodeBatch(benchmark::State& state) {
  std::optional<kernels::ScopedForceScalar> force;
  if (kForceScalar) force.emplace();
  const FixedPointCodec codec = FixedPointCodec::Integer(16);
  const std::vector<double> values = KernelBenchValues(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.EncodeAll(values));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
  state.SetLabel(kernels::ActiveKernel().name);
}
BENCHMARK(BM_KernelEncodeBatch<false>)->Arg(65536)->Arg(1 << 20);
BENCHMARK(BM_KernelEncodeBatch<true>)->Arg(65536)->Arg(1 << 20);

template <bool kForceScalar>
void BM_KernelAggregateBatch(benchmark::State& state) {
  std::optional<kernels::ScopedForceScalar> force;
  if (kForceScalar) force.emplace();
  const int bits = 16;
  const int64_t n = state.range(0);
  const FixedPointCodec codec = FixedPointCodec::Integer(bits);
  const ReportBatch batch = BuildReportBatch(
      codec.EncodeAll(KernelBenchValues(n)), KernelBenchAssignment(n, bits),
      bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AggregateBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(kernels::ActiveKernel().name);
}
BENCHMARK(BM_KernelAggregateBatch<false>)->Arg(65536)->Arg(1 << 20);
BENCHMARK(BM_KernelAggregateBatch<true>)->Arg(65536)->Arg(1 << 20);

void BM_KernelBuildPlanes(benchmark::State& state) {
  const int bits = 16;
  const int64_t n = state.range(0);
  const FixedPointCodec codec = FixedPointCodec::Integer(bits);
  const std::vector<uint64_t> codewords =
      codec.EncodeAll(KernelBenchValues(n));
  const std::vector<int> assignment = KernelBenchAssignment(n, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildReportBatch(codewords, assignment, bits));
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(kernels::ActiveKernel().name);
}
BENCHMARK(BM_KernelBuildPlanes)->Arg(65536)->Arg(1 << 20);

void BM_KernelPerturbBatch(benchmark::State& state) {
  const int bits = 16;
  const int64_t n = state.range(0);
  const FixedPointCodec codec = FixedPointCodec::Integer(bits);
  const ReportBatch base = BuildReportBatch(
      codec.EncodeAll(KernelBenchValues(n)), KernelBenchAssignment(n, bits),
      bits);
  const RandomizedResponse rr(1.0);
  Rng rng(23);
  for (auto _ : state) {
    ReportBatch batch = base;
    PerturbBatch(&batch, rr, rng);
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(kernels::ActiveKernel().name);
}
BENCHMARK(BM_KernelPerturbBatch)->Arg(65536);

// The guard times two instrumented hot paths — FixedPointCodec::EncodeAll
// (carries an obs::ScopedTimer) and the same encode loop with one
// flight-recorder emission per iteration (the shape of the real
// instrumentation: events mark round boundaries, not per-report work) —
// each with the registry disabled and enabled, and checks the
// enabled/disabled ratio per path. Min-of-trials per side plus retry
// rounds keep scheduler noise from failing a healthy build; the threshold
// can be loosened for slow CI machines via BITPUSH_OBS_OVERHEAD_MAX. Both
// measurements land in BENCH_obs_overhead.json (path override:
// BITPUSH_OBS_BENCH_JSON).
struct ObsGuardSample {
  const char* name = "";
  double ratio = 0.0;
  double threshold = 0.0;
  bool pass = false;
};

template <typename Workload>
ObsGuardSample MeasureObsGuard(const char* name, double threshold,
                               const Workload& workload) {
  constexpr int kTrials = 7;
  constexpr int kRounds = 5;

  const auto time_once = [&] {
    const auto start = std::chrono::steady_clock::now();
    workload();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const auto best_of_trials = [&] {
    double best = time_once();
    for (int t = 1; t < kTrials; ++t) best = std::min(best, time_once());
    return best;
  };

  ObsGuardSample sample;
  sample.name = name;
  sample.threshold = threshold;
  for (int round = 0; round < kRounds; ++round) {
    obs::SetEnabled(false);
    const double disabled = best_of_trials();
    obs::SetEnabled(true);
    const double enabled = best_of_trials();
    obs::SetEnabled(false);
    sample.ratio = enabled / disabled;
    std::printf(
        "obs_overhead_ratio[%s] %.4f (threshold %.4f, round %d/%d)\n", name,
        sample.ratio, threshold, round + 1, kRounds);
    if (sample.ratio < threshold) {
      sample.pass = true;
      return sample;
    }
  }
  return sample;
}

int RunObsOverheadGuard() {
  const FixedPointCodec codec = FixedPointCodec::Integer(16);
  const std::vector<double>& values = BenchAges().values();
  constexpr int kInnerIterations = 20;

  double threshold = 1.02;
  if (const char* env = std::getenv("BITPUSH_OBS_OVERHEAD_MAX")) {
    threshold = std::atof(env);
  }

  const auto timer_workload = [&] {
    for (int i = 0; i < kInnerIterations; ++i) {
      benchmark::DoNotOptimize(codec.EncodeAll(values));
    }
  };
  const auto event_workload = [&] {
    for (int i = 0; i < kInnerIterations; ++i) {
      benchmark::DoNotOptimize(codec.EncodeAll(values));
      // kVolatile: the bench runs on the wall clock, so nothing it emits
      // may enter the byte-stable ring.
      obs::EventArgs args;
      args.round_id = i;
      obs::EmitEvent(obs::EventType::kRoundOutcome,
                     obs::Determinism::kVolatile, std::move(args));
    }
  };

  // Fresh ring so the guard measures steady-state appends, not eviction
  // churn left over from earlier benchmark cases.
  obs::EventRecorder::Default().Reset();
  const ObsGuardSample timer =
      MeasureObsGuard("scoped_timer", threshold, timer_workload);
  const ObsGuardSample events =
      MeasureObsGuard("event_ring", threshold, event_workload);

  const char* json_env = std::getenv("BITPUSH_OBS_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_obs_overhead.json";
  if (std::FILE* out = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"threshold\": %.4f,\n"
                 "  \"paths\": [\n",
                 threshold);
    const ObsGuardSample* samples[] = {&timer, &events};
    for (size_t i = 0; i < 2; ++i) {
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"ratio\": %.4f, "
                   "\"status\": \"%s\"}%s\n",
                   samples[i]->name, samples[i]->ratio,
                   samples[i]->pass ? "pass" : "fail", i == 0 ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("obs_overhead json written to %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "obs_overhead_guard: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }

  int status = 0;
  for (const ObsGuardSample* sample : {&timer, &events}) {
    if (sample->pass) {
      std::printf("obs_overhead_guard[%s] PASS\n", sample->name);
    } else {
      std::fprintf(stderr,
                   "obs_overhead_guard[%s] FAIL: ratio %.4f >= %.4f\n",
                   sample->name, sample->ratio, sample->threshold);
      status = 1;
    }
  }
  return status;
}

// The kernel throughput guard (ROADMAP item 1's acceptance line): the
// dispatched batch path must deliver >= 10x the seed's per-report scalar
// path on the encode+aggregate work of one round.
//
// What each side measures, at n = 65536 clients, bits = 16:
//
//   * seed path — the pre-columnar implementation, verbatim: scalar
//     FixedPointCodec::EncodeAll (ScopedForceScalar) followed by the
//     per-report tally loop (MakeBitReport + BitHistogram::Add per
//     client), i.e. one 16-byte report through the AoS pipeline each.
//   * batch path — the dispatched kernel encode into a preallocated
//     codeword array plus AggregateBatch (per-plane popcount) over a
//     prebuilt ReportBatch.
//
// Batch *construction* (BuildReportBatch) is deliberately outside the
// gated metric: a round builds its batch once and aggregates it, while
// the seed path re-walked every report for every count, which is exactly
// the asymmetry the columnar layout exists to exploit. BuildReportBatch
// cost is visible separately in BM_KernelBuildPlanes. Min-of-trials on
// both sides keeps scheduler noise out; n = 2^20 is also measured and
// reported (DRAM-bound, typically a smaller margin) but not gated. The
// threshold can be adjusted via BITPUSH_KERNEL_SPEEDUP_MIN; the guard is
// skipped (exit 0) when no SIMD kernel is active, since the 10x target is
// a claim about the dispatched path. Results land in
// BENCH_kernel_throughput.json (path override: BITPUSH_KERNEL_BENCH_JSON).
struct KernelGuardSample {
  int64_t n = 0;
  double seed_seconds = 0.0;
  double batch_seconds = 0.0;
  double speedup = 0.0;
};

KernelGuardSample MeasureKernelGuard(int64_t n) {
  constexpr int kBits = 16;
  constexpr int kTrials = 5;
  const FixedPointCodec codec = FixedPointCodec::Integer(kBits);
  const std::vector<double> values = KernelBenchValues(n);
  const std::vector<int> assignment = KernelBenchAssignment(n, kBits);
  const std::vector<uint64_t> codewords = codec.EncodeAll(values);
  const ReportBatch batch = BuildReportBatch(codewords, assignment, kBits);
  const kernels::EncodeParams params{codec.low(), codec.high(),
                                     1.0 / codec.resolution(),
                                     codec.max_codeword()};
  std::vector<uint64_t> encoded(static_cast<size_t>(n));
  const RandomizedResponse rr = RandomizedResponse::Disabled();

  const auto min_of_trials = [&](const auto& body) {
    double best = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      const auto start = std::chrono::steady_clock::now();
      body();
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      if (t == 0 || seconds < best) best = seconds;
    }
    return best;
  };

  KernelGuardSample sample;
  sample.n = n;
  sample.seed_seconds = min_of_trials([&] {
    kernels::ScopedForceScalar force_scalar;
    benchmark::DoNotOptimize(codec.EncodeAll(values));
    Rng rng(1);
    BitHistogram histogram(kBits);
    for (int64_t i = 0; i < n; ++i) {
      const int bit_index = assignment[static_cast<size_t>(i)];
      histogram.Add(bit_index,
                    MakeBitReport(codewords[static_cast<size_t>(i)],
                                  bit_index, rr, rng));
    }
    benchmark::DoNotOptimize(histogram);
  });
  sample.batch_seconds = min_of_trials([&] {
    kernels::ActiveKernel().encode_codewords(values.data(), n, params,
                                             encoded.data());
    benchmark::DoNotOptimize(encoded);
    benchmark::DoNotOptimize(AggregateBatch(batch));
  });
  sample.speedup = sample.seed_seconds / sample.batch_seconds;
  return sample;
}

int RunKernelThroughputGuard() {
  constexpr int64_t kGateN = 65536;
  constexpr int64_t kInfoN = 1 << 20;

  double threshold = 10.0;
  if (const char* env = std::getenv("BITPUSH_KERNEL_SPEEDUP_MIN")) {
    threshold = std::atof(env);
  }
  const char* json_env = std::getenv("BITPUSH_KERNEL_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_kernel_throughput.json";

  const bool gated = kernels::SimdActive();
  const KernelGuardSample gate = MeasureKernelGuard(kGateN);
  const KernelGuardSample info = MeasureKernelGuard(kInfoN);
  const bool pass = !gated || gate.speedup >= threshold;

  const auto print_sample = [](const char* tag,
                               const KernelGuardSample& s) {
    std::printf(
        "kernel_throughput %s n=%lld seed_ns_per_report=%.3f "
        "batch_ns_per_report=%.3f speedup=%.2f\n",
        tag, static_cast<long long>(s.n),
        1e9 * s.seed_seconds / static_cast<double>(s.n),
        1e9 * s.batch_seconds / static_cast<double>(s.n), s.speedup);
  };
  print_sample("gate", gate);
  print_sample("info", info);

  if (std::FILE* out = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(
        out,
        "{\n"
        "  \"kernel\": \"%s\",\n"
        "  \"bits\": 16,\n"
        "  \"threshold\": %.2f,\n"
        "  \"gate\": {\"n\": %lld, \"seed_ns_per_report\": %.3f,\n"
        "           \"batch_ns_per_report\": %.3f, \"speedup\": %.2f,\n"
        "           \"status\": \"%s\"},\n"
        "  \"info\": [{\"n\": %lld, \"seed_ns_per_report\": %.3f,\n"
        "            \"batch_ns_per_report\": %.3f, \"speedup\": %.2f}]\n"
        "}\n",
        kernels::ActiveKernel().name, threshold,
        static_cast<long long>(gate.n),
        1e9 * gate.seed_seconds / static_cast<double>(gate.n),
        1e9 * gate.batch_seconds / static_cast<double>(gate.n),
        gate.speedup,
        !gated ? "skipped_no_simd" : (pass ? "pass" : "fail"),
        static_cast<long long>(info.n),
        1e9 * info.seed_seconds / static_cast<double>(info.n),
        1e9 * info.batch_seconds / static_cast<double>(info.n),
        info.speedup);
    std::fclose(out);
    std::printf("kernel_throughput json written to %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "kernel_throughput_guard: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }

  if (!gated) {
    std::printf(
        "kernel_throughput_guard SKIP (scalar kernel active; the 10x gate "
        "is a claim about the dispatched SIMD path)\n");
    return 0;
  }
  if (pass) {
    std::printf("kernel_throughput_guard PASS (%.2fx >= %.2fx)\n",
                gate.speedup, threshold);
    return 0;
  }
  std::fprintf(stderr, "kernel_throughput_guard FAIL: %.2fx < %.2fx\n",
               gate.speedup, threshold);
  return 1;
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const int obs_guard = bitpush::RunObsOverheadGuard();
  const int kernel_guard = bitpush::RunKernelThroughputGuard();
  return obs_guard != 0 ? obs_guard : kernel_guard;
}
