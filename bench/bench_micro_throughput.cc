// Micro-benchmarks of the protocol hot paths (google-benchmark): encoding,
// bit-report generation, QMC assignment, full basic and adaptive protocol
// runs, and randomized response. After the benchmarks, main runs the obs
// overhead guard: enabling the metrics registry (no exporters attached)
// must cost less than 2% on the instrumented EncodeAll hot path, enforced
// with a nonzero exit code.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include <benchmark/benchmark.h>

#include "obs/metrics.h"

#include "core/adaptive.h"
#include "core/bit_probabilities.h"
#include "core/bit_pushing.h"
#include "core/fixed_point.h"
#include "core/histogram_estimation.h"
#include "core/range_tree.h"
#include "data/census.h"
#include "federated/shamir.h"
#include "ldp/memoization.h"
#include "ldp/randomized_response.h"
#include "rng/qmc.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

const Dataset& BenchAges() {
  static const Dataset& data = *new Dataset([] {
    Rng rng(1);
    return CensusAges(100000, rng);
  }());
  return data;
}

void BM_Encode(benchmark::State& state) {
  const FixedPointCodec codec = FixedPointCodec::Integer(16);
  const std::vector<double>& values = BenchAges().values();
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.EncodeAll(values));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_Encode);

void BM_RandomizedResponse(benchmark::State& state) {
  const RandomizedResponse rr(1.0);
  Rng rng(2);
  int bit = 1;
  for (auto _ : state) {
    bit = rr.Apply(bit, rng);
    benchmark::DoNotOptimize(bit);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomizedResponse);

void BM_QmcAssignment(benchmark::State& state) {
  const std::vector<double> p = GeometricProbabilities(16, 0.5);
  Rng rng(3);
  const int64_t n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AssignBitsCentral(n, p, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QmcAssignment)->Arg(10000)->Arg(100000);

void BM_BasicBitPushing(benchmark::State& state) {
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  const std::vector<uint64_t> codewords =
      codec.EncodeAll(BenchAges().values());
  BitPushingConfig config;
  config.probabilities = GeometricProbabilities(8, 0.5);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunBasicBitPushing(codewords, config, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(codewords.size()));
}
BENCHMARK(BM_BasicBitPushing);

void BM_BasicBitPushingWithDp(benchmark::State& state) {
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  const std::vector<uint64_t> codewords =
      codec.EncodeAll(BenchAges().values());
  BitPushingConfig config;
  config.probabilities = GeometricProbabilities(8, 0.5);
  config.epsilon = 1.0;
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunBasicBitPushing(codewords, config, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(codewords.size()));
}
BENCHMARK(BM_BasicBitPushingWithDp);

void BM_AdaptiveBitPushing(benchmark::State& state) {
  const FixedPointCodec codec = FixedPointCodec::Integer(16);
  const std::vector<uint64_t> codewords =
      codec.EncodeAll(BenchAges().values());
  AdaptiveConfig config;
  config.bits = 16;
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAdaptiveBitPushing(codewords, config, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(codewords.size()));
}
BENCHMARK(BM_AdaptiveBitPushing);

void BM_HistogramEstimation(benchmark::State& state) {
  HistogramConfig config;
  config.edges = UniformEdges(0.0, 91.0, 16);
  Rng rng(7);
  const std::vector<double>& values = BenchAges().values();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateHistogram(values, config, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_HistogramEstimation);

void BM_RangeTree(benchmark::State& state) {
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const std::vector<uint64_t> codewords =
      codec.EncodeAll(BenchAges().values());
  RangeTreeConfig config;
  config.levels = 7;
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateRangeTree(codewords, config, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(codewords.size()));
}
BENCHMARK(BM_RangeTree);

void BM_ShamirShareAndReconstruct(benchmark::State& state) {
  Rng rng(9);
  const int threshold = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const std::vector<ShamirShare> shares =
        ShamirShareSecret(123456789, threshold, 2 * threshold, rng);
    benchmark::DoNotOptimize(ShamirReconstruct(shares, threshold));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShamirShareAndReconstruct)->Arg(5)->Arg(20);

void BM_MemoizedReport(benchmark::State& state) {
  const MemoizedResponder responder(1.0, 1.0, 42);
  Rng rng(10);
  int64_t value_id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        responder.Report(value_id++ % 1000, 3, 1, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoizedReport);

// The guard times FixedPointCodec::EncodeAll — a hot path carrying an
// obs::ScopedTimer — with the registry disabled and enabled, and checks
// the enabled/disabled ratio. Min-of-trials per side plus retry rounds
// keep scheduler noise from failing a healthy build; the threshold can be
// loosened for slow CI machines via BITPUSH_OBS_OVERHEAD_MAX.
int RunObsOverheadGuard() {
  const FixedPointCodec codec = FixedPointCodec::Integer(16);
  const std::vector<double>& values = BenchAges().values();
  constexpr int kInnerIterations = 20;
  constexpr int kTrials = 7;
  constexpr int kRounds = 5;

  const auto time_once = [&] {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kInnerIterations; ++i) {
      benchmark::DoNotOptimize(codec.EncodeAll(values));
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const auto best_of_trials = [&] {
    double best = time_once();
    for (int t = 1; t < kTrials; ++t) best = std::min(best, time_once());
    return best;
  };

  double threshold = 1.02;
  if (const char* env = std::getenv("BITPUSH_OBS_OVERHEAD_MAX")) {
    threshold = std::atof(env);
  }

  double ratio = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    obs::SetEnabled(false);
    const double disabled = best_of_trials();
    obs::SetEnabled(true);
    const double enabled = best_of_trials();
    obs::SetEnabled(false);
    ratio = enabled / disabled;
    std::printf("obs_overhead_ratio %.4f (threshold %.4f, round %d/%d)\n",
                ratio, threshold, round + 1, kRounds);
    if (ratio < threshold) {
      std::printf("obs_overhead_guard PASS\n");
      return 0;
    }
  }
  std::fprintf(stderr,
               "obs_overhead_guard FAIL: ratio %.4f >= %.4f after %d "
               "rounds\n",
               ratio, threshold, kRounds);
  return 1;
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return bitpush::RunObsOverheadGuard();
}
