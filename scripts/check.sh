#!/usr/bin/env bash
# Full verification: configure, build, run every test, run every benchmark.
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
cd "$(dirname "$0")/.."

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure

# Sanitized pass: the fault-injection, wire-fuzz, and persistence suites
# exercise the decode and failure paths, so run them under ASan+UBSan too.
cmake -B "$BUILD_DIR-asan" -G Ninja -DBITPUSH_SANITIZE=address,undefined
cmake --build "$BUILD_DIR-asan" \
  --target fault_tests wire_fuzz_tests persist_tests persist_fuzz_tests
ctest --test-dir "$BUILD_DIR-asan" --output-on-failure \
  -R '(Fault|WireFuzz|Journal|Snapshot|Recovery|PersistFuzz)'

# TSan pass: the concurrent aggregator/health-tracker and fleet suites are
# the thread-heavy ones, and the resilience suite shares their state
# machines — run all three under ThreadSanitizer.
cmake -B "$BUILD_DIR-tsan" -G Ninja -DBITPUSH_SANITIZE=thread
cmake --build "$BUILD_DIR-tsan" --target concurrency_tests resilience_tests
ctest --test-dir "$BUILD_DIR-tsan" --output-on-failure \
  -R '(Concurrent|Fleet|Resilience)'

# Crash-recovery stage: run a durable campaign, SIGKILL it mid-campaign at
# a journal-record boundary, restart against the same state directory, and
# require the recovered stdout to be byte-identical to an uninterrupted run.
STATE_ROOT="$(mktemp -d)"
trap 'rm -rf "$STATE_ROOT"' EXIT
SIM="$BUILD_DIR/tools/bitpush_sim"
SIM_ARGS=(--task=campaign --n=400 --ticks=4 --seed=99)

"$SIM" "${SIM_ARGS[@]}" --state_dir="$STATE_ROOT/clean" \
  > "$STATE_ROOT/clean.out"

set +e
"$SIM" "${SIM_ARGS[@]}" --state_dir="$STATE_ROOT/crashed" \
  --crash_after_records=120 > /dev/null 2>&1
CRASH_STATUS=$?
set -e
if [[ "$CRASH_STATUS" -ne 137 ]]; then
  echo "crash-recovery: expected simulated crash (exit 137), got $CRASH_STATUS" >&2
  exit 1
fi

"$SIM" "${SIM_ARGS[@]}" --state_dir="$STATE_ROOT/crashed" \
  > "$STATE_ROOT/recovered.out" 2> "$STATE_ROOT/recovered.err"
grep -q 'recovered state:' "$STATE_ROOT/recovered.err"
diff -u "$STATE_ROOT/clean.out" "$STATE_ROOT/recovered.out"
echo "crash-recovery: recovered run is byte-identical to the clean run"

for b in "$BUILD_DIR"/bench/*; do
  echo "### $b"
  "$b"
  echo
done
