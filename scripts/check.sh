#!/usr/bin/env bash
# Full verification: configure, build, run every test, run every benchmark.
# Usage: scripts/check.sh [--long] [build-dir]
#
# --long raises BITPROP_ITERS so every bitprop property (tests/prop/) runs
# its extended iteration count — the same knob the nightly property-long CI
# job uses. Each property still clamps at its own max_iterations cap.
set -euo pipefail

LONG_MODE=0
if [[ "${1:-}" == "--long" ]]; then
  LONG_MODE=1
  shift
fi

BUILD_DIR="${1:-build}"
cd "$(dirname "$0")/.."

if [[ "$LONG_MODE" -eq 1 ]]; then
  export BITPROP_ITERS="${BITPROP_ITERS:-5000}"
  echo "check.sh: long mode, BITPROP_ITERS=$BITPROP_ITERS"
fi

cmake -B "$BUILD_DIR" -G Ninja

# Lint stage first: project-invariant violations (determinism, privacy
# metering, wire exhaustiveness, obs stability, header hygiene) should
# fail the run in seconds, before any expensive sanitizer build starts.
# The waiver budget is printed so reviewers can watch it grow.
cmake --build "$BUILD_DIR" --target bitpush_lint
"$BUILD_DIR/tools/bitpush_lint" --root=. --list-waivers
"$BUILD_DIR/tools/bitpush_lint" --root=.

# Dataflow stage: the cross-TU passes (privacy-taint from client values to
# wire/journal/obs sinks, determinism-flow over Rng seed lineage) catch
# what the token-level lint cannot — a leak laundered through a helper in
# another TU. Same contract as the lint stage: waiver budget printed,
# unwaived findings fail the run.
cmake --build "$BUILD_DIR" --target bitpush_analyze
"$BUILD_DIR/tools/bitpush_analyze" --root=. --list-waivers
"$BUILD_DIR/tools/bitpush_analyze" --root=.

cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure

# Scalar leg: BITPUSH_SIMD=OFF must stay a first-class configuration — the
# dispatch table, the columnar batch pipeline, and every hot caller fall
# back to the bit-identical scalar kernel. Two layers: the env override on
# the SIMD build (cheap; exercises the runtime latch in src/kernels/
# dispatch.cc), then a full scalar compile with the whole suite.
BITPUSH_SIMD=OFF ctest --test-dir "$BUILD_DIR" --output-on-failure -R Kernel
cmake -B "$BUILD_DIR-scalar" -G Ninja -DBITPUSH_SIMD=OFF
cmake --build "$BUILD_DIR-scalar"
ctest --test-dir "$BUILD_DIR-scalar" --output-on-failure

# Sanitized pass: the fault-injection, wire-fuzz, persistence, bitprop
# property, and kernel suites exercise the decode, failure, shrink, and
# SIMD paths, so run them under ASan+UBSan too (the kernel tests cover the
# intrinsics tails and unaligned word loads).
cmake -B "$BUILD_DIR-asan" -G Ninja -DBITPUSH_SANITIZE=address,undefined
cmake --build "$BUILD_DIR-asan" \
  --target fault_tests wire_fuzz_tests persist_tests persist_fuzz_tests \
  obs_tests prop_tests kernel_tests shard_tests
ctest --test-dir "$BUILD_DIR-asan" --output-on-failure \
  -R '(Fault|WireFuzz|Journal|Snapshot|Recovery|PersistFuzz|Obs|Prop|Kernel|Shard)'

# TSan pass: the concurrent aggregator/health-tracker and fleet suites are
# the thread-heavy ones, the resilience suite shares their state machines,
# and the obs registry is hammered from multiple threads — run all four
# under ThreadSanitizer. The `Obs` alternate matters: without it the
# obs_tests binary was built for this stage but only its one
# Concurrent-prefixed case ever ran. The bitprop suites ride along so the
# differential oracles (which drive the resilient-collection state
# machines) also run instrumented.
cmake -B "$BUILD_DIR-tsan" -G Ninja -DBITPUSH_SANITIZE=thread
cmake --build "$BUILD_DIR-tsan" \
  --target concurrency_tests resilience_tests obs_tests prop_tests \
  kernel_tests
ctest --test-dir "$BUILD_DIR-tsan" --output-on-failure \
  -R '(Concurrent|Fleet|Resilience|Obs|Prop|Kernel)'

# Crash-recovery stage: run a durable campaign, SIGKILL it mid-campaign at
# a journal-record boundary, restart against the same state directory, and
# require the recovered stdout — and the deterministic metrics snapshot —
# to be byte-identical to an uninterrupted run.
STATE_ROOT="$(mktemp -d)"
trap 'rm -rf "$STATE_ROOT"' EXIT
SIM="$BUILD_DIR/tools/bitpush_sim"
SIM_ARGS=(--task=campaign --n=400 --ticks=4 --seed=99)

"$SIM" "${SIM_ARGS[@]}" --state_dir="$STATE_ROOT/clean" \
  --metrics_out="$STATE_ROOT/clean.snapshot" \
  --trace_out="$STATE_ROOT/clean.trace.json" \
  --events_out="$STATE_ROOT/clean.events.snapshot" \
  --alerts_out="$STATE_ROOT/clean.alerts.txt" \
  > "$STATE_ROOT/clean.out"

set +e
"$SIM" "${SIM_ARGS[@]}" --state_dir="$STATE_ROOT/crashed" \
  --crash_after_records=120 > /dev/null 2>&1
CRASH_STATUS=$?
set -e
if [[ "$CRASH_STATUS" -ne 137 ]]; then
  echo "crash-recovery: expected simulated crash (exit 137), got $CRASH_STATUS" >&2
  exit 1
fi

"$SIM" "${SIM_ARGS[@]}" --state_dir="$STATE_ROOT/crashed" \
  --metrics_out="$STATE_ROOT/recovered.snapshot" \
  --trace_out="$STATE_ROOT/recovered.trace.json" \
  --events_out="$STATE_ROOT/recovered.events.snapshot" \
  --alerts_out="$STATE_ROOT/recovered.alerts.txt" \
  > "$STATE_ROOT/recovered.out" 2> "$STATE_ROOT/recovered.err"
grep -q 'recovered state:' "$STATE_ROOT/recovered.err"
diff -u "$STATE_ROOT/clean.out" "$STATE_ROOT/recovered.out"
echo "crash-recovery: recovered run is byte-identical to the clean run"

# Exporter-validation stage. The stable metrics must survive the crash
# (deterministic-snapshot diff, plus the checked-in golden), the
# Prometheus export must carry the documented metric families, and the
# trace export must be well-formed Chrome trace-event JSON with events.
diff -u "$STATE_ROOT/clean.snapshot" "$STATE_ROOT/recovered.snapshot"
diff -u tests/golden/campaign_metrics.snapshot "$STATE_ROOT/clean.snapshot"
echo "exporters: metrics snapshot is crash-exact and matches the golden"

# The flight recorder's stable event stream and the fired-alert timeline
# carry the same guarantee: byte-identical across the crash, and pinned by
# checked-in goldens.
diff -u "$STATE_ROOT/clean.events.snapshot" "$STATE_ROOT/recovered.events.snapshot"
diff -u tests/golden/campaign_events.snapshot "$STATE_ROOT/clean.events.snapshot"
diff -u "$STATE_ROOT/clean.alerts.txt" "$STATE_ROOT/recovered.alerts.txt"
diff -u tests/golden/campaign_alerts.txt "$STATE_ROOT/clean.alerts.txt"
echo "exporters: events snapshot and alert timeline are crash-exact and match the goldens"

"$SIM" "${SIM_ARGS[@]}" --state_dir="$STATE_ROOT/prom" \
  --metrics_out="$STATE_ROOT/metrics.prom" \
  --events_out="$STATE_ROOT/events.jsonl" > /dev/null
for metric in bitpush_rounds_total bitpush_campaign_ticks_total \
    bitpush_wire_payload_bytes_total bitpush_meter_epsilon_spent \
    bitpush_journal_records_total bitpush_round_sim_minutes_bucket \
    bitpush_alert_state; do
  grep -q "^$metric" "$STATE_ROOT/metrics.prom" \
    || { echo "exporters: $metric missing from Prometheus output" >&2; exit 1; }
done

# The full (stable + volatile) event log exports as JSONL; every line must
# be well-formed JSON. bitpush_doctor doubles as the validator, and its
# post-mortem report over the crashed-then-recovered state directory must
# see the journal, the events, and the fired alert.
DOCTOR="$BUILD_DIR/tools/bitpush_doctor"
"$DOCTOR" --validate_events="$STATE_ROOT/events.jsonl"
"$DOCTOR" --state_dir="$STATE_ROOT/crashed" \
  --events="$STATE_ROOT/events.jsonl" \
  --metrics="$STATE_ROOT/metrics.prom" \
  --out="$STATE_ROOT/doctor.txt"
grep -q '^== journal ' "$STATE_ROOT/doctor.txt"
grep -q 'FIRED.*rule=privacy_burn_rate' "$STATE_ROOT/doctor.txt"
echo "exporters: events JSONL well-formed; doctor post-mortem report complete"
python3 - "$STATE_ROOT/clean.trace.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace export has no events"
for event in events:
    assert event["ph"] == "X" and "ts" in event and "dur" in event, event
print(f"exporters: trace JSON well-formed ({len(events)} events)")
PYEOF

for b in "$BUILD_DIR"/bench/*; do
  echo "### $b"
  if [[ "$(basename "$b")" == bench_micro_throughput ]]; then
    # Also emit the machine-readable benchmark dump; the binary's own
    # guards run after the benchmarks and fail the stage if enabling
    # metrics costs >= 2% on the EncodeAll hot path, or if the columnar
    # kernel pipeline is not >= 10x the per-report scalar path
    # (BENCH_kernel_throughput.json records the measurement; the kernel
    # guard self-skips on hardware with no SIMD kernel).
    # BITPUSH_OBS_BENCH_JSON captures the obs-overhead guard's two paths
    # (metrics timer, event ring) as a machine-readable artifact.
    BITPUSH_KERNEL_BENCH_JSON="BENCH_kernel_throughput.json" \
    BITPUSH_OBS_BENCH_JSON="$BUILD_DIR/BENCH_obs_overhead.json" \
      "$b" --benchmark_out="$BUILD_DIR/BENCH_micro_throughput.json" \
      --benchmark_out_format=json
  elif [[ "$(basename "$b")" == bench_shard_scaling ]]; then
    # Shard-out makespan scaling (docs/SHARDING.md); the JSON lands next
    # to the other BENCH_* artifacts.
    BITPUSH_SHARD_BENCH_JSON="$BUILD_DIR/BENCH_shard_scaling.json" "$b"
  else
    "$b"
  fi
  echo
done
