#!/usr/bin/env bash
# Full verification: configure, build, run every test, run every benchmark.
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
cd "$(dirname "$0")/.."

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure

# Sanitized pass: the fault-injection and wire-fuzz suites exercise the
# decode and failure paths, so run them under ASan+UBSan as well.
cmake -B "$BUILD_DIR-asan" -G Ninja -DBITPUSH_SANITIZE=address,undefined
cmake --build "$BUILD_DIR-asan" --target fault_tests wire_fuzz_tests
ctest --test-dir "$BUILD_DIR-asan" --output-on-failure -R '(Fault|WireFuzz)'

for b in "$BUILD_DIR"/bench/*; do
  echo "### $b"
  "$b"
  echo
done
