#!/usr/bin/env bash
# Full verification: configure, build, run every test, run every benchmark.
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
cd "$(dirname "$0")/.."

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure
for b in "$BUILD_DIR"/bench/*; do
  echo "### $b"
  "$b"
  echo
done
