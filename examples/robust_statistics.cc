// Robust and nonlinear aggregates under the one-bit discipline: the
// Section 4.3 answer to heavy-tailed telemetry ("robust statistics are
// more appropriate, such as the median and percentiles") and the Section
// 3.4 extensions (higher moments, geometric mean).

#include <cmath>
#include <cstdio>

#include "core/histogram_estimation.h"
#include "core/moments.h"
#include "data/synthetic.h"
#include "rng/rng.h"
#include "stats/quantiles.h"

int main() {
  bitpush::Rng rng(11);

  // A crash-counter-like metric: almost all devices report 0 or 1, a few
  // report astronomically more.
  const bitpush::Dataset metric =
      bitpush::BinaryWithOutliersData(50000, 0.002, 1e6, rng);
  std::printf("population: %lld devices, raw mean %.1f (wrecked by "
              "outliers), true median %.1f\n\n",
              static_cast<long long>(metric.size()), metric.truth().mean,
              bitpush::Quantile(metric.values(), 0.5));

  // Federated histogram: each device reveals ONE bit — whether its value
  // lies in the single bucket the server asked it about.
  bitpush::HistogramConfig histogram_config;
  // Integer-centered buckets: the metric takes small integer values.
  histogram_config.edges = bitpush::UniformEdges(-0.5, 15.5, 16);
  histogram_config.epsilon = 1.0;
  const bitpush::HistogramResult histogram =
      bitpush::EstimateHistogram(metric.values(), histogram_config, rng);
  std::printf("federated median (eps=1):      %6.2f\n",
              histogram.Quantile(histogram_config.edges, 0.5));
  std::printf("federated 90th pct (eps=1):    %6.2f\n",
              histogram.Quantile(histogram_config.edges, 0.9));

  // Nonlinear aggregates over a positive, skewed latency metric.
  const bitpush::Dataset latency =
      bitpush::LognormalData(50000, 4.0, 0.9, rng);
  const bitpush::Dataset clipped = latency.Clipped(1.0, 4095.0);
  const bitpush::FixedPointCodec codec =
      bitpush::FixedPointCodec::Integer(12);
  bitpush::MomentConfig moment_config;
  moment_config.protocol.bits = codec.bits();

  const double mean = bitpush::EstimateRawMoment(clipped.values(), codec, 1,
                                                 moment_config, rng);
  const double second = bitpush::EstimateCentralMoment(
      clipped.values(), codec, 2, moment_config, rng);
  const double geo = bitpush::EstimateGeometricMean(
      clipped.values(), codec, 1.0, 12, moment_config, rng);
  std::printf("\nlatency (clipped to 12 bits):\n");
  std::printf("  arithmetic mean: est %7.2f  true %7.2f\n", mean,
              clipped.truth().mean);
  std::printf("  stddev:          est %7.2f  true %7.2f\n",
              std::sqrt(std::max(0.0, second)),
              std::sqrt(clipped.truth().variance));
  std::printf("  geometric mean:  est %7.2f  (robust to the tail)\n", geo);
  return 0;
}
