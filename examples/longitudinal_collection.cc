// Longitudinal collection: the same private value queried every day.
//
// Plain randomized response leaks epsilon per round — after 30 days an
// adversary watching one client has 30x the budget. Memoization (RAPPOR
// style, ldp/memoization.h) caps lifetime disclosure at the permanent
// epsilon no matter how long the campaign runs, while the population
// estimate stays unbiased.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/fixed_point.h"
#include "data/census.h"
#include "ldp/memoization.h"
#include "rng/rng.h"
#include "stats/welford.h"

int main() {
  bitpush::Rng rng(17);
  const bitpush::Dataset ages = bitpush::CensusAges(30000, rng);
  const bitpush::FixedPointCodec codec =
      bitpush::FixedPointCodec::Integer(7);

  // Track one bit (bit 5, the 32s place) of every client's age across a
  // 30-day campaign. Each client memoizes with its own secret.
  const int bit_index = 5;
  double true_bit_mean = 0.0;
  std::vector<uint64_t> codewords = codec.EncodeAll(ages.values());
  for (const uint64_t c : codewords) {
    true_bit_mean += bitpush::FixedPointCodec::Bit(c, bit_index);
  }
  true_bit_mean /= static_cast<double>(codewords.size());

  const double permanent_epsilon = 1.0;
  const double instantaneous_epsilon = 1.0;
  std::printf("bit %d true mean: %.4f\n", bit_index, true_bit_mean);
  std::printf("permanent eps = %.1f, per-round eps = %.1f\n\n",
              permanent_epsilon, instantaneous_epsilon);

  std::printf("day  estimate  plainRR_lifetime_eps  memoized_lifetime_eps\n");
  const bitpush::MemoizedResponder reference(permanent_epsilon,
                                             instantaneous_epsilon, 0);
  for (int day = 1; day <= 30; ++day) {
    bitpush::Welford acc;
    for (size_t i = 0; i < codewords.size(); ++i) {
      const bitpush::MemoizedResponder responder(
          permanent_epsilon, instantaneous_epsilon,
          /*client_secret=*/static_cast<uint64_t>(i) * 7919 + 13);
      const int true_bit =
          bitpush::FixedPointCodec::Bit(codewords[i], bit_index);
      acc.Add(static_cast<double>(
          responder.Report(/*value_id=*/0, bit_index, true_bit, rng)));
    }
    if (day <= 3 || day % 10 == 0) {
      std::printf("%-3d  %.4f    %-20.1f  %.1f\n", day,
                  reference.Unbias(acc.mean()),
                  static_cast<double>(day) * instantaneous_epsilon,
                  reference.LongitudinalEpsilonBound() +
                      instantaneous_epsilon);
    }
  }
  std::printf(
      "\nwith memoization, 30 days of reports reveal no more about the\n"
      "true bit than the permanent eps=%.1f copy (plus the current\n"
      "round's noise); plain RR would have composed to eps=30.\n",
      permanent_epsilon);
  return 0;
}
