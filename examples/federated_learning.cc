// Federated learning on bit-pushed gradients. Section 1 motivates
// bit-pushing with "federated learning computes sample means for gradient
// updates"; here a linear model is trained by gradient descent where each
// round's gradient mean is estimated with EstimateVectorMean — every
// client reveals exactly ONE bit of ONE gradient coordinate per round.
//
// Model: y = w . x + b with 3 features; clients each hold one example.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/vector_aggregation.h"
#include "rng/distributions.h"
#include "rng/rng.h"

namespace {

constexpr int kFeatures = 3;
constexpr double kTrueWeights[kFeatures] = {2.0, -1.0, 0.5};
constexpr double kTrueBias = 0.7;

struct Example {
  double x[kFeatures];
  double y;
};

// One client's gradient of the squared loss at the current model.
std::vector<double> LocalGradient(const Example& example,
                                  const std::vector<double>& model) {
  double prediction = model[kFeatures];  // bias
  for (int f = 0; f < kFeatures; ++f) {
    prediction += model[static_cast<size_t>(f)] * example.x[f];
  }
  const double residual = prediction - example.y;
  std::vector<double> gradient(kFeatures + 1);
  for (int f = 0; f < kFeatures; ++f) {
    gradient[static_cast<size_t>(f)] = 2.0 * residual * example.x[f];
  }
  gradient[kFeatures] = 2.0 * residual;
  return gradient;
}

double Loss(const std::vector<Example>& data,
            const std::vector<double>& model) {
  double total = 0.0;
  for (const Example& example : data) {
    double prediction = model[kFeatures];
    for (int f = 0; f < kFeatures; ++f) {
      prediction += model[static_cast<size_t>(f)] * example.x[f];
    }
    total += (prediction - example.y) * (prediction - example.y);
  }
  return total / static_cast<double>(data.size());
}

}  // namespace

int main() {
  bitpush::Rng rng(123);

  // 20,000 clients, one example each; features in [-1, 1], label noise.
  std::vector<Example> data;
  for (int i = 0; i < 20000; ++i) {
    Example example;
    example.y = kTrueBias;
    for (int f = 0; f < kFeatures; ++f) {
      example.x[f] = bitpush::SampleUniform(rng, -1.0, 1.0);
      example.y += kTrueWeights[f] * example.x[f];
    }
    example.y += bitpush::SampleNormal(rng, 0.0, 0.05);
    data.push_back(example);
  }

  // Gradients are clipped into [-8, 8] per coordinate and encoded with a
  // 12-bit signed (offset) codec.
  const bitpush::FixedPointCodec codec(12, -8.0, 8.0);
  bitpush::VectorAggregationConfig aggregation;
  aggregation.adaptive = false;  // gradient scale shifts every round

  std::vector<double> model(kFeatures + 1, 0.0);
  const double learning_rate = 0.35;

  std::printf("round  loss      w0      w1      w2      b\n");
  for (int round = 0; round <= 40; ++round) {
    if (round % 5 == 0) {
      std::printf("%-5d  %-8.4f  %6.3f  %6.3f  %6.3f  %6.3f\n", round,
                  Loss(data, model), model[0], model[1], model[2],
                  model[3]);
    }
    // Each client computes its local gradient; the server learns only the
    // bit-pushed mean (one private bit per client per round).
    std::vector<std::vector<double>> gradients;
    gradients.reserve(data.size());
    for (const Example& example : data) {
      gradients.push_back(LocalGradient(example, model));
    }
    const bitpush::VectorAggregationResult aggregate =
        bitpush::EstimateVectorMean(gradients, codec, aggregation, rng);
    for (size_t d = 0; d < model.size(); ++d) {
      model[d] -= learning_rate * aggregate.means[d];
    }
  }

  std::printf("\ntrue model:               w=(%.3f, %.3f, %.3f) b=%.3f\n",
              kTrueWeights[0], kTrueWeights[1], kTrueWeights[2], kTrueBias);
  std::printf("learned (1 bit/client/round): w=(%.3f, %.3f, %.3f) b=%.3f\n",
              model[0], model[1], model[2], model[3]);
  return 0;
}
