// Federated feature normalization (the Section 3.4 motivation): estimate
// a feature's mean and variance with bit-pushing, then standardize the
// feature column for federated learning — without any client revealing
// more than a bit per derived value.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/fixed_point.h"
#include "core/variance_estimation.h"
#include "data/synthetic.h"
#include "rng/rng.h"
#include "stats/metrics.h"

int main() {
  bitpush::Rng rng(21);

  // A skewed, bounded feature: session length in minutes.
  const bitpush::Dataset feature =
      bitpush::ExponentialData(50000, 42.0, rng);
  const bitpush::Dataset clipped = feature.Clipped(0.0, 1023.0);
  const bitpush::FixedPointCodec codec =
      bitpush::FixedPointCodec::Integer(10);

  // Estimate mean and variance federated-ly (centered estimator,
  // Lemma 3.5's better option).
  bitpush::VarianceConfig config;
  config.protocol.bits = codec.bits();
  const bitpush::VarianceResult stats =
      bitpush::EstimateVariance(clipped.values(), codec, config, rng);
  const double mean = stats.mean_estimate;
  const double stddev = std::sqrt(stats.variance);

  std::printf("true      mean=%8.3f stddev=%8.3f\n", clipped.truth().mean,
              std::sqrt(clipped.truth().variance));
  std::printf("estimated mean=%8.3f stddev=%8.3f\n", mean, stddev);

  // Each client normalizes locally with the broadcast statistics.
  std::vector<double> normalized;
  normalized.reserve(clipped.values().size());
  for (const double x : clipped.values()) {
    normalized.push_back((x - mean) / stddev);
  }
  std::printf("normalized feature: mean=%.4f variance=%.4f "
              "(target 0 / 1)\n",
              bitpush::Mean(normalized),
              bitpush::PopulationVariance(normalized));
  return 0;
}
