// Robustness walkthrough (Sections 4.3 and 5): the same query run against
// (a) a flaky fleet with heavy dropout, (b) a partially adversarial fleet
// under local vs central randomness, and (c) a too-small eligible cohort
// that must abort for privacy.

#include <cstdio>
#include <vector>

#include "core/bit_probabilities.h"
#include "data/census.h"
#include "federated/round.h"
#include "federated/server.h"
#include "rng/rng.h"

namespace {

using bitpush::Client;
using bitpush::ClientConfig;
using bitpush::FixedPointCodec;
using bitpush::Rng;

}  // namespace

int main() {
  Rng rng(5);
  const bitpush::Dataset ages = bitpush::CensusAges(20000, rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  std::printf("true mean age: %.2f\n\n", ages.truth().mean);

  // (a) Heavy dropout: 70% of devices are offline at any moment.
  {
    ClientConfig flaky;
    flaky.dropout_probability = 0.7;
    const std::vector<Client> clients =
        bitpush::MakePopulation(ages.values(), flaky);
    bitpush::FederatedQueryConfig query;
    query.adaptive.bits = codec.bits();
    query.auto_adjust_dropout = true;
    const bitpush::FederatedQueryResult result =
        bitpush::RunFederatedMeanQuery(clients, codec, query, nullptr, rng);
    std::printf("(a) 70%% dropout: %lld/%lld responded, estimate %.2f\n",
                static_cast<long long>(result.round1.responded +
                                       result.round2.responded),
                static_cast<long long>(result.round1.contacted +
                                       result.round2.contacted),
                result.estimate);
  }

  // (b) Poisoning: 5% adversaries aim 1s at the top bit of a 16-bit
  // domain. Local randomness lets them pick the bit; central does not.
  {
    const FixedPointCodec wide = FixedPointCodec::Integer(16);
    std::vector<Client> clients =
        bitpush::MakePopulation(ages.values(), ClientConfig{});
    ClientConfig adversarial;
    adversarial.adversary = bitpush::AdversaryMode::kTopBitOne;
    for (size_t i = 0; i < clients.size() / 20; ++i) {
      clients[i] = Client(static_cast<int64_t>(i), {ages.values()[i]},
                          adversarial);
    }
    std::vector<int64_t> cohort;
    for (size_t i = 0; i < clients.size(); ++i) {
      cohort.push_back(static_cast<int64_t>(i));
    }
    const bitpush::AggregationServer server(wide);
    for (const bool central : {false, true}) {
      bitpush::RoundConfig config;
      config.probabilities = bitpush::GeometricProbabilities(16, 0.5);
      config.central_randomness = central;
      const bitpush::RoundOutcome outcome =
          server.RunRound(clients, cohort, config, nullptr, rng);
      std::printf("(b) 5%% adversaries, %s randomness: estimate %.2f\n",
                  central ? "central" : "local  ",
                  server.EstimateMean(outcome.histogram, 0.0));
    }
  }

  // (c) Selective query below the minimum cohort: abort, reveal nothing.
  {
    const std::vector<Client> clients =
        bitpush::MakePopulation(ages.values(), ClientConfig{});
    bitpush::FederatedQueryConfig query;
    query.adaptive.bits = codec.bits();
    query.cohort.min_cohort_size = 100000;  // more than we have
    const bitpush::FederatedQueryResult result =
        bitpush::RunFederatedMeanQuery(clients, codec, query, nullptr, rng);
    std::printf("(c) cohort below minimum: %s, %lld messages sent\n",
                result.aborted ? "aborted" : "ran",
                static_cast<long long>(result.comm.requests_sent));
  }
  return 0;
}
