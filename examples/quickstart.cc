// Quickstart: estimate the mean age of a population with adaptive
// bit-pushing under epsilon-LDP, disclosing at most one (noised) bit of
// each person's age.
//
//   $ ./quickstart
//   true mean age:      33.70
//   estimated mean age: 33.41   (eps = 1, 10000 clients, 1 bit each)

#include <cstdio>

#include "core/adaptive.h"
#include "core/fixed_point.h"
#include "data/census.h"
#include "rng/rng.h"

int main() {
  bitpush::Rng rng(42);

  // A population of 10,000 clients, each holding one private age.
  const bitpush::Dataset ages = bitpush::CensusAges(10000, rng);

  // Ages fit in 7 bits (0..127); the codec clips and bit-decomposes.
  const bitpush::FixedPointCodec codec =
      bitpush::FixedPointCodec::Integer(7);

  // Two-round adaptive bit-pushing with the paper's default parameters
  // (gamma = 0.5, alpha = 0.5, delta = 1/3, caching on) and an LDP
  // guarantee of epsilon = 1 per report.
  bitpush::AdaptiveConfig config;
  config.bits = codec.bits();
  config.epsilon = 1.0;

  const bitpush::AdaptiveResult result = bitpush::RunAdaptiveBitPushing(
      codec.EncodeAll(ages.values()), config, rng);

  std::printf("true mean age:      %.2f\n", ages.truth().mean);
  std::printf("estimated mean age: %.2f   (eps = %.0f, %d clients, "
              "1 bit each)\n",
              codec.Decode(result.estimate_codeword), config.epsilon,
              static_cast<int>(ages.size()));
  std::printf("private bits disclosed: %lld (= one per client)\n",
              static_cast<long long>(
                  result.round1.histogram.TotalReports() +
                  result.round2.histogram.TotalReports()));
  return 0;
}
