// Crash-consistent coordination (src/persist/): a measurement campaign is
// journaled to a state directory, killed mid-campaign at a journal-record
// boundary, and recovered in a fresh process. The recovered run finishes
// the campaign and lands on exactly the results — and exactly the
// privacy-meter ledger — of a run that was never interrupted. No client is
// re-contacted for a completed round, and no meter charge is applied twice.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/privacy_meter.h"
#include "data/census.h"
#include "persist/journal.h"
#include "persist/recovery.h"
#include "rng/rng.h"

namespace {

constexpr uint64_t kSeed = 7;
constexpr int64_t kTicks = 3;

std::vector<bitpush::CampaignQuery> MakeQueries() {
  std::vector<bitpush::CampaignQuery> queries;
  for (int i = 0; i < 2; ++i) {
    bitpush::CampaignQuery query;
    query.name = i == 0 ? "latency" : "battery";
    query.value_id = i;
    query.cadence_ticks = 1;
    query.query.adaptive.bits = 7;
    queries.push_back(query);
  }
  return queries;
}

struct Outcome {
  std::vector<bitpush::CampaignTickResult> history;
  std::vector<uint8_t> meter;
};

Outcome RunCampaign(bitpush::DurableCampaignRunner* runner,
                    const std::vector<bitpush::Client>& population) {
  const std::vector<const std::vector<bitpush::Client>*> populations = {
      &population, &population};
  const std::vector<bitpush::FixedPointCodec> codecs = {
      bitpush::FixedPointCodec::Integer(7),
      bitpush::FixedPointCodec::Integer(7)};
  for (int64_t tick = 0; tick < kTicks; ++tick) {
    runner->RunTick(tick, populations, codecs);
  }
  Outcome outcome;
  outcome.history = runner->campaign().history();
  runner->meter().EncodeTo(&outcome.meter);
  return outcome;
}

}  // namespace

int main() {
  bitpush::Rng data_rng(1);
  const bitpush::Dataset ages = bitpush::CensusAges(500, data_rng);
  const std::vector<bitpush::Client> population =
      bitpush::MakePopulation(ages.values(), bitpush::ClientConfig{});
  bitpush::MeterPolicy policy;
  policy.max_bits_per_value = 2;
  policy.max_bits_per_client = 3;

  const std::string base = std::filesystem::temp_directory_path() /
                           "bitpush_crash_recovery_example";
  std::filesystem::remove_all(base);
  auto options = [&](const std::string& leaf) {
    bitpush::DurableCampaignOptions result;
    result.state_dir = base + "/" + leaf;
    result.seed = kSeed;
    result.fsync = false;  // demo speed; production keeps the default
    return result;
  };

  // Ground truth: a run nothing interrupts.
  bitpush::DurableCampaignRunner uninterrupted(MakeQueries(), policy,
                                               options("uninterrupted"));
  std::string error;
  if (!uninterrupted.Open(&error)) {
    std::fprintf(stderr, "open: %s\n", error.c_str());
    return 1;
  }
  const Outcome expected = RunCampaign(&uninterrupted, population);
  std::printf("uninterrupted run: %zu tick results, meter ledger %zu bytes\n",
              expected.history.size(), expected.meter.size());

  // "Crash" a second coordinator partway through: run it fully, then cut
  // its journal back to the first 150 records — the exact bytes a SIGKILL
  // after the 150th durable append would have left on disk. (bitpush_sim
  // --task=campaign --crash_after_records does this with a real exit(137);
  // here the truncation keeps the demo in one process.)
  {
    bitpush::DurableCampaignRunner doomed(MakeQueries(), policy,
                                          options("crashed"));
    if (!doomed.Open(&error)) {
      std::fprintf(stderr, "open: %s\n", error.c_str());
      return 1;
    }
    RunCampaign(&doomed, population);
  }
  const std::string journal_path = base + "/crashed/journal.wal";
  bitpush::JournalReadResult journal;
  if (!bitpush::ReadJournal(journal_path, 0, &journal, &error)) {
    std::fprintf(stderr, "read journal: %s\n", error.c_str());
    return 1;
  }
  const size_t keep = 150;
  std::vector<uint8_t> prefix;
  for (size_t i = 0; i < keep && i < journal.records.size(); ++i) {
    bitpush::AppendJournalFrame(journal.records[i].type,
                                journal.records[i].seq,
                                journal.records[i].payload, &prefix);
  }
  std::FILE* file = std::fopen(journal_path.c_str(), "wb");
  if (file == nullptr ||
      std::fwrite(prefix.data(), 1, prefix.size(), file) != prefix.size()) {
    std::fprintf(stderr, "truncate journal\n");
    return 1;
  }
  std::fclose(file);
  std::printf("crashed run: journal cut to %zu of %zu records\n", keep,
              journal.records.size());

  // A fresh process points at the state directory and resumes.
  bitpush::DurableCampaignRunner recovered(MakeQueries(), policy,
                                           options("crashed"));
  if (!recovered.Open(&error)) {
    std::fprintf(stderr, "recovery: %s\n", error.c_str());
    return 1;
  }
  const bitpush::RecoveryInfo& info = recovered.recovery_info();
  std::printf("recovery: replayed %lld journal records "
              "(%lld ticks already complete)\n",
              static_cast<long long>(info.replayed_records),
              static_cast<long long>(info.completed_ticks));
  const Outcome actual = RunCampaign(&recovered, population);

  const bool results_match = actual.history == expected.history;
  const bool meters_match = actual.meter == expected.meter;
  std::printf("results identical: %s\n", results_match ? "yes" : "NO");
  std::printf("meter ledgers identical (every charge exactly once): %s\n",
              meters_match ? "yes" : "NO");
  for (const bitpush::CampaignTickResult& result : actual.history) {
    std::printf("  tick %lld %-8s %-14s estimate %8.3f reports %lld\n",
                static_cast<long long>(result.tick),
                result.query_name.c_str(),
                result.status == bitpush::CampaignTickResult::Status::kRan
                    ? "ran"
                    : "skipped",
                result.estimate, static_cast<long long>(result.reports));
  }
  std::filesystem::remove_all(base);
  return results_match && meters_match ? 0 : 1;
}
