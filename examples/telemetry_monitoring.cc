// Deployment scenario (Section 4.3): monitor device-health metrics across
// a fleet with bit-pushing. Demonstrates the practices the paper reports
// from production:
//   * clipping heavy-tailed metrics to a fixed number of bits
//     (winsorization) so rare extreme outliers cannot swamp the mean,
//   * detecting constant metrics offline (mean/variance estimation moot),
//   * tracking the estimated upper bound (b_max) across collection windows
//     and flagging significant shifts (heavy tail / non-stationarity).

#include <cstdio>
#include <vector>

#include "core/adaptive.h"
#include "core/fixed_point.h"
#include "data/dataset.h"
#include "federated/telemetry.h"
#include "rng/rng.h"

namespace {

using bitpush::AdaptiveConfig;
using bitpush::AdaptiveResult;
using bitpush::Dataset;
using bitpush::FixedPointCodec;
using bitpush::Rng;

// Runs one collection window over the metric values and returns the
// adaptive bit-pushing result.
AdaptiveResult CollectWindow(const std::vector<double>& values,
                             const FixedPointCodec& codec, Rng& rng) {
  AdaptiveConfig config;
  config.bits = codec.bits();
  config.epsilon = 1.0;  // LDP per report
  config.squash = bitpush::SquashPolicy::Absolute(0.05);
  return RunAdaptiveBitPushing(codec.EncodeAll(values), config, rng);
}

}  // namespace

int main() {
  Rng rng(7);
  const int64_t fleet = 30000;

  std::printf("== fleet metric monitoring (%lld devices, eps=1) ==\n\n",
              static_cast<long long>(fleet));

  for (const bitpush::MetricFamily family :
       {bitpush::MetricFamily::kLatencyMs, bitpush::MetricFamily::kCrashCount,
        bitpush::MetricFamily::kBatteryDrainPct,
        bitpush::MetricFamily::kAppVersion}) {
    const Dataset raw(bitpush::MetricFamilyName(family),
                      bitpush::GenerateMetric(family, fleet, rng));

    // Constant-metric check (Section 4.3: "some metrics turn out to be
    // constant, making mean and variance estimation moot").
    if (raw.truth().variance == 0.0) {
      std::printf("%-18s constant at %.1f -- skipping aggregation\n\n",
                  raw.name().c_str(), raw.truth().mean);
      continue;
    }

    // Clip to 8 bits: "leveraging domain knowledge to choose the
    // appropriate number of bits leads to good accuracy in practice".
    const FixedPointCodec codec = FixedPointCodec::Integer(8);
    const Dataset clipped = raw.Clipped(0.0, 255.0);

    const AdaptiveResult window = CollectWindow(clipped.values(), codec,
                                                rng);
    std::printf("%-18s raw_mean=%9.2f  clipped_mean=%7.2f  "
                "estimate=%7.2f\n",
                raw.name().c_str(), raw.truth().mean, clipped.truth().mean,
                codec.Decode(window.estimate_codeword));

    // Upper-bound monitoring across windows: simulate a regression that
    // inflates the metric 20x in window 2.
    bitpush::UpperBoundMonitor monitor(2);
    monitor.ObserveWindow(
        bitpush::EstimateHighestUsedBit(window.final_means, 0.02));

    std::vector<double> degraded = raw.values();
    for (double& v : degraded) v *= 20.0;
    const FixedPointCodec wide = FixedPointCodec::Integer(16);
    const AdaptiveResult window2 =
        CollectWindow(Dataset("w2", degraded).Clipped(0.0, 65535.0).values(),
                      wide, rng);
    const bool flagged = monitor.ObserveWindow(
        bitpush::EstimateHighestUsedBit(window2.final_means, 0.02));
    std::printf("%-18s upper-bound monitor after 20x regression: %s\n\n",
                "", flagged ? "FLAGGED (distribution shift)"
                            : "no change");
  }
  return 0;
}
