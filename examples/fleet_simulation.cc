// Two simulated days of fleet monitoring: device availability follows a
// diurnal cycle, collection windows run every four hours through the
// windowed monitor, and a 20x latency regression injected on day two is
// caught by the upper-bound flag — the §4.3 deployment loop end to end.
// Report-time faults (mid-round loss, stragglers past a 30-minute deadline,
// corrupt and truncated frames) ride the fault layer, so each window shows
// realistic collection loss and a modelled collection time.

#include <cstdio>

#include "federated/fleet.h"
#include "federated/monitor.h"

int main() {
  bitpush::FleetConfig fleet_config;
  fleet_config.devices = 20000;
  fleet_config.metric = bitpush::MetricFamily::kLatencyMs;
  fleet_config.report_faults.mid_round_dropout = 0.05;
  fleet_config.report_faults.straggler = 0.03;
  fleet_config.report_faults.corrupt_message = 0.01;
  fleet_config.report_faults.truncate_message = 0.01;
  fleet_config.report_deadline_minutes = 30.0;
  fleet_config.model_latency = true;
  fleet_config.latency.checkins_per_minute = 2000.0;
  bitpush::FleetSimulator fleet(fleet_config, 99);

  const bitpush::FixedPointCodec codec =
      bitpush::FixedPointCodec::Integer(14);
  bitpush::MonitorConfig monitor_config;
  monitor_config.protocol.bits = codec.bits();
  monitor_config.protocol.epsilon = 1.0;
  // Under eps=1 noise, thresholds must sit above the per-bit noise floor
  // (Figure 4a's effective band) or the b_max estimate flaps.
  monitor_config.protocol.squash = bitpush::SquashPolicy::Absolute(0.1);
  monitor_config.bmax_mean_threshold = 0.1;
  // +-1 bit of b_max jitter is normal under DP noise; flag on >= 3.
  monitor_config.flag_shift_bits = 3;
  monitor_config.drift_threshold = 2.0;
  bitpush::MetricMonitor monitor(codec, monitor_config);
  bitpush::Rng rng(7);

  std::printf(
      "hour  avail  cohort  estimate   b_max  minutes  flags\n");
  for (int window = 0; window < 12; ++window) {
    if (window == 8) {
      fleet.ScaleMetric(20.0);  // the regression ships at hour 32
      std::printf("--- regression deployed (latency x20) ---\n");
    }
    const std::vector<double> readings = fleet.CollectWindow(0);
    const bitpush::WindowSummary summary =
        monitor.IngestWindow(readings, rng);
    std::printf("%-4.0f  %.2f   %-6lld  %-9.1f  %-5d  %-7.1f  %s%s\n",
                fleet.hour(), fleet.Availability(),
                static_cast<long long>(summary.clients), summary.estimate,
                summary.b_max, fleet.last_window_minutes(),
                summary.bound_flagged ? "UPPER-BOUND " : "",
                summary.drift_flagged ? "DRIFT" : "");
    fleet.AdvanceHours(4.0);
  }
  const bitpush::FaultStats& faults = fleet.fault_stats();
  std::printf("\nwindows flagged: %lld\n",
              static_cast<long long>(monitor.windows_flagged()));
  std::printf(
      "report faults: %lld injected (%lld dropped, %lld late-rejected, "
      "%lld corrupt, %lld truncated)\n",
      static_cast<long long>(faults.InjectedTotal()),
      static_cast<long long>(faults.injected_dropouts),
      static_cast<long long>(faults.late_reports_rejected),
      static_cast<long long>(faults.corrupt_reports_rejected),
      static_cast<long long>(faults.truncated_reports_rejected));
  return 0;
}
