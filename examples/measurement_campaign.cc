// A multi-metric measurement campaign: three device metrics on different
// cadences, one shared privacy budget. The meter allows each client 1 bit
// per metric and 3 bits / eps=3 total — so every metric collects once on
// day 0, and when the daily battery cadence tries to re-query on day 1
// the budget refuses and the campaign reports a skip instead of silently
// collecting.

#include <cstdio>
#include <string>
#include <vector>

#include "core/fixed_point.h"
#include "federated/campaign.h"
#include "federated/telemetry.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "rng/rng.h"

int main() {
  // Observability on: the campaign publishes coordinator counters (rounds,
  // wire traffic, meter spend) which we dump at the end in Prometheus
  // format — the only inspectable artifact of a private collection.
  bitpush::obs::SetEnabled(true);
  bitpush::Rng rng(31);
  const int64_t fleet = 8000;

  // Three metric populations over the same fleet.
  const std::vector<bitpush::Client> latency = bitpush::MakePopulation(
      bitpush::GenerateMetric(bitpush::MetricFamily::kLatencyMs, fleet,
                              rng),
      bitpush::ClientConfig{});
  const std::vector<bitpush::Client> battery = bitpush::MakePopulation(
      bitpush::GenerateMetric(bitpush::MetricFamily::kBatteryDrainPct,
                              fleet, rng),
      bitpush::ClientConfig{});
  const std::vector<bitpush::Client> queue = bitpush::MakePopulation(
      bitpush::GenerateMetric(bitpush::MetricFamily::kQueueDepth, fleet,
                              rng),
      bitpush::ClientConfig{});

  auto make_query = [](const std::string& name, int64_t value_id,
                       int64_t cadence) {
    bitpush::CampaignQuery query;
    query.name = name;
    query.value_id = value_id;
    query.cadence_ticks = cadence;
    query.query.adaptive.bits = 10;
    query.query.adaptive.epsilon = 1.0;
    query.query.adaptive.squash = bitpush::SquashPolicy::Absolute(0.05);
    return query;
  };

  bitpush::MeterPolicy policy;
  policy.max_bits_per_value = 1;
  policy.max_bits_per_client = 3;
  policy.max_epsilon_per_client = 3.0;
  bitpush::PrivacyMeter meter(policy);

  bitpush::MeasurementCampaign campaign(
      {make_query("latency_ms", 0, 2), make_query("battery_pct", 1, 1),
       make_query("queue_depth", 2, 3)},
      &meter);

  const bitpush::FixedPointCodec codec =
      bitpush::FixedPointCodec::Integer(10);
  const std::vector<const std::vector<bitpush::Client>*> populations = {
      &latency, &battery, &queue};
  const std::vector<bitpush::FixedPointCodec> codecs = {codec, codec,
                                                        codec};

  std::printf("day  metric        status          estimate  reports\n");
  for (int64_t day = 0; day < 4; ++day) {
    for (const bitpush::CampaignTickResult& result :
         campaign.RunTick(day, populations, codecs, rng)) {
      const char* status = "ran           ";
      if (result.status ==
          bitpush::CampaignTickResult::Status::kSkippedBudget) {
        status = "SKIPPED:budget";
      } else if (result.status ==
                 bitpush::CampaignTickResult::Status::kSkippedCohort) {
        status = "SKIPPED:cohort";
      }
      std::printf("%-3lld  %-12s  %s  %-8.2f  %lld\n",
                  static_cast<long long>(day), result.query_name.c_str(),
                  status, result.estimate,
                  static_cast<long long>(result.reports));
    }
  }
  std::printf("\nledger: %lld bits disclosed, %lld denied; "
              "client 0 spent eps=%.1f of %.1f\n",
              static_cast<long long>(meter.total_bits()),
              static_cast<long long>(meter.denied_charges()),
              meter.ClientEpsilon(0), policy.max_epsilon_per_client);

  // The coordinator's execution trail, as a scrape endpoint would see it
  // (counters only, to keep the demo output short).
  std::printf("\ncoordinator metrics (Prometheus excerpt):\n");
  const std::string prometheus = bitpush::obs::PrometheusText();
  size_t start = 0;
  while (start < prometheus.size()) {
    size_t end = prometheus.find('\n', start);
    if (end == std::string::npos) end = prometheus.size();
    const std::string line = prometheus.substr(start, end - start);
    if (line.rfind("bitpush_rounds_total", 0) == 0 ||
        line.rfind("bitpush_wire_requests_total", 0) == 0 ||
        line.rfind("bitpush_wire_reports_total", 0) == 0 ||
        line.rfind("bitpush_wire_payload_bytes_total", 0) == 0 ||
        line.rfind("bitpush_meter_", 0) == 0 ||
        line.rfind("bitpush_queries_", 0) == 0) {
      std::printf("  %s\n", line.c_str());
    }
    start = end + 1;
  }
  return 0;
}
