// Privacy metering (Section 1.1): disclosure is metered at the bit level.
// Every private bit leaving a device passes through a PrivacyMeter that
// enforces per-value, per-client, and epsilon caps — the platform-level
// control surface the paper proposes.

#include <cstdio>

#include "core/fixed_point.h"
#include "core/privacy_meter.h"
#include "data/census.h"
#include "federated/round.h"
#include "rng/rng.h"

int main() {
  bitpush::Rng rng(99);
  const bitpush::Dataset ages = bitpush::CensusAges(5000, rng);
  const bitpush::FixedPointCodec codec =
      bitpush::FixedPointCodec::Integer(7);
  const std::vector<bitpush::Client> clients =
      bitpush::MakePopulation(ages.values(), bitpush::ClientConfig{});

  // Policy: at most 1 bit per value, 3 bits per client in total, and a
  // lifetime randomized-response budget of eps = 2 per client.
  bitpush::MeterPolicy policy;
  policy.max_bits_per_value = 1;
  policy.max_bits_per_client = 3;
  policy.max_epsilon_per_client = 2.0;
  bitpush::PrivacyMeter meter(policy);

  bitpush::FederatedQueryConfig query;
  query.adaptive.bits = codec.bits();
  query.adaptive.epsilon = 1.0;

  std::printf("policy: <=1 bit/value, <=3 bits/client, eps budget 2.0\n\n");

  // Query the same value repeatedly: after the first query each client's
  // budget for value 0 is spent, so later rounds collect nothing.
  for (int attempt = 1; attempt <= 3; ++attempt) {
    const bitpush::FederatedQueryResult result =
        bitpush::RunFederatedMeanQuery(clients, codec, query, &meter, rng);
    const long long responses =
        result.round1.responded + result.round2.responded;
    std::printf("query #%d on value 0: %5lld responses, estimate %6.2f "
                "(true %.2f)\n",
                attempt, responses, result.estimate, ages.truth().mean);
  }

  std::printf("\nledger: total bits disclosed = %lld, denied charges = "
              "%lld\n",
              static_cast<long long>(meter.total_bits()),
              static_cast<long long>(meter.denied_charges()));

  // A different value id draws on a fresh per-value allowance (but the
  // same per-client budget).
  query.value_id = 1;
  const bitpush::FederatedQueryResult fresh =
      bitpush::RunFederatedMeanQuery(clients, codec, query, &meter, rng);
  std::printf("query on value 1:    %5lld responses, estimate %6.2f\n",
              static_cast<long long>(fresh.round1.responded +
                                     fresh.round2.responded),
              fresh.estimate);
  std::printf("client 0 ledger: bits=%lld eps=%.2f\n",
              static_cast<long long>(meter.ClientBits(0)),
              meter.ClientEpsilon(0));
  return 0;
}
