#include "bitpush_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis_core/source_model.h"

namespace bitpush::lint {
namespace {

namespace fs = std::filesystem;

// The tokenizer/source model is shared with bitpush_analyze
// (tools/analysis_core/); the lint checks operate on its code/comment
// channels unchanged.
using analysis::SourceFile;
using analysis::StartsWith;
using analysis::Trim;

// ---------------------------------------------------------------------------
// Check names.

struct CheckNameEntry {
  Check check;
  const char* name;
};

constexpr CheckNameEntry kCheckNames[] = {
    {Check::kDeterminism, "determinism"},
    {Check::kPrivacyMetering, "privacy-metering"},
    {Check::kWireExhaustiveness, "wire-exhaustiveness"},
    {Check::kObsStability, "obs-stability"},
    {Check::kHeaderHygiene, "header-hygiene"},
    {Check::kWaiverSyntax, "waiver-syntax"},
};

// ---------------------------------------------------------------------------
// Wall-clock / ambient-entropy allowlist. Paths are root-relative. Only the
// observability layer (dual sim/wall clocks are its contract — see
// docs/OBSERVABILITY.md) and the bench wall-timing harness qualify today;
// everything else must carry a per-line waiver with a reason.

bool IsWallClockAllowlisted(const std::string& rel_path) {
  return StartsWith(rel_path, "src/obs/") ||
         rel_path == "bench/bench_micro_throughput.cc" ||
         rel_path == "bench/bench_shard_scaling.cc" ||
         rel_path == "bench/bench_common.cc" || rel_path == "bench/bench_common.h";
}

// ---------------------------------------------------------------------------
// Waivers.

struct ParsedWaivers {
  std::vector<Waiver> waivers;
  std::vector<Finding> syntax_findings;
};

ParsedWaivers ParseWaivers(const SourceFile& file) {
  ParsedWaivers out;
  // The `<marker>: allow(<check>): <reason>` shape is parsed by the shared
  // annotation parser; only the check-name vocabulary is lint's own.
  const analysis::ParsedAnnotations parsed =
      analysis::ParseAnnotations(file, "bitpush-lint");
  for (const analysis::MalformedAnnotation& bad : parsed.malformed) {
    if (bad.missing_reason) {
      out.syntax_findings.push_back(
          {file.rel_path, bad.line, Check::kWaiverSyntax,
           "waiver for `" + bad.check_name +
               "` is missing its reason string"});
    } else {
      out.syntax_findings.push_back(
          {file.rel_path, bad.line, Check::kWaiverSyntax,
           "malformed bitpush-lint annotation; expected "
           "`// bitpush-lint: allow(<check>): <reason>`"});
    }
  }
  for (const analysis::Annotation& annotation : parsed.annotations) {
    Check check;
    if (!ParseCheckName(annotation.check_name, &check) ||
        check == Check::kWaiverSyntax) {
      out.syntax_findings.push_back(
          {file.rel_path, annotation.line, Check::kWaiverSyntax,
           "unknown lint check `" + annotation.check_name + "` in waiver"});
      continue;
    }
    out.waivers.push_back(
        {file.rel_path, annotation.line, check, annotation.reason});
  }
  return out;
}

// A waiver on line L suppresses findings of its check on lines L and L+1
// of the same file. privacy-metering is a whole-TU property, so its
// waivers are file-scoped.
bool IsSuppressed(const Finding& finding, const std::vector<Waiver>& waivers) {
  for (const Waiver& waiver : waivers) {
    if (waiver.check != finding.check || waiver.path != finding.path) continue;
    if (finding.check == Check::kPrivacyMetering) return true;
    if (finding.line == waiver.line || finding.line == waiver.line + 1) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// determinism: ambient entropy and wall clocks are banned so that every
// campaign replays byte-identically from its 64-bit seed (the crash
// recovery layer depends on this — docs/PERSISTENCE.md).

struct TokenRule {
  const char* pattern;
  const char* message;
};

void CheckDeterminism(const SourceFile& file, std::vector<Finding>* findings) {
  if (IsWallClockAllowlisted(file.rel_path)) return;
  static const std::vector<std::pair<std::regex, std::string>>* kRules = [] {
    auto* rules = new std::vector<std::pair<std::regex, std::string>>;
    const TokenRule raw[] = {
        {R"(std\s*::\s*random_device)",
         "std::random_device injects ambient entropy; seed a bitpush::Rng "
         "and Fork() it instead"},
        {R"(std\s*::\s*s?rand\b)",
         "std::rand/std::srand use hidden global state; use bitpush::Rng"},
        {R"(\btime\s*\()",
         "time() reads the wall clock; derive simulated time from the "
         "LatencyModel clock"},
        {R"(\b(system_clock|steady_clock|high_resolution_clock)\b)",
         "wall clocks are banned outside src/obs/ and the bench timing "
         "harness; campaigns must replay from their seed"},
        {R"(std\s*::\s*(mt19937(_64)?|default_random_engine|minstd_rand0?|ranlux\w+|knuth_b)\b)",
         "standard RNG engines bypass the seeded bitpush::Rng fork "
         "discipline"},
    };
    for (const TokenRule& rule : raw) {
      rules->emplace_back(std::regex(rule.pattern), rule.message);
    }
    return rules;
  }();
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    for (const auto& [re, message] : *kRules) {
      if (std::regex_search(file.code_lines[i], re)) {
        findings->push_back({file.rel_path, static_cast<int>(i + 1),
                             Check::kDeterminism, message});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// privacy-metering: a translation unit that constructs or serializes client
// bit reports is a disclosure site (paper §1.1: every disclosed bit must be
// charged to the meter). Such a TU must reference the PrivacyMeter charge
// path, or explain itself in a waiver.

void CheckPrivacyMetering(const SourceFile& file,
                          std::vector<Finding>* findings) {
  if (file.is_header) return;
  static const std::regex kDisclosureRe(
      R"(\b(EncodeBitReport|EncodeReportBatch)\s*\(|\bBitReport\s*\{)");
  static const std::regex kChargePathRe(R"(\b(TryChargeBit|PrivacyMeter)\b)");
  static const std::regex kLocalMeterRe(R"(\blocal_meter\b)");
  static const std::regex kChargeCallRe(R"(\bTryChargeBit\b)");

  // The shard layer splits the privacy ledger per failure domain
  // (docs/SHARDING.md): a shard TU that discloses bits must charge its own
  // shard-local meter (local_meter), and the merge tier — which only
  // combines tallies the shards already metered — must never charge a
  // meter at all (that would be cross-shard double metering).
  const bool shard_tu = StartsWith(file.rel_path, "src/federated/shard/");
  const bool merge_tu =
      shard_tu && file.rel_path.find("merge") != std::string::npos;

  int first_line = 0;
  int charge_line = 0;
  bool charges = false;
  bool shard_local = false;
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& code = file.code_lines[i];
    if (first_line == 0 && std::regex_search(code, kDisclosureRe)) {
      first_line = static_cast<int>(i + 1);
    }
    if (!charges && std::regex_search(code, kChargePathRe)) charges = true;
    if (!shard_local && std::regex_search(code, kLocalMeterRe)) {
      shard_local = true;
    }
    if (charge_line == 0 && std::regex_search(code, kChargeCallRe)) {
      charge_line = static_cast<int>(i + 1);
    }
  }

  if (merge_tu && charge_line != 0) {
    findings->push_back(
        {file.rel_path, charge_line, Check::kPrivacyMetering,
         "the shard merge tier combines tallies already charged to each "
         "shard's local meter; charging again here double-meters across "
         "shards"});
  }
  if (first_line == 0) return;
  if (shard_tu) {
    // Inside the shard layer a generic PrivacyMeter reference is not
    // enough: the disclosure must be charged to the shard-local ledger.
    if (!shard_local) {
      findings->push_back(
          {file.rel_path, first_line, Check::kPrivacyMetering,
           "shard translation unit constructs or serializes client bit "
           "reports but never references the shard-local meter "
           "(local_meter) charge path"});
    }
    return;
  }
  if (!charges) {
    findings->push_back(
        {file.rel_path, first_line, Check::kPrivacyMetering,
         "translation unit constructs or serializes client bit reports but "
         "never references the PrivacyMeter::TryChargeBit charge path"});
  }
}

// ---------------------------------------------------------------------------
// obs-stability: instruments tagged Determinism::kStable feed the
// deterministic metrics snapshot, and kStable flight-recorder events feed
// the deterministic events snapshot — both must be byte-identical across
// reruns and crash recovery. A file that is allowed to touch wall clocks
// (allowlisted or waived) therefore may not register kStable instruments
// or emit kStable events.

void CheckObsStability(const SourceFile& file,
                       const std::vector<Waiver>& waivers,
                       std::vector<Finding>* findings) {
  bool wall_clock_capable = IsWallClockAllowlisted(file.rel_path);
  for (const Waiver& waiver : waivers) {
    if (waiver.path == file.rel_path && waiver.check == Check::kDeterminism) {
      wall_clock_capable = true;
      break;
    }
  }
  if (!wall_clock_capable) return;
  static const std::regex kRegisterRe(
      R"((Get(Counter|Gauge|Histogram)|EmitEvent)\s*\()");
  static const std::regex kStableRe(R"(\bkStable\b)");
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    if (!std::regex_search(file.code_lines[i], kRegisterRe)) continue;
    // Scan the registration/emission statement (to the terminating ';',
    // capped).
    for (size_t j = i; j < file.code_lines.size() && j < i + 10; ++j) {
      if (std::regex_search(file.code_lines[j], kStableRe)) {
        findings->push_back(
            {file.rel_path, static_cast<int>(i + 1), Check::kObsStability,
             "file is allowed to touch wall clocks, so it may not register "
             "Determinism::kStable instruments or emit kStable events (tag "
             "it kVolatile or move the instrumentation)"});
        break;
      }
      if (file.code_lines[j].find(';') != std::string::npos) break;
    }
  }
}

// ---------------------------------------------------------------------------
// header-hygiene.

std::string ExpectedGuard(const std::string& rel_path) {
  std::string stem = rel_path;
  if (StartsWith(stem, "src/")) stem = stem.substr(4);
  const size_t dot = stem.rfind('.');
  if (dot != std::string::npos) stem = stem.substr(0, dot);
  std::string guard = "BITPUSH_";
  for (const char c : stem) {
    guard.push_back(std::isalnum(static_cast<unsigned char>(c))
                        ? static_cast<char>(std::toupper(
                              static_cast<unsigned char>(c)))
                        : '_');
  }
  guard += "_H_";
  return guard;
}

// The std vocabulary types a header must include directly rather than
// lean on transitive includes for (a pragmatic
// include-what-you-use subset; extend as the tree grows).
const std::vector<std::pair<std::regex, std::string>>& SelfContainmentMap() {
  static const auto* map = [] {
    auto* m = new std::vector<std::pair<std::regex, std::string>>;
    const std::pair<const char*, const char*> raw[] = {
        {R"(\bstd\s*::\s*string\b)", "string"},
        {R"(\bstd\s*::\s*string_view\b)", "string_view"},
        {R"(\bstd\s*::\s*vector\b)", "vector"},
        {R"(\bstd\s*::\s*optional\b)", "optional"},
        {R"(\bstd\s*::\s*unordered_map\b)", "unordered_map"},
        {R"(\bstd\s*::\s*unordered_set\b)", "unordered_set"},
        {R"(\bstd\s*::\s*map\b|\bstd\s*::\s*multimap\b)", "map"},
        {R"(\bstd\s*::\s*function\b)", "functional"},
        {R"(\bstd\s*::\s*atomic\b)", "atomic"},
        {R"(\bstd\s*::\s*(mutex|lock_guard|unique_lock|scoped_lock)\b)",
         "mutex"},
        {R"(\bstd\s*::\s*(unique_ptr|shared_ptr|weak_ptr)\b)", "memory"},
        {R"(\bstd\s*::\s*(pair|tuple)\b)", ""},  // pair -> utility, tuple -> tuple
        {R"(\b(u?int(8|16|32|64)_t)\b)", "cstdint"},
        {R"(\bstd\s*::\s*FILE\b)", "cstdio"},
        {R"(\bstd\s*::\s*thread\b)", "thread"},
        {R"(\bstd\s*::\s*array\b)", "array"},
        {R"(\bstd\s*::\s*deque\b)", "deque"},
        {R"(\bstd\s*::\s*variant\b)", "variant"},
        {R"(\bstd\s*::\s*filesystem\b)", "filesystem"},
    };
    for (const auto& [pattern, header] : raw) {
      if (header[0] == '\0') continue;  // handled specially below
      m->emplace_back(std::regex(pattern), header);
    }
    m->emplace_back(std::regex(R"(\bstd\s*::\s*pair\b)"), "utility");
    m->emplace_back(std::regex(R"(\bstd\s*::\s*tuple\b)"), "tuple");
    return m;
  }();
  return *map;
}

struct GuardInfo {
  int ifndef_line = 0;  // 1-based; 0 if absent.
  int define_line = 0;
  int endif_line = 0;
  std::string guard_name;
};

GuardInfo FindGuard(const SourceFile& file) {
  GuardInfo info;
  static const std::regex kIfndefRe(R"(^\s*#\s*ifndef\s+([A-Za-z0-9_]+))");
  static const std::regex kDefineRe(R"(^\s*#\s*define\s+([A-Za-z0-9_]+))");
  static const std::regex kEndifRe(R"(^\s*#\s*endif\b)");
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    std::smatch match;
    if (info.ifndef_line == 0 &&
        std::regex_search(file.code_lines[i], match, kIfndefRe)) {
      info.ifndef_line = static_cast<int>(i + 1);
      info.guard_name = match[1].str();
      if (i + 1 < file.code_lines.size() &&
          std::regex_search(file.code_lines[i + 1], match, kDefineRe) &&
          match[1].str() == info.guard_name) {
        info.define_line = static_cast<int>(i + 2);
      }
      break;
    }
    // Any other preprocessor or code before the guard means no guard-first
    // layout; stop at the first non-blank code line.
    if (!Trim(file.code_lines[i]).empty()) break;
  }
  for (size_t i = file.code_lines.size(); i > 0; --i) {
    if (std::regex_search(file.code_lines[i - 1], kEndifRe)) {
      info.endif_line = static_cast<int>(i);
      break;
    }
    if (!Trim(file.code_lines[i - 1]).empty()) break;
  }
  return info;
}

void CheckHeaderHygiene(const SourceFile& file,
                        std::vector<Finding>* findings) {
  // SIMD intrinsics headers are a kernel implementation detail: the rest
  // of the tree reaches vector code only through the runtime-dispatched
  // kernels::KernelOps table (src/kernels/kernels.h), so direct includes
  // of the <immintrin.h> family are confined to src/kernels/. This rule
  // scans .cc files too, unlike the guard/self-containment rules below.
  static const std::regex kIntrinsicsIncludeRe(
      R"(^\s*#\s*include\s*[<"]([A-Za-z0-9_]*intrin\.h|arm_(?:neon|sve|acle)\.h)[>"])");
  if (!StartsWith(file.rel_path, "src/kernels/")) {
    for (size_t i = 0; i < file.code_lines.size(); ++i) {
      std::smatch match;
      if (std::regex_search(file.code_lines[i], match,
                            kIntrinsicsIncludeRe)) {
        findings->push_back(
            {file.rel_path, static_cast<int>(i + 1), Check::kHeaderHygiene,
             "SIMD intrinsics header <" + match[1].str() +
                 "> may only be included under src/kernels/; go through "
                 "the kernels::KernelOps dispatch table instead"});
      }
    }
  }
  if (!file.is_header) return;
  const std::string expected = ExpectedGuard(file.rel_path);
  const GuardInfo guard = FindGuard(file);
  if (guard.ifndef_line == 0 || guard.define_line == 0) {
    findings->push_back(
        {file.rel_path, 1, Check::kHeaderHygiene,
         "missing canonical include guard (#ifndef " + expected +
             " / #define " + expected + " before any other code)"});
  } else if (guard.guard_name != expected) {
    findings->push_back({file.rel_path, guard.ifndef_line,
                         Check::kHeaderHygiene,
                         "include guard `" + guard.guard_name +
                             "` should be `" + expected + "`"});
  } else if (guard.endif_line != 0) {
    const std::string& comment = file.comment_lines[guard.endif_line - 1];
    if (comment.find(expected) == std::string::npos) {
      findings->push_back(
          {file.rel_path, guard.endif_line, Check::kHeaderHygiene,
           "closing #endif should carry the guard comment `// " + expected +
               "`"});
    }
  }

  static const std::regex kUsingNamespaceRe(R"(\busing\s+namespace\b)");
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    if (std::regex_search(file.code_lines[i], kUsingNamespaceRe)) {
      findings->push_back(
          {file.rel_path, static_cast<int>(i + 1), Check::kHeaderHygiene,
           "`using namespace` in a header leaks into every includer"});
    }
  }

  // Self-containment: vocabulary std types must be included directly.
  std::set<std::string> included;
  static const std::regex kIncludeRe(R"(^\s*#\s*include\s*[<"]([^>"]+)[>"])");
  for (const std::string& code : file.code_lines) {
    std::smatch match;
    if (std::regex_search(code, match, kIncludeRe)) {
      included.insert(match[1].str());
    }
  }
  std::set<std::string> reported;
  for (size_t i = 0; i < file.code_lines.size(); ++i) {
    for (const auto& [re, header] : SelfContainmentMap()) {
      if (included.count(header) > 0 || reported.count(header) > 0) continue;
      if (std::regex_search(file.code_lines[i], re)) {
        reported.insert(header);
        findings->push_back(
            {file.rel_path, static_cast<int>(i + 1), Check::kHeaderHygiene,
             "header uses a std type from <" + header +
                 "> without including it directly (self-containment)"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// wire-exhaustiveness: cross-file. Harvest frame-kind enumerators and
// Encode/Decode message pairs from the format-defining headers, then
// require (a) pairing, (b) a library reference for every enumerator, and
// (c) fuzz/golden-test coverage for every enumerator and message.

struct WireDecl {
  std::string header;  // rel path
  int line = 0;
  std::string name;  // enumerator "Type::kX" or message stem "BitReport"
};

struct WireInventory {
  std::vector<WireDecl> enumerators;   // qualified Type::kX
  std::vector<WireDecl> encode_decls;  // message stems with Encode in header
  std::vector<WireDecl> decode_decls;  // message stems with Decode in header
  std::vector<WireDecl> version_consts;  // k*Version wire-section constants
};

const char* const kWireHeaders[] = {"src/federated/wire.h",
                                    "src/persist/journal.h",
                                    "src/federated/shard/merge.h"};

bool IsWireHeader(const std::string& rel_path) {
  for (const char* header : kWireHeaders) {
    if (rel_path == header) return true;
  }
  return false;
}

WireInventory HarvestWireDecls(const std::vector<SourceFile>& files) {
  WireInventory inventory;
  static const std::regex kEnumRe(
      R"(^\s*enum\s+class\s+([A-Za-z0-9_]+))");
  // Enumerators at line start (multi-line enums) or after the opening
  // brace / a comma (single-line enums such as merge.h's nested Status).
  static const std::regex kEnumeratorRe(R"((^|[{,])\s*(k[A-Za-z0-9_]+)\b)");
  static const std::regex kFnRe(
      R"(\b(Encode|Decode)([A-Za-z0-9_]+)\s*\()");
  // Wire-section version constants (kWireFormatVersion,
  // kTraceContextVersion, ...): sub-version bytes decoders fail closed on.
  static const std::regex kVersionConstRe(
      R"(^\s*(inline\s+)?constexpr\s+[A-Za-z0-9_:<>\s]+\b(k[A-Za-z0-9_]*Version)\s*=)");
  for (const SourceFile& file : files) {
    if (!IsWireHeader(file.rel_path)) continue;
    std::string enum_name;
    bool in_enum = false;
    // Brace depth at the start of each line: only enums declared at
    // namespace scope (depth <= 1) are wire enums. Nested helper enums —
    // e.g. MergedQueryResult::Status in merge.h, which never crosses the
    // wire as an enumerator section — are not harvested.
    int depth = 0;
    for (size_t i = 0; i < file.code_lines.size(); ++i) {
      const std::string& code = file.code_lines[i];
      const int line_start_depth = depth;
      for (const char c : code) {
        if (c == '{') ++depth;
        if (c == '}' && depth > 0) --depth;
      }
      std::smatch match;
      if (!in_enum && line_start_depth <= 1 &&
          std::regex_search(code, match, kEnumRe)) {
        enum_name = match[1].str();
        in_enum = true;
      }
      if (in_enum) {
        auto it = std::sregex_iterator(code.begin(), code.end(),
                                       kEnumeratorRe);
        for (; it != std::sregex_iterator(); ++it) {
          inventory.enumerators.push_back(
              {file.rel_path, static_cast<int>(i + 1),
               enum_name + "::" + (*it)[2].str()});
        }
      }
      if (in_enum && code.find("};") != std::string::npos) in_enum = false;
      if (line_start_depth <= 1 &&
          std::regex_search(code, match, kVersionConstRe)) {
        inventory.version_consts.push_back(
            {file.rel_path, static_cast<int>(i + 1), match[2].str()});
      }
      std::string rest = code;
      while (std::regex_search(rest, match, kFnRe)) {
        WireDecl decl{file.rel_path, static_cast<int>(i + 1),
                      match[2].str()};
        if (match[1].str() == "Encode") {
          inventory.encode_decls.push_back(decl);
        } else {
          inventory.decode_decls.push_back(decl);
        }
        rest = match.suffix().str();
      }
    }
  }
  return inventory;
}

bool IsFuzzOrGoldenTest(const SourceFile& file) {
  if (!StartsWith(file.rel_path, "tests/")) return false;
  if (file.rel_path.find("fuzz") != std::string::npos) return true;
  for (const std::string& raw : file.raw_lines) {
    if (raw.find("golden") != std::string::npos) return true;
  }
  return false;
}

void CheckWireExhaustiveness(const std::vector<SourceFile>& files,
                             std::vector<Finding>* findings) {
  const WireInventory inventory = HarvestWireDecls(files);
  if (inventory.enumerators.empty() && inventory.encode_decls.empty() &&
      inventory.version_consts.empty()) {
    return;
  }

  std::string library_code;   // src/**/*.cc
  std::string coverage_code;  // fuzz/golden tests
  for (const SourceFile& file : files) {
    const bool library =
        StartsWith(file.rel_path, "src/") && !file.is_header;
    const bool coverage = IsFuzzOrGoldenTest(file);
    if (!library && !coverage) continue;
    for (const std::string& code : file.code_lines) {
      if (library) {
        library_code += code;
        library_code += '\n';
      }
      if (coverage) {
        coverage_code += code;
        coverage_code += '\n';
      }
    }
  }

  const auto contains_token = [](const std::string& haystack,
                                 const std::string& token) {
    const std::regex re("\\b" + token + "\\b");
    return std::regex_search(haystack, re);
  };

  std::set<std::string> encode_names;
  std::set<std::string> decode_names;
  for (const WireDecl& decl : inventory.encode_decls) {
    encode_names.insert(decl.name);
  }
  for (const WireDecl& decl : inventory.decode_decls) {
    decode_names.insert(decl.name);
  }

  for (const WireDecl& decl : inventory.encode_decls) {
    if (decode_names.count(decl.name) == 0) {
      findings->push_back({decl.header, decl.line, Check::kWireExhaustiveness,
                           "Encode" + decl.name +
                               " has no matching Decode" + decl.name +
                               " declared in the same format header"});
    }
    if (!contains_token(coverage_code, "Encode" + decl.name) &&
        !contains_token(coverage_code, "Decode" + decl.name)) {
      findings->push_back(
          {decl.header, decl.line, Check::kWireExhaustiveness,
           "wire message " + decl.name +
               " is never exercised by a fuzz or golden test under tests/"});
    }
  }
  for (const WireDecl& decl : inventory.decode_decls) {
    if (encode_names.count(decl.name) == 0) {
      findings->push_back({decl.header, decl.line, Check::kWireExhaustiveness,
                           "Decode" + decl.name +
                               " has no matching Encode" + decl.name +
                               " declared in the same format header"});
    }
  }

  for (const WireDecl& decl : inventory.enumerators) {
    const size_t sep = decl.name.find("::");
    const std::string bare = decl.name.substr(sep + 2);
    // kQueryStarted -> QueryStartedRecord payload codec, when one exists.
    const std::string stem = bare.substr(1) + "Record";
    const bool has_payload_codec = encode_names.count(stem) > 0;
    if (!contains_token(library_code, decl.name)) {
      findings->push_back(
          {decl.header, decl.line, Check::kWireExhaustiveness,
           "enumerator " + decl.name +
               " is never referenced by an encode/decode path in src/"});
    }
    if (has_payload_codec && decode_names.count(stem) == 0) {
      findings->push_back({decl.header, decl.line, Check::kWireExhaustiveness,
                           "record payload " + stem + " can Encode but not " +
                               "Decode; recovery would fail closed on it"});
    }
    if (!contains_token(coverage_code, decl.name) &&
        !contains_token(coverage_code, bare) &&
        !(has_payload_codec &&
          (contains_token(coverage_code, "Encode" + stem) ||
           contains_token(coverage_code, "Decode" + stem)))) {
      findings->push_back(
          {decl.header, decl.line, Check::kWireExhaustiveness,
           "enumerator " + decl.name +
               " is never exercised by a fuzz or golden test under tests/"});
    }
  }

  // Wire-section version constants: decoders fail closed on an unknown
  // version byte, so the constant must actually gate a codec path in the
  // library AND a fuzz/golden test must prove the fail-closed behavior by
  // naming it (typically via a version-byte mutation case).
  for (const WireDecl& decl : inventory.version_consts) {
    if (!contains_token(library_code, decl.name)) {
      findings->push_back(
          {decl.header, decl.line, Check::kWireExhaustiveness,
           "wire-section version constant " + decl.name +
               " is never referenced by an encode/decode path in src/"});
    }
    if (!contains_token(coverage_code, decl.name)) {
      findings->push_back(
          {decl.header, decl.line, Check::kWireExhaustiveness,
           "wire-section version constant " + decl.name +
               " is never exercised by a fuzz or golden test under tests/ "
               "(mutate the version byte and require fail-closed decoding)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Mechanical fixes: canonical include guards and waiver normalization.

bool FixFile(SourceFile* file) {
  bool changed = false;
  const std::string expected = ExpectedGuard(file->rel_path);
  if (file->is_header) {
    const GuardInfo guard = FindGuard(*file);
    if (guard.ifndef_line != 0 && guard.define_line != 0 &&
        guard.guard_name != expected) {
      file->raw_lines[guard.ifndef_line - 1] = "#ifndef " + expected;
      file->raw_lines[guard.define_line - 1] = "#define " + expected;
      if (guard.endif_line != 0) {
        file->raw_lines[guard.endif_line - 1] = "#endif  // " + expected;
      }
      changed = true;
    } else if (guard.ifndef_line != 0 && guard.guard_name == expected &&
               guard.endif_line != 0) {
      const std::string canonical_endif = "#endif  // " + expected;
      if (Trim(file->raw_lines[guard.endif_line - 1]) !=
          Trim(canonical_endif)) {
        file->raw_lines[guard.endif_line - 1] = canonical_endif;
        changed = true;
      }
    }
  }
  // Normalize waiver spacing to the canonical form.
  static const std::regex kSloppyWaiverRe(
      R"(//\s*bitpush-lint:\s*allow\(\s*([A-Za-z0-9_-]+)\s*\)\s*:\s*(.+?)\s*$)");
  for (std::string& line : file->raw_lines) {
    std::smatch match;
    if (std::regex_search(line, match, kSloppyWaiverRe)) {
      const std::string canonical = "// bitpush-lint: allow(" +
                                    match[1].str() + "): " +
                                    Trim(match[2].str());
      const std::string current = line.substr(match.position(0));
      if (current != canonical) {
        line = line.substr(0, match.position(0)) + canonical;
        changed = true;
      }
    }
  }
  return changed;
}

// ---------------------------------------------------------------------------
// Driver.

bool CheckEnabled(const Options& options, Check check) {
  if (check == Check::kWaiverSyntax) return true;
  if (options.checks.empty()) return true;
  return std::find(options.checks.begin(), options.checks.end(), check) !=
         options.checks.end();
}

}  // namespace

std::string CheckName(Check check) {
  for (const CheckNameEntry& entry : kCheckNames) {
    if (entry.check == check) return entry.name;
  }
  return "unknown";
}

bool ParseCheckName(const std::string& name, Check* out) {
  for (const CheckNameEntry& entry : kCheckNames) {
    if (name == entry.name) {
      *out = entry.check;
      return true;
    }
  }
  return false;
}

Result RunLint(const std::string& root, const Options& options) {
  Result result;
  analysis::TreeLoadResult tree = analysis::LoadTree(root);
  if (tree.io_error) {
    result.io_error = true;
    result.io_error_message = std::move(tree.io_error_message);
    return result;
  }
  std::vector<SourceFile> files = std::move(tree.files);
  result.files_scanned = static_cast<int>(files.size());

  if (options.fix) {
    for (SourceFile& file : files) {
      if (!FixFile(&file)) continue;
      std::ofstream out(file.abs_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        result.io_error = true;
        result.io_error_message = "cannot write " + file.abs_path;
        return result;
      }
      for (const std::string& line : file.raw_lines) out << line << '\n';
      out.close();
      analysis::Relex(&file);
      result.fixed_paths.push_back(file.rel_path);
    }
  }

  std::vector<Finding> raw_findings;
  std::vector<Waiver> all_waivers;
  for (const SourceFile& file : files) {
    ParsedWaivers parsed = ParseWaivers(file);
    for (Finding& finding : parsed.syntax_findings) {
      raw_findings.push_back(std::move(finding));
    }
    for (Waiver& waiver : parsed.waivers) {
      all_waivers.push_back(std::move(waiver));
    }
  }
  for (const SourceFile& file : files) {
    if (CheckEnabled(options, Check::kDeterminism)) {
      CheckDeterminism(file, &raw_findings);
    }
    if (CheckEnabled(options, Check::kPrivacyMetering)) {
      CheckPrivacyMetering(file, &raw_findings);
    }
    if (CheckEnabled(options, Check::kObsStability)) {
      CheckObsStability(file, all_waivers, &raw_findings);
    }
    if (CheckEnabled(options, Check::kHeaderHygiene)) {
      CheckHeaderHygiene(file, &raw_findings);
    }
  }
  if (CheckEnabled(options, Check::kWireExhaustiveness)) {
    CheckWireExhaustiveness(files, &raw_findings);
  }

  for (Finding& finding : raw_findings) {
    if (IsSuppressed(finding, all_waivers)) continue;
    result.findings.push_back(std::move(finding));
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return CheckName(a.check) < CheckName(b.check);
            });
  result.waivers = std::move(all_waivers);
  std::sort(result.waivers.begin(), result.waivers.end(),
            [](const Waiver& a, const Waiver& b) {
              if (a.path != b.path) return a.path < b.path;
              return a.line < b.line;
            });
  return result;
}

std::string FormatReport(const Result& result) {
  std::ostringstream out;
  for (const Finding& finding : result.findings) {
    out << finding.path << ":" << finding.line << ": ["
        << CheckName(finding.check) << "] " << finding.message << "\n";
  }
  out << "bitpush_lint: " << result.findings.size() << " violation(s), "
      << result.waivers.size() << " waiver(s) in budget, "
      << result.files_scanned << " file(s) scanned";
  if (!result.fixed_paths.empty()) {
    out << ", " << result.fixed_paths.size() << " file(s) fixed";
  }
  out << "\n";
  return out.str();
}

std::string FormatWaiverReport(const Result& result) {
  std::ostringstream out;
  for (const Waiver& waiver : result.waivers) {
    out << waiver.path << ":" << waiver.line << ": allow("
        << CheckName(waiver.check) << "): " << waiver.reason << "\n";
  }
  out << result.waivers.size() << " waiver(s) in budget\n";
  return out.str();
}

}  // namespace bitpush::lint
