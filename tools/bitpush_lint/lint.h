// Project-invariant static analysis for the bitpush tree.
//
// The repository carries three machine-checkable contracts that ordinary
// compilers cannot see: seeded determinism (crash-recovered campaigns must
// replay byte-identically — docs/PERSISTENCE.md), bit-level privacy
// metering (no client bit is disclosed without a PrivacyMeter charge —
// paper §1.1, core/privacy_meter.h), and wire/journal format
// exhaustiveness (every record type must encode, decode, and be fuzzed —
// federated/wire.h, persist/journal.h). `bitpush_lint` enforces them as
// named token/line-level checks over src/, tests/, bench/, and tools/,
// with no compiler dependency, so the invariants fail a PR at lint time
// instead of depending on reviewer memory.
//
// Checks (see docs/STATIC_ANALYSIS.md for the full catalogue):
//
//   determinism         bans ambient-entropy and wall-clock constructs
//                       (std::random_device, std::rand, time(),
//                       system_clock/steady_clock, std RNG engines)
//                       outside the wall-clock allowlist.
//   privacy-metering    a TU that serializes or constructs client bit
//                       reports must reference the PrivacyMeter charge
//                       path (TryChargeBit) or carry a waiver.
//   wire-exhaustiveness every frame-kind enumerator and Encode/Decode
//                       message pair declared in federated/wire.h,
//                       persist/journal.h, and federated/shard/merge.h
//                       must be referenced by the library and exercised
//                       by a fuzz or golden test; wire-section version
//                       constants (k*Version) must gate a codec path in
//                       src/ and be named by a fuzz/golden case that
//                       proves fail-closed decoding.
//   obs-stability       files allowed to touch wall clocks may not
//                       register Determinism::kStable instruments.
//   header-hygiene      canonical include guards, no `using namespace`
//                       in headers, direct includes for std vocabulary
//                       types (self-containment), and SIMD intrinsics
//                       headers (<immintrin.h>, <arm_neon.h>, ...)
//                       confined to src/kernels/.
//
// Any finding can be suppressed with an annotated waiver comment on the
// same or the preceding line (file-scoped for privacy-metering). The
// syntax is `bitpush-lint: allow(<check>): <reason>` inside a // comment;
// the reason string is mandatory.
//
// The reason is mandatory; waivers are counted and printed as a budget so
// reviewers can watch it. Malformed waivers are themselves findings
// (check name "waiver-syntax").

#ifndef BITPUSH_TOOLS_BITPUSH_LINT_LINT_H_
#define BITPUSH_TOOLS_BITPUSH_LINT_LINT_H_

#include <string>
#include <vector>

namespace bitpush::lint {

enum class Check {
  kDeterminism,
  kPrivacyMetering,
  kWireExhaustiveness,
  kObsStability,
  kHeaderHygiene,
  // Malformed or unknown `bitpush-lint:` annotations. Always enabled; not
  // a check family of its own, it polices the waiver syntax itself.
  kWaiverSyntax,
};

// Canonical check name as used in waiver comments and --checks.
std::string CheckName(Check check);
// Returns true and sets *out when `name` is a known check name.
bool ParseCheckName(const std::string& name, Check* out);

struct Finding {
  std::string path;  // Relative to the lint root.
  int line = 0;      // 1-based.
  Check check = Check::kDeterminism;
  std::string message;
};

struct Waiver {
  std::string path;
  int line = 0;
  Check check = Check::kDeterminism;
  std::string reason;
};

struct Options {
  // Empty means every check family. "waiver-syntax" is always enabled.
  std::vector<Check> checks;
  // Apply mechanical fixes (include guards, waiver normalization) in
  // place; fixed files are listed in Result::fixed_paths and findings are
  // re-computed on the fixed text.
  bool fix = false;
};

struct Result {
  std::vector<Finding> findings;    // Unsuppressed violations.
  std::vector<Waiver> waivers;      // The waiver budget actually in use.
  std::vector<std::string> fixed_paths;
  int files_scanned = 0;
  bool io_error = false;
  std::string io_error_message;
};

// Lints every *.h / *.cc under <root>/{src,tests,bench,tools}. Directories
// named "golden" are skipped: they hold fixture snippets (including the
// deliberately-broken inputs of tests/golden/lint/) that must not count
// against the real tree. `root` must contain at least one of the four
// directories.
Result RunLint(const std::string& root, const Options& options);

// One "path:line: [check] message" line per finding, sorted by path then
// line, followed by a one-line summary with the waiver budget.
std::string FormatReport(const Result& result);

// One line per waiver: "path:line: allow(check): reason".
std::string FormatWaiverReport(const Result& result);

}  // namespace bitpush::lint

#endif  // BITPUSH_TOOLS_BITPUSH_LINT_LINT_H_
