// Command-line driver: run any of the library's aggregation protocols over
// a synthetic or census workload without writing code.
//
//   bitpush_sim --task=mean --workload=census --n=10000 --epsilon=1
//   bitpush_sim --task=variance --workload=normal --mu=1000 --sigma=100
//   bitpush_sim --task=histogram --workload=exponential --buckets=16
//   bitpush_sim --task=plan --bits=8 --epsilon=1 --target_nrmse=0.02

#include <cstdio>
#include <string>
#include <vector>

#include "core/adaptive.h"
#include "persist/recovery.h"
#include "core/bit_probabilities.h"
#include "core/histogram_estimation.h"
#include "core/planner.h"
#include "core/proportion.h"
#include "core/range_tree.h"
#include "core/variance_estimation.h"
#include "data/census.h"
#include "federated/debugging.h"
#include "federated/shard/runner.h"
#include "data/file_source.h"
#include "data/synthetic.h"
#include "obs/alerts.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rng/rng.h"
#include "stats/repetition.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

Dataset MakeWorkload(const std::string& workload, const std::string& input,
                     int64_t n, double mu, double sigma, Rng& rng) {
  if (workload == "census") return CensusAges(n, rng);
  if (workload == "normal") return NormalData(n, mu, sigma, rng);
  if (workload == "uniform") return UniformData(n, 0.0, mu, rng);
  if (workload == "exponential") return ExponentialData(n, mu, rng);
  if (workload == "heavy_tail") return ParetoData(n, mu, 1.2, rng);
  if (workload == "file") {
    Dataset data;
    std::string error;
    if (!LoadDatasetFromFile(input, &data, &error)) {
      std::fprintf(stderr, "--workload=file: %s\n", error.c_str());
      std::exit(EXIT_FAILURE);
    }
    if (data.empty()) {
      std::fprintf(stderr, "--workload=file: %s holds no values\n",
                   input.c_str());
      std::exit(EXIT_FAILURE);
    }
    return data;
  }
  std::fprintf(stderr,
               "unknown --workload=%s (census, normal, uniform, "
               "exponential, heavy_tail, file)\n",
               workload.c_str());
  std::exit(EXIT_FAILURE);
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

// Flushes the obs registry/tracer to the --metrics_out/--trace_out paths on
// scope exit, so every task path (including early returns) exports. The
// metrics format follows the extension: .prom -> Prometheus text, .jsonl /
// .json -> JSONL, .snapshot -> deterministic kStable snapshot. "-" writes
// to stdout. The trace is always Chrome trace-event JSON.
class ObsExporter {
 public:
  ObsExporter(std::string metrics_out, std::string trace_out,
              std::string events_out, std::string alerts_out)
      : metrics_out_(std::move(metrics_out)),
        trace_out_(std::move(trace_out)),
        events_out_(std::move(events_out)),
        alerts_out_(std::move(alerts_out)) {}

  ~ObsExporter() {
    std::string error;
    if (!metrics_out_.empty()) {
      std::string text;
      if (EndsWith(metrics_out_, ".snapshot")) {
        text = obs::DeterministicMetricsSnapshot();
      } else if (EndsWith(metrics_out_, ".jsonl") ||
                 EndsWith(metrics_out_, ".json")) {
        text = obs::MetricsJsonl();
      } else {
        text = obs::PrometheusText();
      }
      if (!obs::WriteTextFile(metrics_out_, text, &error)) {
        std::fprintf(stderr, "--metrics_out: %s\n", error.c_str());
      }
    }
    if (!trace_out_.empty() &&
        !obs::WriteTextFile(trace_out_, obs::ChromeTraceJson(), &error)) {
      std::fprintf(stderr, "--trace_out: %s\n", error.c_str());
    }
    if (!events_out_.empty()) {
      // .snapshot = stable ring only, byte-identical across crash-recovered
      // reruns; anything else = the full JSONL dump (both rings).
      const std::string text = EndsWith(events_out_, ".snapshot")
                                   ? obs::DeterministicEventsSnapshot()
                                   : obs::EventsJsonl();
      if (!obs::WriteTextFile(events_out_, text, &error)) {
        std::fprintf(stderr, "--events_out: %s\n", error.c_str());
      }
    }
    if (!alerts_out_.empty() &&
        !obs::WriteTextFile(alerts_out_, obs::AlertTimelineText(), &error)) {
      std::fprintf(stderr, "--alerts_out: %s\n", error.c_str());
    }
  }

 private:
  std::string metrics_out_;
  std::string trace_out_;
  std::string events_out_;
  std::string alerts_out_;
};

int Main(int argc, char** argv) {
  std::string task = "mean";
  std::string workload = "census";
  std::string input;
  int64_t n = 10000;
  int64_t bits = 8;
  int64_t reps = 100;
  int64_t buckets = 16;
  double mu = 1000.0;
  double sigma = 100.0;
  double epsilon = 0.0;
  double target_nrmse = 0.02;
  int64_t seed = 1;
  FlagSet flags;
  flags.AddString("task", &task,
                  "mean | variance | histogram | quantiles | proportion | "
                  "diagnose | plan | campaign");
  std::string state_dir;
  int64_t ticks = 7;
  int64_t snapshot_every = 0;
  int64_t crash_after_records = 0;
  flags.AddString("state_dir", &state_dir,
                  "durable state directory for --task=campaign (journal + "
                  "snapshots; required)");
  flags.AddInt64("ticks", &ticks, "campaign ticks for --task=campaign");
  flags.AddInt64("snapshot_every", &snapshot_every,
                 "snapshot cadence in ticks (0 = journal only)");
  flags.AddInt64("crash_after_records", &crash_after_records,
                 "crash harness: exit 137 after this many journal records "
                 "(0 = off)");
  int64_t shards = 1;
  flags.AddInt64("shards", &shards,
                 "coordinator shards for --task=campaign (1 = single "
                 "coordinator; N > 1 runs the sharded topology with "
                 "per-shard state under --state_dir)");
  double range_low = 0.0;
  double range_high = 0.0;
  flags.AddDouble("range_low", &range_low,
                  "lower bound for --task=proportion");
  flags.AddDouble("range_high", &range_high,
                  "upper bound for --task=proportion");
  flags.AddString("workload", &workload,
                  "census | normal | uniform | exponential | heavy_tail | "
                  "file");
  flags.AddString("input", &input,
                  "values file (one per line) for --workload=file");
  flags.AddInt64("n", &n, "number of clients");
  flags.AddInt64("bits", &bits, "bit depth b");
  flags.AddInt64("reps", &reps, "repetitions for error reporting");
  flags.AddInt64("buckets", &buckets, "histogram buckets");
  flags.AddDouble("mu", &mu, "workload location parameter");
  flags.AddDouble("sigma", &sigma, "workload scale parameter");
  flags.AddDouble("epsilon", &epsilon, "LDP epsilon (0 = off)");
  flags.AddDouble("target_nrmse", &target_nrmse, "accuracy target (plan)");
  flags.AddInt64("seed", &seed, "base seed");
  std::string metrics_out;
  std::string trace_out;
  flags.AddString("metrics_out", &metrics_out,
                  "write metrics on exit (.prom = Prometheus text, "
                  ".jsonl/.json = JSONL, .snapshot = deterministic "
                  "snapshot; - = stdout)");
  flags.AddString("trace_out", &trace_out,
                  "write spans on exit as Chrome trace-event JSON "
                  "(- = stdout)");
  std::string events_out;
  std::string alerts_out;
  flags.AddString("events_out", &events_out,
                  "write flight-recorder events on exit (.snapshot = "
                  "deterministic stable stream, anything else = JSONL; "
                  "- = stdout)");
  flags.AddString("alerts_out", &alerts_out,
                  "write the deterministic fired-alert timeline on exit "
                  "(- = stdout)");
  flags.Parse(argc, argv);

  if (!metrics_out.empty() || !trace_out.empty() || !events_out.empty() ||
      !alerts_out.empty()) {
    obs::SetEnabled(true);
  }
  if (!trace_out.empty()) obs::SetTracingEnabled(true);
  const ObsExporter exporter(metrics_out, trace_out, events_out, alerts_out);

  Rng rng(static_cast<uint64_t>(seed));
  const FixedPointCodec codec =
      FixedPointCodec::Integer(static_cast<int>(bits));

  if (task == "plan") {
    const CohortPlan plan = PlanForNrmse(
        codec, GeometricProbabilities(static_cast<int>(bits), 1.0), {},
        epsilon, mu, target_nrmse);
    std::printf("planning for NRMSE %.4f at expected mean %.1f "
                "(b=%lld, eps=%g):\n",
                target_nrmse, mu, static_cast<long long>(bits), epsilon);
    std::printf("  required clients: %lld\n",
                static_cast<long long>(plan.required_clients));
    std::printf("  predicted stderr: %.3f codewords\n",
                plan.predicted_stderr_codewords);
    return 0;
  }

  const Dataset data = MakeWorkload(workload, input, n, mu, sigma, rng);
  const Dataset clipped = data.Clipped(codec.low(), codec.high());
  std::printf("workload %s: n=%lld true_mean=%.3f true_var=%.3f "
              "(clipped to %d bits)\n\n",
              clipped.name().c_str(),
              static_cast<long long>(clipped.size()),
              clipped.truth().mean, clipped.truth().variance,
              codec.bits());

  if (task == "mean") {
    AdaptiveConfig config;
    config.bits = codec.bits();
    config.epsilon = epsilon;
    if (epsilon > 0) config.squash = SquashPolicy::Absolute(0.05);
    const std::vector<uint64_t> codewords =
        codec.EncodeAll(clipped.values());
    const ErrorStats stats = RunRepetitions(
        reps, static_cast<uint64_t>(seed) + 1, clipped.truth().mean,
        [&](Rng& run) {
          return codec.Decode(
              RunAdaptiveBitPushing(codewords, config, run)
                  .estimate_codeword);
        });
    std::printf("adaptive bit-pushing mean: %.4f  (nrmse %.4f over %lld "
                "reps)\n",
                stats.mean_estimate, stats.nrmse,
                static_cast<long long>(reps));
    return 0;
  }

  if (task == "variance") {
    VarianceConfig config;
    config.protocol.bits = codec.bits();
    config.protocol.epsilon = epsilon;
    const ErrorStats stats = RunRepetitions(
        reps, static_cast<uint64_t>(seed) + 1, clipped.truth().variance,
        [&](Rng& run) {
          return EstimateVariance(clipped.values(), codec, config, run)
              .variance;
        });
    std::printf("bit-pushing variance: %.4f  (nrmse %.4f over %lld "
                "reps)\n",
                stats.mean_estimate, stats.nrmse,
                static_cast<long long>(reps));
    return 0;
  }

  if (task == "histogram") {
    HistogramConfig config;
    config.edges = UniformEdges(codec.low(), codec.high(),
                                static_cast<int>(buckets));
    config.epsilon = epsilon;
    const HistogramResult result =
        EstimateHistogram(clipped.values(), config, rng);
    Table table({"bucket", "range", "fraction"});
    for (size_t b = 0; b + 1 < config.edges.size(); ++b) {
      char range[64];
      std::snprintf(range, sizeof(range), "[%.1f, %.1f)", config.edges[b],
                    config.edges[b + 1]);
      table.NewRow()
          .AddInt(static_cast<int64_t>(b))
          .AddCell(range)
          .AddDouble(result.fractions[b], 4);
    }
    table.Print();
    std::printf("\nmedian: %.3f   p90: %.3f\n",
                result.Quantile(config.edges, 0.5),
                result.Quantile(config.edges, 0.9));
    return 0;
  }

  if (task == "campaign") {
    // Crash-consistent campaign: two metrics over the same population under
    // one shared privacy meter, journaled to --state_dir. Per-tick results
    // and the meter summary go to stdout; recovery details go to stderr, so
    // the stdout of an uninterrupted run and of a crashed-then-restarted
    // run can be diffed byte for byte.
    if (state_dir.empty()) {
      std::fprintf(stderr, "--task=campaign requires --state_dir\n");
      return EXIT_FAILURE;
    }
    const std::vector<Client> population =
        MakePopulation(clipped.values(), ClientConfig{});
    std::vector<CampaignQuery> queries;
    for (int i = 0; i < 2; ++i) {
      CampaignQuery query;
      query.name = i == 0 ? "mean_a" : "mean_b";
      query.value_id = i;
      query.cadence_ticks = i == 0 ? 1 : 2;
      query.query.adaptive.bits = codec.bits();
      query.query.adaptive.epsilon = epsilon;
      queries.push_back(query);
    }
    MeterPolicy policy;
    policy.max_bits_per_value = 2;
    policy.max_bits_per_client = 3;

    if (shards > 1) {
      // Sharded topology (docs/SHARDING.md): N coordinator shards, each
      // with its own journal under <state_dir>/shard<i>, merged per tick.
      if (crash_after_records != 0) {
        std::fprintf(stderr,
                     "--crash_after_records only applies to the single-"
                     "coordinator path (--shards=1)\n");
        return EXIT_FAILURE;
      }
      ShardedCampaignOptions shard_options;
      shard_options.shards = shards;
      shard_options.seed = static_cast<uint64_t>(seed);
      shard_options.state_root = state_dir;
      shard_options.snapshot_every_ticks = snapshot_every;
      ShardedCampaignRunner sharded(queries, policy, shard_options);
      sharded.Open({&population, &population}, {codec, codec});
      Table table(
          {"tick", "query", "status", "estimate", "reports", "shards"});
      for (int64_t tick = 0; tick < ticks; ++tick) {
        MergedTickResult merged;
        std::string error;
        if (!sharded.RunTick(tick, &merged, &error)) {
          std::fprintf(stderr, "sharded tick failed: %s\n", error.c_str());
          return EXIT_FAILURE;
        }
        // Per-tick alert evaluation over the merged topology: the privacy
        // inputs are the sum of the disjoint shard-local ledgers, and the
        // delivery inputs come from the tick's merge result.
        obs::CampaignAlertInputs alert_inputs;
        alert_inputs.tick = tick;
        for (int64_t s = 0; s < shards; ++s) {
          const PrivacyMeter* meter = sharded.shard(s)->local_meter();
          if (meter == nullptr) continue;
          alert_inputs.bits_spent += meter->total_bits();
          alert_inputs.denied_charges += meter->denied_charges();
        }
        alert_inputs.bits_budget = static_cast<int64_t>(population.size()) *
                                   policy.max_bits_per_client;
        alert_inputs.shards_delivered = merged.shards_delivered;
        alert_inputs.shards_total = shards;
        alert_inputs.quorum_min = sharded.merge().quorum_min();
        obs::AlertEngine::Default().EvaluateCampaignTick(alert_inputs);
        for (const MergedQueryResult& result : merged.queries) {
          const char* status =
              result.status == MergedQueryResult::Status::kRan ? "ran"
              : result.status == MergedQueryResult::Status::kSkipped
                  ? "skipped"
                  : "failed_quorum";
          table.NewRow()
              .AddInt(result.tick)
              .AddCell(result.query_name)
              .AddCell(status)
              .AddDouble(result.estimate, 4)
              .AddInt(result.reports)
              .AddInt(result.shards_merged);
        }
      }
      table.Print();
      int64_t total_bits = 0;
      int64_t denied = 0;
      for (int64_t s = 0; s < shards; ++s) {
        const PrivacyMeter* meter = sharded.shard(s)->local_meter();
        if (meter == nullptr) continue;
        total_bits += meter->total_bits();
        denied += meter->denied_charges();
      }
      std::printf("\nmeter: total_bits=%lld denied_charges=%lld\n",
                  static_cast<long long>(total_bits),
                  static_cast<long long>(denied));
      std::printf("shard metrics:\n%s",
                  sharded.merge().merged_metrics().ToSnapshot().c_str());
      return 0;
    }

    DurableCampaignOptions options;
    options.state_dir = state_dir;
    options.seed = static_cast<uint64_t>(seed);
    options.snapshot_every_ticks = snapshot_every;
    options.crash_after_records = crash_after_records;
    DurableCampaignRunner runner(queries, policy, options);
    std::string error;
    if (!runner.Open(&error)) {
      std::fprintf(stderr, "recovery failed (refusing to run): %s\n",
                   error.c_str());
      return EXIT_FAILURE;
    }
    const RecoveryInfo& info = runner.recovery_info();
    if (info.recovered) {
      std::fprintf(stderr,
                   "recovered state: snapshot=%s torn_tail=%s "
                   "replayed_records=%lld completed_ticks=%lld\n",
                   info.had_snapshot ? "yes" : "no",
                   info.torn_tail ? "yes" : "no",
                   static_cast<long long>(info.replayed_records),
                   static_cast<long long>(info.completed_ticks));
    }

    const std::vector<const std::vector<Client>*> populations = {
        &population, &population};
    const std::vector<FixedPointCodec> codecs = {codec, codec};
    Table table({"tick", "query", "status", "estimate", "reports"});
    for (int64_t tick = 0; tick < ticks; ++tick) {
      const std::vector<CampaignTickResult> tick_results =
          runner.RunTick(tick, populations, codecs);
      // Per-tick alert evaluation. The meter inputs come from the
      // recovery-stable trajectory (meter_by_tick), not the live ledger,
      // so the kStable burn-rate rule's timeline is byte-identical across
      // a clean run and a crash-recovered rerun; the volatile rules
      // (journal growth, recovery divergence) consume live process state.
      obs::CampaignAlertInputs alert_inputs;
      alert_inputs.tick = tick;
      const auto& meter_samples = runner.meter_by_tick();
      if (static_cast<size_t>(tick) < meter_samples.size()) {
        const auto& sample = meter_samples[static_cast<size_t>(tick)];
        alert_inputs.bits_spent = sample.bits_spent;
        alert_inputs.denied_charges = sample.denied_charges;
      }
      alert_inputs.bits_budget = static_cast<int64_t>(population.size()) *
                                 policy.max_bits_per_client;
      alert_inputs.journal_records = runner.journal_records();
      alert_inputs.recovery_divergence = info.torn_tail;
      obs::AlertEngine::Default().EvaluateCampaignTick(alert_inputs);
      for (const CampaignTickResult& result : tick_results) {
        const char* status =
            result.status == CampaignTickResult::Status::kRan ? "ran"
            : result.status == CampaignTickResult::Status::kSkippedCohort
                ? "skipped_cohort"
                : "skipped_budget";
        table.NewRow()
            .AddInt(result.tick)
            .AddCell(result.query_name)
            .AddCell(status)
            .AddDouble(result.estimate, 4)
            .AddInt(result.reports);
      }
    }
    table.Print();
    std::printf("\nmeter: total_bits=%lld denied_charges=%lld\n",
                static_cast<long long>(runner.meter().total_bits()),
                static_cast<long long>(runner.meter().denied_charges()));
    std::printf("campaign: runs=%lld skips=%lld\n",
                static_cast<long long>(runner.campaign().runs()),
                static_cast<long long>(runner.campaign().skips()));
    return 0;
  }

  if (task == "diagnose") {
    // Pilot round + bit-histogram diagnostics (federated debugging).
    AdaptiveConfig pilot;
    pilot.bits = codec.bits();
    pilot.epsilon = epsilon;
    const AdaptiveResult result = RunAdaptiveBitPushing(
        codec.EncodeAll(clipped.values()), pilot, rng);
    BitHistogram pooled = result.round1.histogram;
    pooled.Merge(result.round2.histogram);
    const DistributionDiagnostics diagnostics =
        DiagnoseDistribution(pooled, epsilon, DebuggingConfig{});
    std::printf("highest used bit: %d of %d configured\n",
                diagnostics.highest_used_bit, codec.bits());
    std::printf("vacuous bit fraction: %.2f\n",
                diagnostics.vacuous_bit_fraction);
    std::printf("recommended bit width: %d\n",
                RecommendBitWidth(diagnostics, codec.bits()));
    if (diagnostics.findings.empty()) {
      std::printf("findings: none (healthy distribution)\n");
    } else {
      for (const std::string& finding : diagnostics.findings) {
        std::printf("finding: %s\n", finding.c_str());
      }
    }
    return 0;
  }

  if (task == "proportion") {
    const ProportionResult result = EstimateRangeProportion(
        clipped.values(), range_low, range_high, epsilon, rng);
    std::printf("fraction in [%.2f, %.2f]: %.4f (+/- %.4f), count %.0f "
                "of %lld\n",
                range_low, range_high, result.clamped_fraction,
                1.96 * result.stderr_fraction, result.count,
                static_cast<long long>(result.reports));
    return 0;
  }

  if (task == "quantiles") {
    RangeTreeConfig config;
    config.levels = static_cast<int>(bits);
    config.epsilon = epsilon;
    const RangeTreeResult tree = EstimateRangeTree(
        codec.EncodeAll(clipped.values()), config, rng);
    Table table({"q", "value"});
    for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
      table.NewRow().AddDouble(q, 3).AddDouble(
          codec.Decode(tree.Quantile(q)), 5);
    }
    table.Print();
    return 0;
  }

  std::fprintf(stderr, "unknown --task=%s\n", task.c_str());
  return EXIT_FAILURE;
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
