// Cross-TU declaration index for the bitpush dataflow analyzer
// (tools/bitpush_analyze).
//
// Built on the analysis_core source model, the index extracts — with a
// token-level heuristic, no compiler involved —
//
//   * every function definition (file, base name, body line range),
//   * the statements inside each body (code text split on `;`/`{`/`}` at
//     parenthesis depth zero, so a call wrapped over several physical
//     lines is analyzed as one unit),
//   * the quoted-include graph between tree files and its transitive
//     closure (used to prefer in-closure candidates when a call site's
//     base name resolves to several definitions).
//
// The heuristic is deliberately conservative: it only records definitions
// found at namespace/class scope (brace nesting never inside another
// recorded function), identifies the name as the last identifier before a
// balanced parenthesis group whose trailer looks like a function signature
// (`const`, `noexcept`, `override`, a constructor init list, a trailing
// return type, or nothing), and skips preprocessor lines entirely.
// Lambdas assigned inside bodies, operator overloads, and macro-generated
// functions are not indexed; the analyzer's token rules do not depend on
// them.

#ifndef BITPUSH_TOOLS_ANALYSIS_CORE_INDEX_H_
#define BITPUSH_TOOLS_ANALYSIS_CORE_INDEX_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis_core/source_model.h"

namespace bitpush::analysis {

// One statement of a function body: the code text (whitespace-collapsed,
// literals already blanked by the lexer) and the 1-based line its first
// token sits on.
struct Statement {
  int line = 0;
  std::string text;
};

struct FunctionDef {
  std::string base_name;   // Unqualified: "HandleRequest".
  std::string qual_name;   // As written: "Client::HandleRequest".
  int file_index = -1;     // Into Index::files.
  int begin_line = 0;      // 1-based line holding the opening '{'.
  int end_line = 0;        // 1-based line holding the matching '}'.
  std::vector<Statement> statements;
};

struct Index {
  std::vector<SourceFile> files;
  std::vector<FunctionDef> functions;
  // base name -> indices into `functions`.
  std::map<std::string, std::vector<int>> by_base_name;
  // reachable[i] = file indices transitively included by files[i]
  // (including i itself). Only quoted project includes resolve.
  std::vector<std::set<int>> reachable;
};

// Consumes `files` (moves them into the index) and builds everything.
Index BuildIndex(std::vector<SourceFile> files);

}  // namespace bitpush::analysis

#endif  // BITPUSH_TOOLS_ANALYSIS_CORE_INDEX_H_
