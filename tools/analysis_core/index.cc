#include "analysis_core/index.h"

#include <cctype>
#include <deque>
#include <regex>
#include <utility>

namespace bitpush::analysis {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsKeyword(const std::string& word) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",      "while",  "switch",        "catch",
      "return", "sizeof",   "new",    "delete",        "else",
      "do",     "alignof",  "alignas", "decltype",     "static_assert",
      "noexcept", "defined", "throw", "co_return",     "co_await",
      "co_yield", "requires"};
  return kKeywords.count(word) > 0;
}

// Matches the text after a candidate signature's closing ')': empty, a
// cv/ref/noexcept/override trailer, a constructor init list, or a trailing
// return type.
bool TrailerLooksLikeSignature(const std::string& trailer) {
  static const std::regex kTrailerRe(
      R"(^\s*((const|noexcept|override|final|&|&&)\s*)*(noexcept\s*\([^)]*\)\s*)?((->|:)\s*\S.*)?\s*$)");
  return std::regex_match(trailer, kTrailerRe);
}

// Finds the matching ')' for the '(' at `open` in `s`; npos if unbalanced.
size_t MatchParen(const std::string& s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    if (s[i] == ')' && --depth == 0) return i;
  }
  return std::string::npos;
}

// Decides whether `pending` (the signature text accumulated since the last
// statement boundary) is a function definition about to open its body, and
// if so extracts the name. Picks the FIRST identifier-before-'(' whose
// parenthesis group balances and whose trailer looks like a signature —
// later candidates are constructor-init-list entries.
bool SignatureName(const std::string& pending, std::string* base_name,
                   std::string* qual_name) {
  static const std::regex kCallRe(R"(([A-Za-z_][A-Za-z0-9_]*)\s*\()");
  auto begin = std::sregex_iterator(pending.begin(), pending.end(), kCallRe);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    if (IsKeyword(name)) continue;
    const size_t open = it->position(0) + it->length(0) - 1;
    const size_t close = MatchParen(pending, open);
    if (close == std::string::npos) continue;
    if (!TrailerLooksLikeSignature(pending.substr(close + 1))) continue;
    *base_name = name;
    // Extend backwards over a `Qualifier::`* chain for the written name.
    size_t start = it->position(1);
    size_t cursor = start;
    while (cursor >= 2 && pending[cursor - 1] == ':' &&
           pending[cursor - 2] == ':') {
      size_t word_end = cursor - 2;
      size_t word_begin = word_end;
      while (word_begin > 0 && IsIdentChar(pending[word_begin - 1])) {
        --word_begin;
      }
      if (word_begin == word_end) break;
      cursor = word_begin;
    }
    *qual_name = pending.substr(cursor, open - cursor);
    while (!qual_name->empty() && std::isspace(static_cast<unsigned char>(
                                      qual_name->back()))) {
      qual_name->pop_back();
    }
    return true;
  }
  return false;
}

// True for preprocessor lines (and their backslash continuations), which
// must not contribute braces or signature text.
class PreprocessorSkipper {
 public:
  bool Skip(const std::string& code_line) {
    if (continuing_) {
      continuing_ = EndsWithBackslash(code_line);
      return true;
    }
    const std::string trimmed = Trim(code_line);
    if (!trimmed.empty() && trimmed[0] == '#') {
      continuing_ = EndsWithBackslash(code_line);
      return true;
    }
    return false;
  }

 private:
  static bool EndsWithBackslash(const std::string& line) {
    const std::string trimmed = Trim(line);
    return !trimmed.empty() && trimmed.back() == '\\';
  }
  bool continuing_ = false;
};

void AppendCollapsed(char c, std::string* out) {
  if (std::isspace(static_cast<unsigned char>(c))) {
    if (!out->empty() && out->back() != ' ') out->push_back(' ');
  } else {
    out->push_back(c);
  }
}

// Splits a body region (from just after the opening '{' to just before the
// matching '}') into statements at `;`/`{`/`}` seen at parenthesis depth
// zero, so multi-line calls — and lambdas passed as arguments — stay one
// unit.
std::vector<Statement> ExtractStatements(const SourceFile& file,
                                         int begin_line, size_t begin_col,
                                         int end_line, size_t end_col) {
  std::vector<Statement> statements;
  std::string current;
  int current_line = 0;
  int paren = 0;
  PreprocessorSkipper preprocessor;
  const auto flush = [&] {
    const std::string text = Trim(current);
    if (!text.empty()) statements.push_back({current_line, text});
    current.clear();
    current_line = 0;
  };
  for (int li = begin_line; li <= end_line; ++li) {
    const std::string& code = file.code_lines[li - 1];
    if (preprocessor.Skip(code)) continue;
    size_t from = li == begin_line ? begin_col + 1 : 0;
    size_t to = li == end_line ? end_col : code.size();
    for (size_t i = from; i < to && i < code.size(); ++i) {
      const char c = code[i];
      if (c == '(') ++paren;
      if (c == ')' && paren > 0) --paren;
      if (paren == 0 && (c == ';' || c == '{' || c == '}')) {
        flush();
        continue;
      }
      if (current_line == 0 &&
          !std::isspace(static_cast<unsigned char>(c))) {
        current_line = li;
      }
      AppendCollapsed(c, &current);
    }
    AppendCollapsed('\n', &current);
  }
  flush();
  return statements;
}

void ExtractFunctions(const SourceFile& file, int file_index,
                      std::vector<FunctionDef>* functions) {
  struct OpenBrace {
    bool is_function = false;
    int function_index = -1;
    size_t col = 0;
    int line = 0;
  };
  std::vector<OpenBrace> stack;
  int open_functions = 0;
  int paren = 0;
  std::string pending;
  int pending_line = 0;
  PreprocessorSkipper preprocessor;

  for (size_t li = 0; li < file.code_lines.size(); ++li) {
    const std::string& code = file.code_lines[li];
    if (preprocessor.Skip(code)) continue;
    for (size_t i = 0; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '(' || c == ')' || paren > 0) {
        // Braces/semicolons inside parens don't scope, but the text is
        // still part of any signature being accumulated.
        if (c == '(') ++paren;
        if (c == ')' && paren > 0) --paren;
        if (open_functions == 0) AppendCollapsed(c, &pending);
        continue;
      }
      if (c == '{') {
        OpenBrace open;
        open.col = i;
        open.line = static_cast<int>(li + 1);
        if (open_functions == 0) {
          std::string base_name;
          std::string qual_name;
          if (SignatureName(pending, &base_name, &qual_name)) {
            FunctionDef def;
            def.base_name = std::move(base_name);
            def.qual_name = std::move(qual_name);
            def.file_index = file_index;
            def.begin_line = static_cast<int>(li + 1);
            open.is_function = true;
            open.function_index = static_cast<int>(functions->size());
            ++open_functions;
            functions->push_back(std::move(def));
          }
        }
        stack.push_back(open);
        pending.clear();
        pending_line = 0;
        continue;
      }
      if (c == '}') {
        if (!stack.empty()) {
          const OpenBrace open = stack.back();
          stack.pop_back();
          if (open.is_function) {
            --open_functions;
            FunctionDef& def = (*functions)[open.function_index];
            def.end_line = static_cast<int>(li + 1);
            def.statements = ExtractStatements(file, open.line, open.col,
                                               def.end_line, i);
          }
        }
        pending.clear();
        pending_line = 0;
        continue;
      }
      if (open_functions > 0) continue;  // Bodies are handled separately.
      if (c == ';') {
        pending.clear();
        pending_line = 0;
        continue;
      }
      if (pending_line == 0 &&
          !std::isspace(static_cast<unsigned char>(c))) {
        pending_line = static_cast<int>(li + 1);
      }
      AppendCollapsed(c, &pending);
    }
    if (open_functions == 0 && paren == 0) AppendCollapsed('\n', &pending);
  }
}

void BuildIncludeClosure(Index* index) {
  std::map<std::string, int> by_rel;
  for (size_t i = 0; i < index->files.size(); ++i) {
    by_rel[index->files[i].rel_path] = static_cast<int>(i);
  }
  static const std::regex kIncludeRe(R"re(^\s*#\s*include\s*"([^"]+)")re");
  std::vector<std::vector<int>> edges(index->files.size());
  for (size_t i = 0; i < index->files.size(); ++i) {
    for (const std::string& code : index->files[i].code_lines) {
      std::smatch match;
      if (!std::regex_search(code, match, kIncludeRe)) continue;
      const std::string inc = match[1].str();
      // Project includes are written relative to a top-level dir (src/,
      // tools/, tests/); try each resolution in turn.
      for (const std::string& candidate :
           {inc, "src/" + inc, "tools/" + inc, "tests/" + inc,
            "bench/" + inc}) {
        const auto it = by_rel.find(candidate);
        if (it != by_rel.end()) {
          edges[i].push_back(it->second);
          break;
        }
      }
    }
  }
  index->reachable.resize(index->files.size());
  for (size_t i = 0; i < index->files.size(); ++i) {
    std::set<int>& seen = index->reachable[i];
    std::deque<int> queue = {static_cast<int>(i)};
    seen.insert(static_cast<int>(i));
    while (!queue.empty()) {
      const int at = queue.front();
      queue.pop_front();
      for (const int next : edges[at]) {
        if (seen.insert(next).second) queue.push_back(next);
      }
    }
  }
}

}  // namespace

Index BuildIndex(std::vector<SourceFile> files) {
  Index index;
  index.files = std::move(files);
  for (size_t i = 0; i < index.files.size(); ++i) {
    ExtractFunctions(index.files[i], static_cast<int>(i), &index.functions);
  }
  for (size_t i = 0; i < index.functions.size(); ++i) {
    index.by_base_name[index.functions[i].base_name].push_back(
        static_cast<int>(i));
  }
  BuildIncludeClosure(&index);
  return index;
}

}  // namespace bitpush::analysis
