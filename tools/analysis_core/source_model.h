// Shared source model for the bitpush static-analysis tools
// (tools/bitpush_lint, tools/bitpush_analyze).
//
// A file is split into per-line *code* text (string/char-literal contents
// and comments blanked out) and per-line *comment* text. The split lets
// token checks run on code without tripping over patterns quoted in string
// literals or prose, while annotation (waiver) parsing sees only comments.
// The lexer is a single pass over the whole file and tracks block
// comments, string / char literals, and raw string literals across line
// boundaries.
//
// LoadTree walks <root>/{src,tests,bench,tools}, skipping directories
// named "golden" (fixture snippets — including the deliberately-broken
// inputs of tests/golden/lint/ and tests/golden/analyze/ — must not count
// against the real tree), and returns the files sorted by relative path so
// every consumer reports findings in a stable order.

#ifndef BITPUSH_TOOLS_ANALYSIS_CORE_SOURCE_MODEL_H_
#define BITPUSH_TOOLS_ANALYSIS_CORE_SOURCE_MODEL_H_

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace bitpush::analysis {

struct SourceFile {
  std::string rel_path;  // Relative to the tree root, '/'-separated.
  std::string abs_path;
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;
  std::vector<std::string> comment_lines;
  bool is_header = false;
};

std::vector<std::string> SplitLines(const std::string& text);

// Populates code/comment channels (same length as `raw`, column-aligned,
// non-channel bytes blanked to spaces).
void LexFile(const std::vector<std::string>& raw,
             std::vector<std::string>* code_lines,
             std::vector<std::string>* comment_lines);

std::string Trim(const std::string& s);
bool StartsWith(const std::string& s, std::string_view prefix);

// Reads and lexes one file. Returns false (and sets *error) on I/O failure.
bool LoadFile(const std::filesystem::path& abs, const std::string& rel,
              SourceFile* out, std::string* error);

// Re-derives the code/comment channels after raw_lines were edited.
void Relex(SourceFile* file);

struct TreeLoadResult {
  std::vector<SourceFile> files;  // sorted by rel_path
  bool io_error = false;
  std::string io_error_message;
};

// Loads every *.h / *.cc under <root>/{src,tests,bench,tools}. `root` must
// contain at least one of the four directories.
TreeLoadResult LoadTree(const std::string& root);

// ---------------------------------------------------------------------------
// Annotation (waiver) parsing, shared syntax:
//
//   // <marker>: allow(<check-name>): <reason>
//
// The check-name vocabulary belongs to the calling tool; this parser only
// enforces the shape and the mandatory reason. Backtick-quoted mentions
// (`<marker>: ...`) are prose about the syntax, not annotations.

struct Annotation {
  int line = 0;  // 1-based.
  std::string check_name;
  std::string reason;
};

struct MalformedAnnotation {
  int line = 0;
  // When true the shape matched but the reason string was empty;
  // check_name holds the named check. When false the marker appeared but
  // the `allow(<check>): <reason>` shape did not parse.
  bool missing_reason = false;
  std::string check_name;
};

struct ParsedAnnotations {
  std::vector<Annotation> annotations;
  std::vector<MalformedAnnotation> malformed;
};

ParsedAnnotations ParseAnnotations(const SourceFile& file,
                                   const std::string& marker);

}  // namespace bitpush::analysis

#endif  // BITPUSH_TOOLS_ANALYSIS_CORE_SOURCE_MODEL_H_
