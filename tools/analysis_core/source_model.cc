#include "analysis_core/source_model.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>
#include <utility>

namespace bitpush::analysis {

namespace fs = std::filesystem;

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

void LexFile(const std::vector<std::string>& raw,
             std::vector<std::string>* code_lines,
             std::vector<std::string>* comment_lines) {
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // For raw strings: the )delim" terminator.

  for (const std::string& line : raw) {
    std::string code(line.size(), ' ');
    std::string comment(line.size(), ' ');
    size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            // Rest of the line is a comment.
            for (size_t j = i + 2; j < line.size(); ++j) {
              comment[j] = line[j];
            }
            i = line.size();
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            i += 2;
          } else if (c == 'R' && next == '"' &&
                     (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                     line[i - 1])) &&
                                 line[i - 1] != '_'))) {
            // Raw string literal: R"delim( ... )delim".
            size_t paren = line.find('(', i + 2);
            if (paren == std::string::npos) {
              // Malformed; treat rest of line as code.
              code[i] = c;
              ++i;
              break;
            }
            raw_delim = ")";
            raw_delim += line.substr(i + 2, paren - (i + 2));
            raw_delim += '"';
            code[i] = 'R';
            code[i + 1] = '"';
            state = State::kRawString;
            i = paren + 1;
          } else if (c == '"') {
            code[i] = c;
            state = State::kString;
            ++i;
          } else if (c == '\'') {
            // A quote directly after an identifier/digit character is a
            // C++14 digit separator (1'000'000), not a char literal.
            const bool separator =
                i > 0 && (std::isalnum(static_cast<unsigned char>(
                              line[i - 1])) ||
                          line[i - 1] == '_');
            code[i] = c;
            if (!separator) state = State::kChar;
            ++i;
          } else {
            code[i] = c;
            ++i;
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            i += 2;
          } else {
            comment[i] = c;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            i += 2;
          } else if (c == '"') {
            code[i] = c;
            state = State::kCode;
            ++i;
          } else {
            ++i;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            i += 2;
          } else if (c == '\'') {
            code[i] = c;
            state = State::kCode;
            ++i;
          } else {
            ++i;
          }
          break;
        case State::kRawString: {
          const size_t end = line.find(raw_delim, i);
          if (end == std::string::npos) {
            i = line.size();
          } else {
            state = State::kCode;
            i = end + raw_delim.size();
            if (i > 0) code[i - 1] = '"';
          }
          break;
        }
      }
    }
    // A string or char literal cannot span a physical line (raw strings
    // can); recover rather than poison the rest of the file.
    if (state == State::kString || state == State::kChar) state = State::kCode;
    code_lines->push_back(code);
    comment_lines->push_back(comment);
  }
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool LoadFile(const fs::path& abs, const std::string& rel,
              SourceFile* out, std::string* error) {
  std::ifstream in(abs, std::ios::binary);
  if (!in) {
    *error = "cannot read " + abs.string();
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out->rel_path = rel;
  out->abs_path = abs.string();
  out->raw_lines = SplitLines(buffer.str());
  out->is_header = rel.size() >= 2 && rel.compare(rel.size() - 2, 2, ".h") == 0;
  LexFile(out->raw_lines, &out->code_lines, &out->comment_lines);
  return true;
}

void Relex(SourceFile* file) {
  file->code_lines.clear();
  file->comment_lines.clear();
  LexFile(file->raw_lines, &file->code_lines, &file->comment_lines);
}

TreeLoadResult LoadTree(const std::string& root) {
  TreeLoadResult result;
  const char* const kTopDirs[] = {"src", "tests", "bench", "tools"};
  bool any_dir = false;
  for (const char* top : kTopDirs) {
    const fs::path dir = fs::path(root) / top;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    any_dir = true;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_directory() &&
          it->path().filename().string() == "golden") {
        // Fixture snippets (tests/golden/{lint,analyze}/ hold deliberately
        // broken inputs) must not count against the real tree.
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".cc" && ext != ".h") continue;
      const std::string rel =
          fs::relative(it->path(), fs::path(root)).generic_string();
      SourceFile file;
      std::string error;
      if (!LoadFile(it->path(), rel, &file, &error)) {
        result.io_error = true;
        result.io_error_message = error;
        return result;
      }
      result.files.push_back(std::move(file));
    }
  }
  if (!any_dir) {
    result.io_error = true;
    result.io_error_message =
        "no src/, tests/, bench/, or tools/ directory under " + root;
    return result;
  }
  std::sort(result.files.begin(), result.files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel_path < b.rel_path;
            });
  return result;
}

ParsedAnnotations ParseAnnotations(const SourceFile& file,
                                   const std::string& marker) {
  ParsedAnnotations out;
  const std::regex waiver_re(
      marker + R"(:\s*allow\(([A-Za-z0-9_-]+)\)\s*:\s*(.*))");
  // Backtick-quoted mentions (`<marker>: ...`) are prose about the syntax,
  // not annotations; docs and the tools' own comments use them.
  const std::regex marker_re("(^|[^`])" + marker);
  for (size_t i = 0; i < file.comment_lines.size(); ++i) {
    const std::string& comment = file.comment_lines[i];
    if (!std::regex_search(comment, marker_re)) continue;
    std::smatch match;
    if (!std::regex_search(comment, match, waiver_re)) {
      out.malformed.push_back({static_cast<int>(i + 1), false, ""});
      continue;
    }
    const std::string reason = Trim(match[2].str());
    if (reason.empty()) {
      out.malformed.push_back(
          {static_cast<int>(i + 1), true, match[1].str()});
      continue;
    }
    out.annotations.push_back(
        {static_cast<int>(i + 1), match[1].str(), reason});
  }
  return out;
}

}  // namespace bitpush::analysis
