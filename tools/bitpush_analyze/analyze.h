// Cross-TU dataflow analysis for the bitpush tree.
//
// `bitpush_lint` (tools/bitpush_lint) enforces line-level invariants; this
// tool checks the two *whole-program* contracts the paper's correctness
// story rests on, over a call graph built from the shared declaration
// index (tools/analysis_core):
//
//   privacy-taint       every disclosed client bit must flow through
//                       randomized-response perturbation before reaching a
//                       wire / journal / obs sink (paper §1.1: the one
//                       disclosed bit per client is the perturbed bit,
//                       never the raw one). Sources are client-value
//                       encodes and raw bit reads (SelectValue,
//                       FixedPointCodec::Bit, codec Encode/EncodeAll,
//                       BuildReportBatch); sanitizers are the metered
//                       perturbation points (RandomizedResponse::Apply /
//                       ApplyToWords, PerturbBatch, DrawFlip, secure-agg
//                       masking); sinks are wire encoders, journal record
//                       codecs/appends, and obs event emission/export. A
//                       source→sink path not dominated by a sanitizer is a
//                       finding, with the offending call chain printed.
//                       The pass also enforces charge-before-disclosure: a
//                       function that both charges the privacy meter
//                       (TryChargeBit) and perturbs/constructs a report
//                       must charge first.
//   determinism-flow    every RNG must descend from the seeded fork roots
//                       so replay and shard determinism hold
//                       (docs/PERSISTENCE.md, docs/SHARDING.md): flags Rng
//                       constructions whose seed expression references no
//                       seed/fork lineage, random draws inside kernel code
//                       (src/kernels/ is contractually randomness-free
//                       except the sanctioned scalar source shared.cc),
//                       and reuse of an RNG stream across a replay
//                       boundary (Restart/recovery) without reseeding.
//
// Findings are reported for src/ only: tests/, bench/, and tools/ are
// harness roots that legitimately seed from literals and print output, but
// they still contribute definitions to the call graph so cross-TU paths
// resolve.
//
// Waivers mirror the linter: `bitpush-analyze: allow(<check>): <reason>`
// inside a // comment. privacy-taint is a whole-TU property, so its
// waivers are file-scoped; determinism-flow waivers cover lines L and L+1.
// The reason is mandatory, waivers are counted and printed as a budget,
// and malformed annotations are findings (check name "waiver-syntax").

#ifndef BITPUSH_TOOLS_BITPUSH_ANALYZE_ANALYZE_H_
#define BITPUSH_TOOLS_BITPUSH_ANALYZE_ANALYZE_H_

#include <string>
#include <vector>

namespace bitpush::analyze {

enum class Check {
  kPrivacyTaint,
  kDeterminismFlow,
  // Malformed or unknown `bitpush-analyze:` annotations. Always enabled.
  kWaiverSyntax,
};

// Canonical check name as used in waiver comments and --checks.
std::string CheckName(Check check);
// Returns true and sets *out when `name` is a known check name.
bool ParseCheckName(const std::string& name, Check* out);

struct Finding {
  std::string path;  // Relative to the analysis root.
  int line = 0;      // 1-based.
  Check check = Check::kPrivacyTaint;
  // For privacy-taint path findings the message embeds the call chain:
  // "... path: <file:line (what)> -> ... -> <file:line (sink)>".
  std::string message;
};

struct Waiver {
  std::string path;
  int line = 0;
  Check check = Check::kPrivacyTaint;
  std::string reason;
};

struct Options {
  // Empty means every check. "waiver-syntax" is always enabled.
  std::vector<Check> checks;
};

struct Result {
  std::vector<Finding> findings;  // Unsuppressed violations, sorted.
  std::vector<Waiver> waivers;    // The waiver budget actually in use.
  int files_scanned = 0;
  int functions_indexed = 0;
  bool io_error = false;
  std::string io_error_message;
};

// Analyzes every *.h / *.cc under <root>/{src,tests,bench,tools} (same
// walk as bitpush_lint: directories named "golden" are skipped).
Result RunAnalyze(const std::string& root, const Options& options);

// One "path:line: [check] message" line per finding, sorted, followed by a
// one-line summary with the waiver budget and index size.
std::string FormatReport(const Result& result);

// One line per waiver: "path:line: allow(check): reason".
std::string FormatWaiverReport(const Result& result);

}  // namespace bitpush::analyze

#endif  // BITPUSH_TOOLS_BITPUSH_ANALYZE_ANALYZE_H_
