#include "bitpush_analyze/analyze.h"

#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis_core/index.h"
#include "analysis_core/source_model.h"

namespace bitpush::analyze {
namespace {

using analysis::FunctionDef;
using analysis::Index;
using analysis::SourceFile;
using analysis::StartsWith;
using analysis::Statement;

// ---------------------------------------------------------------------------
// Check names.

struct CheckNameEntry {
  Check check;
  const char* name;
};

constexpr CheckNameEntry kCheckNames[] = {
    {Check::kPrivacyTaint, "privacy-taint"},
    {Check::kDeterminismFlow, "determinism-flow"},
    {Check::kWaiverSyntax, "waiver-syntax"},
};

// ---------------------------------------------------------------------------
// Token model of the privacy-taint pass (see analyze.h and
// docs/STATIC_ANALYSIS.md for the prose version).

// Sources: expressions that read raw client values or raw codeword bits.
const std::regex& SourceRe() {
  static const std::regex re(
      R"(\bSelectValue\s*\(|(\.|->)\s*Encode(All)?\s*\(|\bFixedPointCodec\s*::\s*Bit\s*\(|\bBuildReportBatch\s*\()");
  return re;
}

// Sanitizers: the randomized-response / masking perturbation points.
const std::regex& SanitizerRe() {
  static const std::regex re(
      R"((\.|->)\s*Apply(ToWords)?\s*\(|\bRandomizedResponse\s*::\s*Apply|\bPerturbBatch\s*\(|\bDrawFlip\s*\(|\bMaskBatch\s*\(|(\.|->)\s*Mask\s*\()");
  return re;
}

// Sinks: anything that lets a bit leave the process (wire, journal, obs).
struct SinkRule {
  const char* pattern;
  const char* label;
};

const std::vector<std::pair<std::regex, std::string>>& SinkRules() {
  static const auto* rules = [] {
    auto* r = new std::vector<std::pair<std::regex, std::string>>;
    const SinkRule raw[] = {
        {R"(\bEncode(BitReport|ReportBatch|BitRequest|RequestBatch|CommunicationStats)\s*\()",
         "wire encoder"},
        {R"(\bEncodeShard(TickFrame|Metrics)\s*\()", "shard wire encoder"},
        {R"(\bEncode[A-Za-z0-9_]+Record\s*\()", "journal record codec"},
        {R"((\.|->)\s*AppendRecord\s*\()", "journal append"},
        {R"(\bEmitEvent\s*\()", "obs event emission"},
        {R"(\b(PrometheusText|MetricsJsonl|DeterministicMetricsSnapshot|ChromeTraceJson|EventsJsonl|DeterministicEventsSnapshot|AlertTimelineText)\s*\()",
         "obs exporter"},
    };
    for (const SinkRule& rule : raw) {
      r->emplace_back(std::regex(rule.pattern), rule.label);
    }
    return r;
  }();
  return *rules;
}

// Charge / disclosure markers for the charge-before-disclosure rule.
const std::regex& ChargeRe() {
  static const std::regex re(R"(\bTryChargeBit\s*\()");
  return re;
}
const std::regex& DisclosureRe() {
  static const std::regex re(
      R"((\.|->)\s*Apply(ToWords)?\s*\(|\bPerturbBatch\s*\(|\bBitReport\s*\{)");
  return re;
}

// ---------------------------------------------------------------------------
// Statement preprocessing: classify each statement's direct tokens once and
// resolve its callees once, so the inter-procedural fixpoint below is
// regex-free.

struct StmtInfo {
  int line = 0;
  bool source = false;
  std::string source_what;
  bool sanitizer = false;
  bool sink = false;
  std::string sink_what;
  bool charge = false;
  bool disclosure = false;
  std::vector<int> callees;  // function indices, include-closure preferred
};

struct FnInfo {
  int function_index = -1;
  bool in_src = false;
  std::vector<StmtInfo> stmts;
};

bool IsCallKeyword(const std::string& word) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",    "while",   "switch",  "catch",  "return",
      "sizeof", "new",    "delete",  "else",    "do",     "alignof",
      "decltype", "noexcept", "defined", "static_assert", "assert",
      "throw"};
  return kKeywords.count(word) > 0;
}

// Matched tokens end at the call's '(' — drop it for readable messages.
std::string TidyToken(std::string token) {
  while (!token.empty() &&
         (token.back() == '(' || token.back() == '{' ||
          std::isspace(static_cast<unsigned char>(token.back())))) {
    token.pop_back();
  }
  return token;
}

std::string FirstMatch(const std::string& text, const std::regex& re) {
  std::smatch match;
  if (std::regex_search(text, match, re)) return TidyToken(match[0].str());
  return "";
}

// Resolves the callees a statement can reach. A base name with several
// definitions prefers candidates whose file (or its header/impl sibling)
// is in the caller file's include closure; with no reachable candidate it
// falls back to every definition of the name (conservative).
std::vector<int> ResolveCallees(
    const Index& index, const std::map<std::string, int>& file_by_rel,
    int caller_file, const std::string& text) {
  std::vector<int> out;
  static const std::regex kCallRe(R"(([A-Za-z_][A-Za-z0-9_]*)\s*\()");
  std::set<std::string> seen;
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kCallRe);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    if (IsCallKeyword(name) || !seen.insert(name).second) continue;
    const auto found = index.by_base_name.find(name);
    if (found == index.by_base_name.end()) continue;
    std::vector<int> reachable_candidates;
    for (const int fi : found->second) {
      const int candidate_file = index.functions[fi].file_index;
      bool reachable =
          index.reachable[caller_file].count(candidate_file) > 0;
      if (!reachable) {
        // A call usually resolves to a definition in the .cc paired with
        // an included .h; treat the sibling as reachable too.
        std::string sibling = index.files[candidate_file].rel_path;
        if (sibling.size() > 3 &&
            sibling.compare(sibling.size() - 3, 3, ".cc") == 0) {
          sibling.replace(sibling.size() - 3, 3, ".h");
          const auto sib = file_by_rel.find(sibling);
          reachable = sib != file_by_rel.end() &&
                      index.reachable[caller_file].count(sib->second) > 0;
        }
      }
      if (reachable) reachable_candidates.push_back(fi);
    }
    const std::vector<int>& chosen =
        reachable_candidates.empty() ? found->second : reachable_candidates;
    out.insert(out.end(), chosen.begin(), chosen.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<FnInfo> PreprocessFunctions(const Index& index) {
  std::map<std::string, int> file_by_rel;
  for (size_t i = 0; i < index.files.size(); ++i) {
    file_by_rel[index.files[i].rel_path] = static_cast<int>(i);
  }
  std::vector<FnInfo> infos;
  infos.reserve(index.functions.size());
  for (size_t fi = 0; fi < index.functions.size(); ++fi) {
    const FunctionDef& fn = index.functions[fi];
    FnInfo info;
    info.function_index = static_cast<int>(fi);
    info.in_src =
        StartsWith(index.files[fn.file_index].rel_path, "src/");
    for (const Statement& stmt : fn.statements) {
      StmtInfo si;
      si.line = stmt.line;
      si.source_what = FirstMatch(stmt.text, SourceRe());
      si.source = !si.source_what.empty();
      si.sanitizer = std::regex_search(stmt.text, SanitizerRe());
      for (const auto& [re, label] : SinkRules()) {
        std::smatch match;
        if (std::regex_search(stmt.text, match, re)) {
          si.sink = true;
          si.sink_what = label + (": " + TidyToken(match[0].str()));
          break;
        }
      }
      si.charge = std::regex_search(stmt.text, ChargeRe());
      si.disclosure = std::regex_search(stmt.text, DisclosureRe());
      si.callees =
          ResolveCallees(index, file_by_rel, fn.file_index, stmt.text);
      info.stmts.push_back(std::move(si));
    }
    infos.push_back(std::move(info));
  }
  return infos;
}

// ---------------------------------------------------------------------------
// Privacy-taint pass: intra-procedural line-ordered walk + inter-procedural
// function summaries iterated to fixpoint.

struct Summary {
  bool taints = false;     // Live (unsanitized) taint at function end.
  bool sanitizes = false;  // Applied a sanitizer and ended clean.
  bool sinks = false;      // Hit a sink before any sanitizer.
  std::string taint_origin;  // "path:line (what)" provenance chain.
  std::string sink_origin;

  friend bool operator==(const Summary&, const Summary&) = default;
};

std::string Truncate(std::string text, size_t limit = 240) {
  if (text.size() > limit) {
    text.resize(limit);
    text += "...";
  }
  return text;
}

std::string Loc(const Index& index, const FunctionDef& fn, int line) {
  return index.files[fn.file_index].rel_path + ":" + std::to_string(line);
}

// Walks one function. When `findings` is non-null (final pass), emits
// tainted-sink and charge-after-disclosure findings; otherwise only the
// summary is computed.
Summary WalkFunction(const Index& index, const FnInfo& info,
                     const std::vector<Summary>& summaries,
                     std::vector<Finding>* findings) {
  const FunctionDef& fn = index.functions[info.function_index];
  Summary out;
  bool tainted = false;
  std::string origin;
  bool saw_sanitizer = false;
  int first_charge = 0;
  int first_disclosure = 0;

  for (const StmtInfo& stmt : info.stmts) {
    // 1. Source events (direct token first, then tainting callees).
    if (stmt.source) {
      tainted = true;
      origin = Loc(index, fn, stmt.line) + " (" +
               analysis::Trim(stmt.source_what) + ")";
    } else {
      for (const int callee : stmt.callees) {
        if (!summaries[callee].taints) continue;
        tainted = true;
        origin = Truncate(Loc(index, fn, stmt.line) + " (call to " +
                          index.functions[callee].base_name + " -> " +
                          summaries[callee].taint_origin + ")");
        break;
      }
    }
    // 2. Sanitizer events clear the taint (a same-statement source is the
    //    argument of the sanitizer — rr.Apply(FixedPointCodec::Bit(...))).
    bool sanitizer = stmt.sanitizer;
    for (const int callee : stmt.callees) {
      if (summaries[callee].sanitizes) {
        sanitizer = true;
        break;
      }
    }
    if (sanitizer) {
      tainted = false;
      saw_sanitizer = true;
    }
    // 3. Sink events.
    std::string sink_desc;
    if (stmt.sink) {
      sink_desc = stmt.sink_what;
    } else {
      for (const int callee : stmt.callees) {
        if (!summaries[callee].sinks) continue;
        sink_desc = Truncate("call to " + index.functions[callee].base_name +
                             " -> " + summaries[callee].sink_origin);
        break;
      }
    }
    if (!sink_desc.empty()) {
      if (tainted && findings != nullptr) {
        findings->push_back(
            {index.files[fn.file_index].rel_path, stmt.line,
             Check::kPrivacyTaint,
             Truncate("raw client value reaches a disclosure sink without "
                      "randomized-response perturbation; taint: " +
                          origin + " -> sink at " +
                          Loc(index, fn, stmt.line) + " (" + sink_desc + ")",
                      400)});
      }
      if (!saw_sanitizer && !out.sinks) {
        out.sinks = true;
        out.sink_origin =
            Loc(index, fn, stmt.line) + " (" + sink_desc + ")";
      }
    }
    if (stmt.charge && first_charge == 0) first_charge = stmt.line;
    if (stmt.disclosure && first_disclosure == 0) {
      first_disclosure = stmt.line;
    }
  }

  if (tainted) {
    out.taints = true;
    out.taint_origin = origin;
  } else if (saw_sanitizer) {
    out.sanitizes = true;
  }
  if (findings != nullptr && first_charge != 0 && first_disclosure != 0 &&
      first_disclosure < first_charge) {
    findings->push_back(
        {index.files[fn.file_index].rel_path, first_disclosure,
         Check::kPrivacyTaint,
         "disclosure happens before the privacy-meter charge "
         "(TryChargeBit on line " +
             std::to_string(first_charge) +
             "); the paper's one-bit contract requires the charge to gate "
             "the perturbation"});
  }
  return out;
}

void RunPrivacyTaint(const Index& index, const std::vector<FnInfo>& infos,
                     std::vector<Finding>* findings) {
  std::vector<Summary> summaries(index.functions.size());
  // Fixpoint over summaries: flags propagate through at most one call
  // chain link per iteration; real chains are shallow, so cap generously.
  for (int iteration = 0; iteration < 20; ++iteration) {
    bool changed = false;
    for (const FnInfo& info : infos) {
      Summary next = WalkFunction(index, info, summaries, nullptr);
      if (!(next == summaries[info.function_index])) {
        summaries[info.function_index] = std::move(next);
        changed = true;
      }
    }
    if (!changed) break;
  }
  // Final pass with findings, src/ only: tests, bench, and tools are
  // harness roots (they build synthetic reports and print), but their
  // definitions already contributed to the summaries above.
  for (const FnInfo& info : infos) {
    if (!info.in_src) continue;
    WalkFunction(index, info, summaries, findings);
  }
}

// ---------------------------------------------------------------------------
// Determinism-flow pass.

const std::regex& RngCtorRe() {
  static const std::regex re(
      R"((^|[^:A-Za-z0-9_])Rng\s*[({]|\bRng\s+[A-Za-z_][A-Za-z0-9_]*\s*[({])");
  return re;
}
const std::regex& SeedLineageRe() {
  static const std::regex re(R"([Ss]eed|\bFork\b)");
  return re;
}
const std::regex& DrawRe() {
  static const std::regex re(
      R"(([A-Za-z_][A-Za-z0-9_]*(?:(?:\.|->)[A-Za-z_][A-Za-z0-9_]*)*)\s*(?:\.|->)\s*(NextUint64|NextDouble|NextBelow|NextBernoulli|NextBit|DrawFlip)\s*\()");
  return re;
}
const std::regex& KernelDrawRe() {
  static const std::regex re(
      R"((\.|->)\s*(NextUint64|NextDouble|NextBelow|NextBernoulli|NextBit|Fork)\s*\(|\bDrawFlip\s*\(|\bFillBernoulliWords\s*\()");
  return re;
}
const std::regex& ReplayBoundaryRe() {
  static const std::regex re(
      R"(\b(Restart|Recover|Reopen|ReplayJournal)[A-Za-z0-9_]*\s*\()");
  return re;
}

bool RngAllowlisted(const std::string& rel_path) {
  // The Rng implementation itself (Fork() forks from its own stream).
  return StartsWith(rel_path, "src/rng/");
}

bool KernelDrawAllowlisted(const std::string& rel_path) {
  // shared.cc IS the sanctioned scalar randomness source the perturbation
  // kernels consume precomputed words from; kernels.h declares it.
  return rel_path == "src/kernels/shared.cc" ||
         rel_path == "src/kernels/kernels.h";
}

void CheckUnforkedRngStatement(const Index& index, const FunctionDef& fn,
                               const Statement& stmt,
                               std::vector<Finding>* findings) {
  if (!std::regex_search(stmt.text, RngCtorRe())) return;
  if (std::regex_search(stmt.text, SeedLineageRe())) return;
  findings->push_back(
      {index.files[fn.file_index].rel_path, stmt.line,
       Check::kDeterminismFlow,
       "Rng constructed from an expression with no seed/fork lineage; "
       "every stream must descend from the seeded fork roots (campaign "
       "seed, ShardSeed, Rng::Fork) so replay and shard determinism hold"});
}

void CheckRngReuseAcrossReplay(const Index& index, const FunctionDef& fn,
                               const std::vector<Statement>& stmts,
                               std::vector<Finding>* findings) {
  std::set<std::string> drawn_before;
  std::set<std::string> reseeded_after;
  std::set<std::string> reported;
  bool boundary_seen = false;
  int boundary_line = 0;
  static const std::regex kReseedRhsRe(R"(\bRng\s*\(|(\.|->)\s*Fork\s*\()");
  for (const Statement& stmt : stmts) {
    // Reseeds: `recv = Rng(...)` or `recv = x.Fork()`.
    if (std::regex_search(stmt.text, kReseedRhsRe)) {
      static const std::regex kAssignRe(
          R"(([A-Za-z_][A-Za-z0-9_]*(?:(?:\.|->)[A-Za-z_][A-Za-z0-9_]*)*)\s*=)");
      std::smatch match;
      if (std::regex_search(stmt.text, match, kAssignRe)) {
        const std::string receiver = match[1].str();
        if (boundary_seen) {
          reseeded_after.insert(receiver);
        } else {
          drawn_before.erase(receiver);
        }
      }
    }
    if (std::regex_search(stmt.text, ReplayBoundaryRe())) {
      boundary_seen = true;
      boundary_line = stmt.line;
    }
    for (auto it = std::sregex_iterator(stmt.text.begin(), stmt.text.end(),
                                        DrawRe());
         it != std::sregex_iterator(); ++it) {
      const std::string receiver = (*it)[1].str();
      if (!boundary_seen) {
        drawn_before.insert(receiver);
        continue;
      }
      if (drawn_before.count(receiver) > 0 &&
          reseeded_after.count(receiver) == 0 &&
          reported.insert(receiver).second) {
        findings->push_back(
            {index.files[fn.file_index].rel_path, stmt.line,
             Check::kDeterminismFlow,
             "RNG stream `" + receiver +
                 "` is drawn both before and after the replay boundary on "
                 "line " +
                 std::to_string(boundary_line) +
                 " without reseeding; a replayed run would resume a "
                 "diverged stream"});
      }
    }
  }
}

void RunDeterminismFlow(const Index& index,
                        std::vector<Finding>* findings) {
  // Per-file map of lines covered by an indexed function body, so the
  // namespace-scope scan below doesn't double-report statement findings.
  std::vector<std::vector<bool>> in_function(index.files.size());
  for (size_t i = 0; i < index.files.size(); ++i) {
    in_function[i].assign(index.files[i].code_lines.size() + 2, false);
  }
  for (const FunctionDef& fn : index.functions) {
    auto& lines = in_function[fn.file_index];
    for (int l = fn.begin_line;
         l <= fn.end_line && l < static_cast<int>(lines.size()); ++l) {
      lines[l] = true;
    }
  }

  for (const FunctionDef& fn : index.functions) {
    const std::string& rel = index.files[fn.file_index].rel_path;
    if (!StartsWith(rel, "src/")) continue;
    if (!RngAllowlisted(rel)) {
      for (const Statement& stmt : fn.statements) {
        CheckUnforkedRngStatement(index, fn, stmt, findings);
      }
    }
    CheckRngReuseAcrossReplay(index, fn, fn.statements, findings);
  }

  for (size_t fi = 0; fi < index.files.size(); ++fi) {
    const SourceFile& file = index.files[fi];
    if (!StartsWith(file.rel_path, "src/")) continue;
    // Kernel purity: line-level over the whole file.
    if (StartsWith(file.rel_path, "src/kernels/") &&
        !KernelDrawAllowlisted(file.rel_path)) {
      for (size_t i = 0; i < file.code_lines.size(); ++i) {
        if (std::regex_search(file.code_lines[i], KernelDrawRe())) {
          findings->push_back(
              {file.rel_path, static_cast<int>(i + 1),
               Check::kDeterminismFlow,
               "random draw inside kernel code; kernels are contractually "
               "randomness-free (the sanctioned scalar source is "
               "src/kernels/shared.cc, consumed as precomputed words)"});
        }
      }
    }
    // Namespace-scope Rng constructions (statics) outside any function.
    if (RngAllowlisted(file.rel_path)) continue;
    for (size_t i = 0; i < file.code_lines.size(); ++i) {
      if (in_function[fi][i + 1]) continue;
      const std::string& code = file.code_lines[i];
      if (!std::regex_search(code, RngCtorRe())) continue;
      // The seed expression may wrap to the following lines.
      std::string window = code;
      for (size_t j = i + 1; j < file.code_lines.size() && j < i + 3; ++j) {
        window += '\n';
        window += file.code_lines[j];
      }
      if (std::regex_search(window, SeedLineageRe())) continue;
      findings->push_back(
          {file.rel_path, static_cast<int>(i + 1), Check::kDeterminismFlow,
           "Rng constructed from an expression with no seed/fork lineage; "
           "every stream must descend from the seeded fork roots (campaign "
           "seed, ShardSeed, Rng::Fork) so replay and shard determinism "
           "hold"});
    }
  }
}

// ---------------------------------------------------------------------------
// Waivers.

struct ParsedWaivers {
  std::vector<Waiver> waivers;
  std::vector<Finding> syntax_findings;
};

ParsedWaivers ParseWaivers(const SourceFile& file) {
  ParsedWaivers out;
  const analysis::ParsedAnnotations parsed =
      analysis::ParseAnnotations(file, "bitpush-analyze");
  for (const analysis::MalformedAnnotation& bad : parsed.malformed) {
    if (bad.missing_reason) {
      out.syntax_findings.push_back(
          {file.rel_path, bad.line, Check::kWaiverSyntax,
           "waiver for `" + bad.check_name +
               "` is missing its reason string"});
    } else {
      out.syntax_findings.push_back(
          {file.rel_path, bad.line, Check::kWaiverSyntax,
           "malformed bitpush-analyze annotation; expected "
           "`// bitpush-analyze: allow(<check>): <reason>`"});
    }
  }
  for (const analysis::Annotation& annotation : parsed.annotations) {
    Check check;
    if (!ParseCheckName(annotation.check_name, &check) ||
        check == Check::kWaiverSyntax) {
      out.syntax_findings.push_back(
          {file.rel_path, annotation.line, Check::kWaiverSyntax,
           "unknown analyze check `" + annotation.check_name +
               "` in waiver"});
      continue;
    }
    out.waivers.push_back(
        {file.rel_path, annotation.line, check, annotation.reason});
  }
  return out;
}

// privacy-taint is a whole-TU property (the taint may originate lines away
// from the sink), so its waivers are file-scoped; determinism-flow waivers
// cover lines L and L+1 like the linter's.
bool IsSuppressed(const Finding& finding, const std::vector<Waiver>& waivers) {
  for (const Waiver& waiver : waivers) {
    if (waiver.check != finding.check || waiver.path != finding.path) continue;
    if (finding.check == Check::kPrivacyTaint) return true;
    if (finding.line == waiver.line || finding.line == waiver.line + 1) {
      return true;
    }
  }
  return false;
}

bool CheckEnabled(const Options& options, Check check) {
  if (check == Check::kWaiverSyntax) return true;
  if (options.checks.empty()) return true;
  return std::find(options.checks.begin(), options.checks.end(), check) !=
         options.checks.end();
}

}  // namespace

std::string CheckName(Check check) {
  for (const CheckNameEntry& entry : kCheckNames) {
    if (entry.check == check) return entry.name;
  }
  return "unknown";
}

bool ParseCheckName(const std::string& name, Check* out) {
  for (const CheckNameEntry& entry : kCheckNames) {
    if (name == entry.name) {
      *out = entry.check;
      return true;
    }
  }
  return false;
}

Result RunAnalyze(const std::string& root, const Options& options) {
  Result result;
  analysis::TreeLoadResult tree = analysis::LoadTree(root);
  if (tree.io_error) {
    result.io_error = true;
    result.io_error_message = std::move(tree.io_error_message);
    return result;
  }
  const Index index = analysis::BuildIndex(std::move(tree.files));
  result.files_scanned = static_cast<int>(index.files.size());
  result.functions_indexed = static_cast<int>(index.functions.size());

  std::vector<Finding> raw_findings;
  std::vector<Waiver> all_waivers;
  for (const SourceFile& file : index.files) {
    ParsedWaivers parsed = ParseWaivers(file);
    for (Finding& finding : parsed.syntax_findings) {
      raw_findings.push_back(std::move(finding));
    }
    for (Waiver& waiver : parsed.waivers) {
      all_waivers.push_back(std::move(waiver));
    }
  }

  if (CheckEnabled(options, Check::kPrivacyTaint)) {
    const std::vector<FnInfo> infos = PreprocessFunctions(index);
    RunPrivacyTaint(index, infos, &raw_findings);
  }
  if (CheckEnabled(options, Check::kDeterminismFlow)) {
    RunDeterminismFlow(index, &raw_findings);
  }

  for (Finding& finding : raw_findings) {
    if (IsSuppressed(finding, all_waivers)) continue;
    result.findings.push_back(std::move(finding));
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return CheckName(a.check) < CheckName(b.check);
            });
  result.waivers = std::move(all_waivers);
  std::sort(result.waivers.begin(), result.waivers.end(),
            [](const Waiver& a, const Waiver& b) {
              if (a.path != b.path) return a.path < b.path;
              return a.line < b.line;
            });
  return result;
}

std::string FormatReport(const Result& result) {
  std::ostringstream out;
  for (const Finding& finding : result.findings) {
    out << finding.path << ":" << finding.line << ": ["
        << CheckName(finding.check) << "] " << finding.message << "\n";
  }
  out << "bitpush_analyze: " << result.findings.size() << " finding(s), "
      << result.waivers.size() << " waiver(s) in budget, "
      << result.files_scanned << " file(s) scanned, "
      << result.functions_indexed << " function(s) indexed\n";
  return out.str();
}

std::string FormatWaiverReport(const Result& result) {
  std::ostringstream out;
  for (const Waiver& waiver : result.waivers) {
    out << waiver.path << ":" << waiver.line << ": allow("
        << CheckName(waiver.check) << "): " << waiver.reason << "\n";
  }
  out << result.waivers.size() << " waiver(s) in budget\n";
  return out.str();
}

}  // namespace bitpush::analyze
