// bitpush_analyze CLI. See analyze.h for the pass catalogue and
// docs/STATIC_ANALYSIS.md ("Dataflow passes") for rationale and waiver
// policy.
//
// Usage:
//   bitpush_analyze [--root=DIR] [--checks=a,b] [--list-waivers]
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O error.

#include <cstdio>
#include <string>
#include <vector>

#include "bitpush_analyze/analyze.h"

namespace {

bool ConsumeFlag(const std::string& arg, const std::string& name,
                 std::string* value) {
  const std::string prefix = name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bitpush_analyze [--root=DIR] [--checks=c1,c2,...] "
               "[--list-waivers]\n"
               "checks: privacy-taint determinism-flow\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool list_waivers = false;
  bitpush::analyze::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ConsumeFlag(arg, "--root", &value)) {
      root = value;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (ConsumeFlag(arg, "--checks", &value)) {
      size_t begin = 0;
      while (begin <= value.size()) {
        size_t comma = value.find(',', begin);
        if (comma == std::string::npos) comma = value.size();
        const std::string name = value.substr(begin, comma - begin);
        begin = comma + 1;
        if (name.empty()) continue;
        bitpush::analyze::Check check;
        if (!bitpush::analyze::ParseCheckName(name, &check)) {
          std::fprintf(stderr, "bitpush_analyze: unknown check `%s`\n",
                       name.c_str());
          return Usage();
        }
        options.checks.push_back(check);
      }
    } else if (arg == "--list-waivers") {
      list_waivers = true;
    } else {
      return Usage();
    }
  }

  const bitpush::analyze::Result result =
      bitpush::analyze::RunAnalyze(root, options);
  if (result.io_error) {
    std::fprintf(stderr, "bitpush_analyze: %s\n",
                 result.io_error_message.c_str());
    return 2;
  }
  if (list_waivers) {
    std::fputs(bitpush::analyze::FormatWaiverReport(result).c_str(), stdout);
  }
  std::fputs(bitpush::analyze::FormatReport(result).c_str(), stdout);
  return result.findings.empty() ? 0 : 1;
}
