// Post-mortem doctor: replays a campaign's durable state directory and its
// observability dumps (events JSONL, metrics text) into one human-readable
// report — the artifact an operator reads after a crash instead of
// spelunking raw journals.
//
//   bitpush_doctor --state_dir=/tmp/campaign.state
//                  --events=events.jsonl --metrics=metrics.prom
//   bitpush_doctor --validate_events=events.jsonl
//
// Report sections (each emitted only when its input is present):
//   journal   — record count, type histogram, torn-tail verdict
//   events    — flight-recorder timeline (stable stream first)
//   alerts    — fired/resolved alert transitions from the event stream
//   shards    — per-shard loss/recovery attribution, slowest shard named
//   metrics   — the bitpush_alert_state gauge family from the metrics dump
//
// --validate_events is the CI mode: every line of the events JSONL must
// parse as a standalone JSON object (obs::JsonIsWellFormed); exit status 1
// on the first malformed line.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "federated/shard/shard.h"
#include "obs/export.h"
#include "persist/journal.h"
#include "util/flags.h"

namespace bitpush {
namespace {

bool ReadFileToString(const std::string& path, std::string* out,
                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = path + ": cannot open";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Minimal field extraction from one line of our own EventsJsonl output.
// This is not a general JSON parser — it relies on the exporter's flat,
// one-object-per-line shape (validated separately by JsonIsWellFormed).
std::string JsonStringField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t start = line.find(needle);
  if (start == std::string::npos) return "";
  const size_t begin = start + needle.size();
  std::string out;
  for (size_t i = begin; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      out += line[++i];
      continue;
    }
    if (line[i] == '"') return out;
    out += line[i];
  }
  return out;
}

int64_t JsonIntField(const std::string& line, const std::string& key,
                     int64_t fallback) {
  const std::string needle = "\"" + key + "\":";
  const size_t start = line.find(needle);
  if (start == std::string::npos) return fallback;
  return std::strtoll(line.c_str() + start + needle.size(), nullptr, 10);
}

const char* JournalRecordTypeName(JournalRecordType type) {
  switch (type) {
    case JournalRecordType::kQueryStarted:
      return "query_started";
    case JournalRecordType::kCohortAssigned:
      return "cohort_assigned";
    case JournalRecordType::kMeterCharge:
      return "meter_charge";
    case JournalRecordType::kReportAccepted:
      return "report_accepted";
    case JournalRecordType::kRoundClosed:
      return "round_closed";
    case JournalRecordType::kQueryFinished:
      return "query_finished";
    case JournalRecordType::kCampaignTick:
      return "campaign_tick";
    case JournalRecordType::kResilienceEvent:
      return "resilience_event";
  }
  return "unknown";
}

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return static_cast<bool>(in);
}

// CI mode: every non-empty line must be a standalone well-formed JSON
// value. Returns the process exit status.
int ValidateEvents(const std::string& path) {
  std::string text;
  std::string error;
  if (!ReadFileToString(path, &text, &error)) {
    std::fprintf(stderr, "bitpush_doctor: %s\n", error.c_str());
    return EXIT_FAILURE;
  }
  int64_t validated = 0;
  const std::vector<std::string> lines = SplitLines(text);
  for (size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    if (!obs::JsonIsWellFormed(lines[i], &error)) {
      std::fprintf(stderr, "bitpush_doctor: %s line %zu: %s\n", path.c_str(),
                   i + 1, error.c_str());
      return EXIT_FAILURE;
    }
    ++validated;
  }
  std::printf("events ok: %lld well-formed JSONL line(s) in %s\n",
              static_cast<long long>(validated), path.c_str());
  return EXIT_SUCCESS;
}

void AppendJournalSection(const std::string& state_dir, std::string* report) {
  const std::string journal_path = state_dir + "/journal.wal";
  *report += "== journal (" + journal_path + ") ==\n";
  JournalReadResult result;
  std::string error;
  // ReadShardJournal tolerates a first sequence number > 0 — the normal
  // state of a journal truncated by a snapshot.
  if (!ReadShardJournal(journal_path, &result, &error)) {
    *report += "UNREADABLE: " + error + "\n";
    *report += "(hard corruption — recovery would fail closed here)\n\n";
    return;
  }
  *report += "records: " + std::to_string(result.records.size()) + "\n";
  *report += "next_seq: " + std::to_string(result.next_seq) + "\n";
  *report += std::string("snapshot.bin: ") +
             (FileExists(state_dir + "/snapshot.bin") ? "present" : "absent") +
             "\n";
  if (result.torn_tail) {
    *report += "torn tail: YES — file ends mid-frame after byte " +
               std::to_string(result.clean_length) +
               " (the expected crash artifact; recovery truncates and "
               "replays the clean prefix)\n";
  } else {
    *report += "torn tail: no\n";
  }
  std::map<std::string, int64_t> histogram;
  int64_t last_tick = -1;
  for (const JournalRecord& record : result.records) {
    ++histogram[JournalRecordTypeName(record.type)];
    if (record.type == JournalRecordType::kCampaignTick) {
      CampaignTickRecord tick;
      if (DecodeCampaignTickRecord(record.payload, &tick)) {
        last_tick = tick.tick;
      }
    }
  }
  for (const auto& [name, count] : histogram) {
    *report += "  " + name + ": " + std::to_string(count) + "\n";
  }
  if (last_tick >= 0) {
    *report += "last completed tick: " + std::to_string(last_tick) + "\n";
  }
  *report += "\n";
}

void AppendEventsSections(const std::string& events_path,
                          std::string* report) {
  std::string text;
  std::string error;
  if (!ReadFileToString(events_path, &text, &error)) {
    *report += "== events ==\nUNREADABLE: " + error + "\n\n";
    return;
  }
  const std::vector<std::string> lines = SplitLines(text);

  *report += "== events (" + events_path + ") ==\n";
  std::map<std::string, int64_t> by_type;
  std::vector<std::string> alert_lines;
  // shard -> {lost, recovered, quorum degradations}
  std::map<int64_t, std::vector<int64_t>> shard_stats;
  int64_t timeline_count = 0;
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    const std::string type = JsonStringField(line, "type");
    if (type.empty()) continue;
    ++by_type[type];
    ++timeline_count;
    const int64_t tick = JsonIntField(line, "tick", -1);
    const int64_t shard = JsonIntField(line, "shard", -1);
    const std::string detail = JsonStringField(line, "detail");
    if (type == "alert_fired" || type == "alert_resolved") {
      std::string entry = (type == "alert_fired" ? "FIRED   " : "RESOLVED");
      if (tick >= 0) entry += " tick=" + std::to_string(tick);
      if (!detail.empty()) entry += " " + detail;
      alert_lines.push_back(entry);
    }
    if (shard >= 0) {
      std::vector<int64_t>& stats = shard_stats[shard];
      if (stats.empty()) stats.assign(3, 0);
      if (type == "shard_lost") ++stats[0];
      if (type == "shard_recovered") ++stats[1];
      if (type == "quorum_degraded") ++stats[2];
    }
  }
  *report += "events: " + std::to_string(timeline_count) + "\n";
  for (const auto& [type, count] : by_type) {
    *report += "  " + type + ": " + std::to_string(count) + "\n";
  }
  *report += "\n== alerts ==\n";
  if (alert_lines.empty()) {
    *report += "no alert transitions recorded\n";
  } else {
    for (const std::string& entry : alert_lines) {
      *report += entry + "\n";
    }
  }
  *report += "\n== shards ==\n";
  if (shard_stats.empty()) {
    *report += "no shard-attributed events (single-coordinator run)\n\n";
    return;
  }
  int64_t slowest_shard = -1;
  int64_t slowest_losses = 0;
  for (const auto& [shard, stats] : shard_stats) {
    *report += "shard " + std::to_string(shard) + ": lost=" +
               std::to_string(stats[0]) + " recovered=" +
               std::to_string(stats[1]) + "\n";
    if (stats[0] > slowest_losses) {
      slowest_losses = stats[0];
      slowest_shard = shard;
    }
  }
  if (slowest_shard >= 0) {
    *report += "slowest shard: " + std::to_string(slowest_shard) + " (" +
               std::to_string(slowest_losses) +
               " missed tick deadline(s))\n";
  } else {
    *report += "slowest shard: none (no losses recorded)\n";
  }
  *report += "\n";
}

void AppendMetricsSection(const std::string& metrics_path,
                          std::string* report) {
  std::string text;
  std::string error;
  if (!ReadFileToString(metrics_path, &text, &error)) {
    *report += "== metrics ==\nUNREADABLE: " + error + "\n\n";
    return;
  }
  *report += "== metrics (" + metrics_path + ") ==\n";
  int64_t firing = 0;
  int64_t rules = 0;
  for (const std::string& line : SplitLines(text)) {
    if (line.rfind("bitpush_alert_state", 0) != 0) continue;
    *report += line + "\n";
    ++rules;
    // Sample lines end in the gauge value; "... 1" means firing.
    const size_t space = line.find_last_of(' ');
    if (space != std::string::npos &&
        std::strtod(line.c_str() + space + 1, nullptr) != 0.0) {
      ++firing;
    }
  }
  if (rules == 0) {
    *report += "no bitpush_alert_state samples in dump\n";
  } else {
    *report += "alert rules firing at export: " + std::to_string(firing) +
               "/" + std::to_string(rules) + "\n";
  }
  *report += "\n";
}

int Main(int argc, char** argv) {
  std::string state_dir;
  std::string events;
  std::string metrics;
  std::string out = "-";
  std::string validate_events;
  FlagSet flags;
  flags.AddString("state_dir", &state_dir,
                  "campaign state directory (journal.wal/snapshot.bin)");
  flags.AddString("events", &events, "events JSONL dump (--events_out)");
  flags.AddString("metrics", &metrics,
                  "metrics dump in Prometheus text form (--metrics_out)");
  flags.AddString("out", &out, "report destination ('-' = stdout)");
  flags.AddString("validate_events", &validate_events,
                  "validate an events JSONL file and exit (CI mode)");
  flags.Parse(argc, argv);

  if (!validate_events.empty()) return ValidateEvents(validate_events);
  if (state_dir.empty() && events.empty() && metrics.empty()) {
    std::fprintf(stderr,
                 "bitpush_doctor: nothing to examine — pass --state_dir, "
                 "--events, and/or --metrics (or --validate_events)\n");
    return EXIT_FAILURE;
  }

  std::string report = "# bitpush_doctor report\n\n";
  if (!state_dir.empty()) AppendJournalSection(state_dir, &report);
  if (!events.empty()) AppendEventsSections(events, &report);
  if (!metrics.empty()) AppendMetricsSection(metrics, &report);

  std::string error;
  if (!obs::WriteTextFile(out, report, &error)) {
    std::fprintf(stderr, "bitpush_doctor: --out: %s\n", error.c_str());
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace bitpush

int main(int argc, char** argv) { return bitpush::Main(argc, argv); }
